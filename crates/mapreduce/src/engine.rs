//! A small in-process MapReduce engine (§2.7's substrate).
//!
//! Deliberately structured like Hadoop so the parallel-CRH experiments keep
//! their shape:
//!
//! 1. **map** — the input is split into `num_mappers` contiguous splits;
//!    one mapper task per split emits `(key, value)` pairs, hash-partitioned
//!    by key into `num_reducers` partitions;
//! 2. **combine** (optional) — each mapper pre-aggregates its own output per
//!    partition, "quite similar to the Reducer … just part of the partial
//!    error pairs within each Mapper" (§2.7.3);
//! 3. **shuffle + sort** — each partition's pairs from all mappers are
//!    merged and sorted by key ("they will be sorted by Hadoop");
//! 4. **reduce** — one reducer task per partition folds each key's values.
//!
//! Tasks run on real OS threads via `crossbeam::scope`. A configurable
//! per-task [`startup_cost`](JobConfig::startup_cost) models cluster task
//! launch latency (JVM spin-up, container allocation) — the dominant term
//! in Table 6 at small inputs ("the running time mainly comes from the
//! setup overhead when the number of observations is not very large");
//! it defaults to zero for library use.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// Parallelism and overhead knobs for one job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Number of mapper tasks (input splits).
    pub num_mappers: usize,
    /// Number of reducer tasks (= shuffle partitions).
    pub num_reducers: usize,
    /// Simulated per-task startup latency (map and reduce tasks alike).
    pub startup_cost: Duration,
    /// Whether to run the combiner (when one is supplied).
    pub use_combiner: bool,
    /// Concurrent task slots of the simulated cluster: tasks run in waves
    /// of at most this many threads, so scheduling more tasks than slots
    /// pays extra startup waves — the mechanism behind Fig 8's
    /// "more reducers is not always faster". `usize::MAX` = unlimited.
    pub task_slots: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            num_mappers: 4,
            num_reducers: 4,
            startup_cost: Duration::ZERO,
            use_combiner: true,
            task_slots: usize::MAX,
        }
    }
}

impl JobConfig {
    /// Validate the configuration.
    pub fn validated(self) -> Result<Self, String> {
        if self.num_mappers == 0 || self.num_reducers == 0 {
            return Err("num_mappers and num_reducers must be >= 1".into());
        }
        if self.task_slots == 0 {
            return Err("task_slots must be >= 1".into());
        }
        Ok(self)
    }
}

/// Phase timings and record counts of one job run.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Wall time of the map (+combine) phase.
    pub map_time: Duration,
    /// Wall time of shuffle-sort.
    pub shuffle_time: Duration,
    /// Wall time of the reduce phase.
    pub reduce_time: Duration,
    /// Records emitted by mappers (before combining).
    pub map_output_records: usize,
    /// Records after combining (equals `map_output_records` without a
    /// combiner).
    pub shuffled_records: usize,
    /// Distinct keys reduced.
    pub reduced_keys: usize,
}

impl JobStats {
    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.map_time + self.shuffle_time + self.reduce_time
    }
}

fn partition_of<K: Hash>(key: &K, parts: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % parts
}

/// Group a sorted `(K, V)` run into per-key value vectors and fold each with
/// `f`.
fn fold_groups<K: Ord, V, O>(
    mut pairs: Vec<(K, V)>,
    mut f: impl FnMut(&K, Vec<V>) -> O,
) -> Vec<(K, O)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::new();
    let mut iter = pairs.into_iter();
    let Some((mut cur_key, first_v)) = iter.next() else {
        return out;
    };
    let mut values = vec![first_v];
    for (k, v) in iter {
        if k == cur_key {
            values.push(v);
        } else {
            let folded = f(&cur_key, std::mem::take(&mut values));
            out.push((cur_key, folded));
            cur_key = k;
            values.push(v);
        }
    }
    let folded = f(&cur_key, values);
    out.push((cur_key, folded));
    out
}

/// Run one MapReduce job.
///
/// * `inputs` — the input records; split contiguously across mappers.
/// * `mapper` — called per record with an `emit(key, value)` sink.
/// * `combiner` — optional per-mapper pre-aggregation `(key, values) →
///   value`; must be algebraically mergeable with itself and the reducer
///   (e.g. partial sums).
/// * `reducer` — `(key, values) → output`, called once per distinct key.
///
/// Returns outputs sorted by key within each partition (partitions
/// concatenated in index order) plus phase statistics.
pub fn map_reduce<I, K, V, O, M, C, R>(
    cfg: &JobConfig,
    inputs: &[I],
    mapper: M,
    combiner: Option<C>,
    reducer: R,
) -> (Vec<(K, O)>, JobStats)
where
    I: Sync,
    K: Hash + Ord + Clone + Send,
    V: Send,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    C: Fn(&K, Vec<V>) -> V + Sync,
    R: Fn(&K, Vec<V>) -> O + Sync,
{
    let mut stats = JobStats::default();
    let num_mappers = cfg.num_mappers.max(1).min(inputs.len().max(1));
    let num_reducers = cfg.num_reducers.max(1);

    // ---- map (+ combine) phase ----
    let t0 = Instant::now();
    let split_len = inputs.len().div_ceil(num_mappers);
    // mapper_outputs[m][p] = pairs of mapper m for partition p
    let mut mapper_outputs: Vec<Vec<Vec<(K, V)>>> = Vec::with_capacity(num_mappers);
    let mut emitted_counts: Vec<usize> = Vec::with_capacity(num_mappers);
    let slots = cfg.task_slots.max(1);
    let mapper_ids: Vec<usize> = (0..num_mappers).collect();
    for wave in mapper_ids.chunks(slots) {
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(wave.len());
            for &m in wave {
                // ceil-splitting can exhaust the input before the last
                // mapper; trailing mappers get an empty split
                let lo = (m * split_len).min(inputs.len());
                let hi = ((m + 1) * split_len).min(inputs.len());
                let split = &inputs[lo..hi];
                let mapper = &mapper;
                let combiner = combiner.as_ref();
                handles.push(scope.spawn(move |_| {
                    if !cfg.startup_cost.is_zero() {
                        std::thread::sleep(cfg.startup_cost);
                    }
                    let mut parts: Vec<Vec<(K, V)>> =
                        (0..num_reducers).map(|_| Vec::new()).collect();
                    let mut emitted = 0usize;
                    for rec in split {
                        mapper(rec, &mut |k, v| {
                            let p = partition_of(&k, num_reducers);
                            parts[p].push((k, v));
                            emitted += 1;
                        });
                    }
                    if cfg.use_combiner {
                        if let Some(comb) = combiner {
                            parts = parts
                                .into_iter()
                                .map(|pairs| {
                                    fold_groups(pairs, |k, vs| comb(k, vs))
                                        .into_iter()
                                        .collect()
                                })
                                .collect();
                        }
                    }
                    (parts, emitted)
                }));
            }
            for h in handles {
                let (parts, emitted) = h.join().expect("mapper task panicked");
                mapper_outputs.push(parts);
                emitted_counts.push(emitted);
            }
        })
        .expect("map phase scope");
    }
    stats.map_time = t0.elapsed();
    stats.map_output_records = emitted_counts.iter().sum();

    // ---- shuffle ----
    let t1 = Instant::now();
    let mut partitions: Vec<Vec<(K, V)>> = (0..num_reducers).map(|_| Vec::new()).collect();
    for mapper_out in mapper_outputs {
        for (p, pairs) in mapper_out.into_iter().enumerate() {
            partitions[p].extend(pairs);
        }
    }
    stats.shuffled_records = partitions.iter().map(Vec::len).sum();
    stats.shuffle_time = t1.elapsed();

    // ---- reduce phase ----
    let t2 = Instant::now();
    let mut outputs: Vec<Vec<(K, O)>> = Vec::with_capacity(num_reducers);
    let mut remaining = partitions;
    while !remaining.is_empty() {
        let wave: Vec<Vec<(K, V)>> = remaining
            .drain(..remaining.len().min(slots))
            .collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(wave.len());
            for pairs in wave {
                let reducer = &reducer;
                handles.push(scope.spawn(move |_| {
                    if !cfg.startup_cost.is_zero() {
                        std::thread::sleep(cfg.startup_cost);
                    }
                    fold_groups(pairs, |k, vs| reducer(k, vs))
                }));
            }
            for h in handles {
                outputs.push(h.join().expect("reducer task panicked"));
            }
        })
        .expect("reduce phase scope");
    }
    stats.reduce_time = t2.elapsed();

    let mut flat: Vec<(K, O)> = outputs.into_iter().flatten().collect();
    stats.reduced_keys = flat.len();
    // Deterministic global order regardless of partitioning.
    flat.sort_by(|a, b| a.0.cmp(&b.0));
    (flat, stats)
}

/// A `combiner` argument for jobs that don't use one, fixing `C` so type
/// inference succeeds: `no_combiner::<K, V>()`.
pub fn no_combiner<K, V>() -> Option<fn(&K, Vec<V>) -> V> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic word count.
    fn word_count(cfg: &JobConfig, docs: &[&str]) -> Vec<(String, usize)> {
        let (out, _) = map_reduce(
            cfg,
            docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
            |_k, vs| vs.into_iter().sum::<usize>(),
        );
        out
    }

    #[test]
    fn word_count_correct() {
        let docs = ["a b a", "b c", "a"];
        let cfg = JobConfig::default();
        let out = word_count(&cfg, &docs);
        let get = |w: &str| out.iter().find(|(k, _)| k == w).map(|(_, c)| *c);
        assert_eq!(get("a"), Some(3));
        assert_eq!(get("b"), Some(2));
        assert_eq!(get("c"), Some(1));
    }

    #[test]
    fn result_independent_of_parallelism() {
        let docs = ["x y z x", "y x", "z z z", "w"];
        let base = word_count(&JobConfig::default(), &docs);
        for mappers in [1, 2, 7] {
            for reducers in [1, 3, 16] {
                let cfg = JobConfig {
                    num_mappers: mappers,
                    num_reducers: reducers,
                    ..JobConfig::default()
                };
                assert_eq!(word_count(&cfg, &docs), base, "{mappers}x{reducers}");
            }
        }
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let docs = vec!["a a a a a a a a"; 10];
        let with = JobConfig {
            num_mappers: 2,
            use_combiner: true,
            ..JobConfig::default()
        };
        let without = JobConfig {
            num_mappers: 2,
            use_combiner: false,
            ..JobConfig::default()
        };
        let (_, s1) = map_reduce(
            &with,
            &docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
            |_k, vs| vs.into_iter().sum::<usize>(),
        );
        let (_, s2) = map_reduce(
            &without,
            &docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
            |_k, vs| vs.into_iter().sum::<usize>(),
        );
        assert_eq!(s1.map_output_records, s2.map_output_records);
        assert!(
            s1.shuffled_records < s2.shuffled_records,
            "{} !< {}",
            s1.shuffled_records,
            s2.shuffled_records
        );
    }

    #[test]
    fn ceil_split_overflow_regression() {
        // 6 inputs across 5 mappers: ceil split is 2, so mapper 4 would
        // start at index 8 — past the input. Found by proptest.
        let docs = ["a", "b", "c", "d", "e", "f"];
        let cfg = JobConfig {
            num_mappers: 5,
            ..JobConfig::default()
        };
        let out = word_count(&cfg, &docs);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let docs: Vec<&str> = vec![];
        let out = word_count(&JobConfig::default(), &docs);
        assert!(out.is_empty());
    }

    #[test]
    fn no_combiner_helper_type_checks() {
        let nums = [1u32, 2, 3, 4];
        let (out, _) = map_reduce(
            &JobConfig::default(),
            &nums,
            |n: &u32, emit| emit(*n % 2, *n as u64),
            no_combiner::<u32, u64>(),
            |_k, vs| vs.into_iter().sum::<u64>(),
        );
        assert_eq!(out, vec![(0, 6), (1, 4)]);
    }

    #[test]
    fn startup_cost_adds_latency() {
        let docs = ["a"];
        let cfg = JobConfig {
            num_mappers: 1,
            num_reducers: 2,
            startup_cost: Duration::from_millis(20),
            ..JobConfig::default()
        };
        let t = Instant::now();
        word_count(&cfg, &docs);
        assert!(t.elapsed() >= Duration::from_millis(40), "1 map + 2 reduce tasks");
    }

    #[test]
    fn stats_counts() {
        let docs = ["a b", "a"];
        let (_, stats) = map_reduce(
            &JobConfig {
                use_combiner: false,
                ..JobConfig::default()
            },
            &docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            no_combiner::<String, usize>(),
            |_k, vs| vs.into_iter().sum::<usize>(),
        );
        assert_eq!(stats.map_output_records, 3);
        assert_eq!(stats.shuffled_records, 3);
        assert_eq!(stats.reduced_keys, 2);
        assert!(stats.total_time() >= stats.map_time);
    }

    #[test]
    fn validated_rejects_zero_parallelism() {
        assert!(JobConfig {
            num_mappers: 0,
            ..JobConfig::default()
        }
        .validated()
        .is_err());
        assert!(JobConfig::default().validated().is_ok());
    }

    #[test]
    fn fold_groups_on_unsorted_input() {
        let pairs = vec![(2, 1), (1, 10), (2, 2), (1, 20)];
        let out = fold_groups(pairs, |_k, vs| vs.into_iter().sum::<i32>());
        assert_eq!(out, vec![(1, 30), (2, 3)]);
    }
}
