//! A small in-process MapReduce engine (§2.7's substrate), fault-tolerant.
//!
//! Deliberately structured like Hadoop so the parallel-CRH experiments keep
//! their shape:
//!
//! 1. **map** — the input is split into `num_mappers` contiguous splits;
//!    one mapper task per split emits `(key, value)` pairs, hash-partitioned
//!    by key into `num_reducers` partitions;
//! 2. **combine** (optional) — each mapper pre-aggregates its own output per
//!    partition, "quite similar to the Reducer … just part of the partial
//!    error pairs within each Mapper" (§2.7.3);
//! 3. **shuffle + sort** — each partition's pairs from all mappers are
//!    merged and sorted by key ("they will be sorted by Hadoop");
//! 4. **reduce** — one reducer task per partition folds each key's values.
//!
//! Tasks run on real OS threads (`std::thread::scope`) under a slot-limited
//! scheduler, and — like the cluster systems being modeled — survive task
//! death:
//!
//! * every attempt runs under `catch_unwind`, so a panicking task kills the
//!   attempt, not the job;
//! * failed tasks are retried with capped exponential backoff, up to
//!   [`max_attempts`](JobConfig::max_attempts) before the job reports
//!   [`MapReduceError::TaskFailed`];
//! * a straggling task (running far beyond the median of its completed
//!   peers) gets one **speculative** backup attempt; the first finisher
//!   wins and the loser's output is discarded;
//! * a task that dies mid-emit leaves no partial output behind — results
//!   are only installed from attempts that ran to completion.
//!
//! Because mapper/combiner/reducer are pure functions of their split, a
//! retried or speculated attempt recomputes exactly the bytes the failed
//! one would have produced, and results are installed into per-task slots
//! — so the job output is **bit-identical** regardless of which faults
//! fired (see the chaos tests in `tests/chaos.rs`).
//!
//! A configurable per-attempt [`startup_cost`](JobConfig::startup_cost)
//! models cluster task launch latency (JVM spin-up, container allocation)
//! — the dominant term in Table 6 at small inputs; it defaults to zero for
//! library use. Deterministic fault injection is supplied by a
//! [`FaultInjector`](crate::faults::FaultInjector) in
//! [`JobConfig::faults`].

use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Once;
use std::time::{Duration, Instant};

use crate::error::MapReduceError;
use crate::faults::{AttemptFate, FaultInjector, Phase, INJECTED_PANIC};

/// The scheduler's one wall-clock seam.
///
/// The engine reads real time only for *scheduling*: retry backoff,
/// speculation re-checks, simulated stalls, and elapsed-time stats.
/// Attempt fates are a pure function of `(seed, job, phase, task,
/// attempt)` and speculation losers are discarded, so job *output*
/// never depends on these reads — wall-clock here affects latency,
/// not results. Keeping every read behind this seam keeps that
/// argument auditable (and greppable) as the engine grows.
pub(crate) fn sched_now() -> Instant {
    // crh-lint: allow(nondet-clock) — scheduling-only: fates are pure in (seed, job, phase, task, attempt); wall-clock affects latency, never output
    Instant::now()
}

/// Parallelism, overhead, and fault-tolerance knobs for one job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Number of mapper tasks (input splits).
    pub num_mappers: usize,
    /// Number of reducer tasks (= shuffle partitions).
    pub num_reducers: usize,
    /// Simulated per-attempt startup latency (map and reduce tasks alike).
    pub startup_cost: Duration,
    /// Whether to run the combiner (when one is supplied).
    pub use_combiner: bool,
    /// Concurrent task slots of the simulated cluster: at most this many
    /// attempts run at once, so scheduling more tasks than slots pays
    /// extra startup waves — the mechanism behind Fig 8's "more reducers
    /// is not always faster". `usize::MAX` = unlimited.
    pub task_slots: usize,
    /// Maximum attempts per task before the job fails with
    /// [`MapReduceError::TaskFailed`].
    pub max_attempts: usize,
    /// Base delay before re-running a failed attempt; doubles per failure.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: Duration,
    /// Launch speculative backups for straggler tasks.
    pub speculation: bool,
    /// A task is a straggler once it has run `speculation_slack` times the
    /// median duration of completed peer tasks.
    pub speculation_slack: f64,
    /// Completed peers required before the median is trusted.
    pub speculation_min_peers: usize,
    /// Deterministic fault injection (chaos testing); `None` = healthy.
    pub faults: Option<FaultInjector>,
}

/// Stragglers are never declared before this much absolute runtime, so
/// microsecond-scale tasks don't trigger speculation storms.
pub const SPECULATION_MIN_RUNTIME: Duration = Duration::from_millis(10);

impl Default for JobConfig {
    fn default() -> Self {
        Self {
            num_mappers: 4,
            num_reducers: 4,
            startup_cost: Duration::ZERO,
            use_combiner: true,
            task_slots: usize::MAX,
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            speculation: true,
            speculation_slack: 4.0,
            speculation_min_peers: 3,
            faults: None,
        }
    }
}

impl JobConfig {
    /// Validate the configuration in place.
    pub fn validate(&self) -> Result<(), MapReduceError> {
        if self.num_mappers == 0 {
            return Err(MapReduceError::InvalidConfig {
                field: "num_mappers",
                reason: "must be >= 1".into(),
            });
        }
        if self.num_reducers == 0 {
            return Err(MapReduceError::InvalidConfig {
                field: "num_reducers",
                reason: "must be >= 1".into(),
            });
        }
        if self.task_slots == 0 {
            return Err(MapReduceError::InvalidConfig {
                field: "task_slots",
                reason: "must be >= 1".into(),
            });
        }
        if self.max_attempts == 0 {
            return Err(MapReduceError::InvalidConfig {
                field: "max_attempts",
                reason: "must be >= 1".into(),
            });
        }
        if !(self.speculation_slack.is_finite() && self.speculation_slack >= 1.0) {
            return Err(MapReduceError::InvalidConfig {
                field: "speculation_slack",
                reason: format!("must be finite and >= 1, got {}", self.speculation_slack),
            });
        }
        if let Some(inj) = &self.faults {
            if inj.plan().fault_free_after >= self.max_attempts {
                return Err(MapReduceError::InvalidConfig {
                    field: "faults",
                    reason: format!(
                        "fault_free_after ({}) must be < max_attempts ({}) or tasks may never succeed",
                        inj.plan().fault_free_after,
                        self.max_attempts
                    ),
                });
            }
        }
        Ok(())
    }

    /// Validate, passing the configuration through on success.
    pub fn validated(self) -> Result<Self, MapReduceError> {
        self.validate()?;
        Ok(self)
    }
}

/// Phase timings, record counts, and failure accounting of one job run.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Wall time of the map (+combine) phase.
    pub map_time: Duration,
    /// Wall time of shuffle-sort.
    pub shuffle_time: Duration,
    /// Wall time of the reduce phase.
    pub reduce_time: Duration,
    /// Records emitted by mappers (before combining).
    pub map_output_records: usize,
    /// Records after combining (equals `map_output_records` without a
    /// combiner).
    pub shuffled_records: usize,
    /// Distinct keys reduced.
    pub reduced_keys: usize,
    /// Task attempts launched (map + reduce, including speculative).
    pub attempts: usize,
    /// Attempts re-queued after a failure.
    pub retries: usize,
    /// Speculative backup attempts launched for stragglers.
    pub speculative_launched: usize,
    /// Tasks whose winning attempt was the speculative backup.
    pub speculative_wins: usize,
}

impl JobStats {
    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.map_time + self.shuffle_time + self.reduce_time
    }
}

/// Per-attempt context handed to task bodies so injected mid-work deaths
/// can fire at a deterministic emit count.
pub struct AttemptCtx {
    die_after: Option<u64>,
    work_done: Cell<u64>,
}

impl AttemptCtx {
    fn healthy() -> Self {
        Self {
            die_after: None,
            work_done: Cell::new(0),
        }
    }

    fn dies_after(n: u64) -> Self {
        Self {
            die_after: Some(n),
            work_done: Cell::new(0),
        }
    }

    /// Record one unit of work (an emit or a folded key); panics if this
    /// attempt's injected fate says it dies here.
    fn on_work(&self) {
        if let Some(k) = self.die_after {
            let c = self.work_done.get() + 1;
            self.work_done.set(c);
            if c >= k {
                panic!("{INJECTED_PANIC}: attempt killed mid-work after {k} emits");
            }
        }
    }
}

/// The deterministic 64-bit hash point every partitioning decision in the
/// workspace derives from: reducers here, entry-shard ranges in `crh-serve`.
/// `DefaultHasher::new()` is keyed with fixed constants, so the mapping is
/// stable across processes and restarts — a requirement for shard maps that
/// must agree between a router, N shard groups, and a recovery replay.
pub fn key_hash<K: Hash>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn partition_of<K: Hash>(key: &K, parts: usize) -> usize {
    (key_hash(key) as usize) % parts
}

/// Group a sorted `(K, V)` run into per-key value vectors and fold each with
/// `f`. The sort is stable, so values keep their arrival order per key.
fn fold_groups<K: Ord, V, O>(
    mut pairs: Vec<(K, V)>,
    mut f: impl FnMut(&K, Vec<V>) -> O,
) -> Vec<(K, O)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::new();
    let mut iter = pairs.into_iter();
    let Some((mut cur_key, first_v)) = iter.next() else {
        return out;
    };
    let mut values = vec![first_v];
    for (k, v) in iter {
        if k == cur_key {
            values.push(v);
        } else {
            let folded = f(&cur_key, std::mem::take(&mut values));
            out.push((cur_key, folded));
            cur_key = k;
            values.push(v);
        }
    }
    let folded = f(&cur_key, values);
    out.push((cur_key, folded));
    out
}

/// Convert a panic payload into a displayable message.
fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked with a non-string payload".into()
    }
}

/// Injected faults panic by design; silence their default-hook backtrace
/// spam while leaving real panics loud. Installed once per process, and
/// chains to the previous hook for everything non-injected.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(INJECTED_PANIC))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Capped exponential backoff for the `n`-th failure (1-based).
fn backoff(cfg: &JobConfig, nth_failure: usize) -> Duration {
    let factor = 1u32 << (nth_failure.saturating_sub(1)).min(16) as u32;
    (cfg.backoff_base * factor).min(cfg.backoff_cap)
}

fn median(durations: &[Duration]) -> Duration {
    let mut d = durations.to_vec();
    d.sort_unstable();
    d[d.len() / 2]
}

/// Failure accounting for one phase.
#[derive(Debug, Default, Clone, Copy)]
struct PhaseAcc {
    attempts: usize,
    retries: usize,
    speculative_launched: usize,
    speculative_wins: usize,
}

impl PhaseAcc {
    fn add_into(self, stats: &mut JobStats) {
        stats.attempts += self.attempts;
        stats.retries += self.retries;
        stats.speculative_launched += self.speculative_launched;
        stats.speculative_wins += self.speculative_wins;
    }
}

struct AttemptDone<T> {
    task: usize,
    speculative: bool,
    outcome: Result<T, String>,
    elapsed: Duration,
}

/// Run one phase's tasks under the fault-tolerant scheduler: slot-limited
/// concurrency, per-attempt `catch_unwind` isolation, capped-backoff
/// retries, and speculative backups for stragglers. Results land in
/// per-task slots, so output order is independent of completion order.
fn run_phase<T, F>(
    cfg: &JobConfig,
    job_idx: usize,
    phase: Phase,
    num_tasks: usize,
    task: F,
) -> Result<(Vec<T>, PhaseAcc), MapReduceError>
where
    T: Send,
    F: Fn(usize, &AttemptCtx) -> T + Sync,
{
    let mut acc = PhaseAcc::default();
    if num_tasks == 0 {
        return Ok((Vec::new(), acc));
    }
    let slots = cfg.task_slots.max(1);
    let injector = cfg.faults.as_ref();
    if injector.is_some() {
        silence_injected_panics();
    }

    // One flag per task, raised by the scheduler once the task has a winning
    // result (or the phase aborts). Hadoop kills the losing attempt of a
    // speculated task; threads cannot be killed, so injected stalls poll this
    // flag and abandon the attempt instead — otherwise `thread::scope`'s
    // implicit join would let an already-beaten straggler gate the phase.
    let cancelled: Vec<AtomicBool> = (0..num_tasks).map(|_| AtomicBool::new(false)).collect();

    let results = std::thread::scope(|scope| -> Result<Vec<Option<T>>, MapReduceError> {
        let (tx, rx) = mpsc::channel::<AttemptDone<T>>();
        let task = &task;
        let cancelled = &cancelled;

        // Fate is resolved on the scheduler thread (it is a pure function
        // of (seed, job, phase, task, attempt), so this changes nothing),
        // then the attempt runs isolated under catch_unwind.
        let spawn_attempt = |t: usize, attempt: usize, speculative: bool| {
            let fate = injector
                .map(|i| i.fate(job_idx, phase, t, attempt))
                .unwrap_or(AttemptFate::Healthy);
            let tx = tx.clone();
            let startup = cfg.startup_cost;
            scope.spawn(move || {
                let t0 = sched_now();
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    if !startup.is_zero() {
                        std::thread::sleep(startup);
                    }
                    let ctx = match fate {
                        AttemptFate::Healthy => AttemptCtx::healthy(),
                        AttemptFate::Panic => panic!(
                            "{INJECTED_PANIC}: {phase:?} task {t} attempt {attempt} killed at start"
                        ),
                        AttemptFate::Stall(d) => {
                            let deadline = sched_now() + d;
                            loop {
                                if cancelled[t].load(Ordering::Relaxed) {
                                    panic!(
                                        "{INJECTED_PANIC}: {phase:?} task {t} attempt \
                                         {attempt} cancelled while stalled"
                                    );
                                }
                                let left = deadline.saturating_duration_since(sched_now());
                                if left.is_zero() {
                                    break;
                                }
                                std::thread::sleep(left.min(Duration::from_millis(2)));
                            }
                            AttemptCtx::healthy()
                        }
                        AttemptFate::DieMidWork(k) => AttemptCtx::dies_after(k),
                    };
                    task(t, &ctx)
                }))
                .map_err(panic_message);
                // the scheduler may have exited on a terminal error; a dead
                // receiver is fine
                let _ = tx.send(AttemptDone {
                    task: t,
                    speculative,
                    outcome,
                    elapsed: t0.elapsed(),
                });
            });
        };

        let n = num_tasks;
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut next_attempt = vec![0usize; n];
        let mut failures = vec![0usize; n];
        let mut running = vec![0usize; n];
        let mut started_at: Vec<Option<Instant>> = vec![None; n];
        let mut speculated = vec![false; n];
        let mut retry_at: Vec<Option<Instant>> = vec![None; n];
        let mut done = vec![false; n];
        let mut durations: Vec<Duration> = Vec::new();
        let mut completed = 0usize;
        let mut running_total = 0usize;

        while completed < n {
            // ---- launch whatever the free slots allow ----
            let now = sched_now();
            while running_total < slots {
                // primary attempts first: tasks with nothing in flight
                // whose backoff (if any) has elapsed
                let primary = (0..n)
                    .find(|&t| !done[t] && running[t] == 0 && retry_at[t].is_none_or(|d| d <= now));
                if let Some(t) = primary {
                    let attempt = next_attempt[t];
                    next_attempt[t] += 1;
                    retry_at[t] = None;
                    if started_at[t].is_none() {
                        started_at[t] = Some(now);
                    }
                    spawn_attempt(t, attempt, false);
                    running[t] += 1;
                    running_total += 1;
                    acc.attempts += 1;
                    continue;
                }
                // then speculative backups for stragglers
                if cfg.speculation && durations.len() >= cfg.speculation_min_peers {
                    let threshold = median(&durations)
                        .mul_f64(cfg.speculation_slack)
                        .max(SPECULATION_MIN_RUNTIME);
                    let straggler = (0..n).find(|&t| {
                        !done[t]
                            && running[t] == 1
                            && !speculated[t]
                            && started_at[t].is_some_and(|s| now.duration_since(s) > threshold)
                    });
                    if let Some(t) = straggler {
                        let attempt = next_attempt[t];
                        next_attempt[t] += 1;
                        speculated[t] = true;
                        spawn_attempt(t, attempt, true);
                        running[t] += 1;
                        running_total += 1;
                        acc.attempts += 1;
                        acc.speculative_launched += 1;
                        continue;
                    }
                }
                break;
            }

            // ---- wait for a completion, a retry deadline, or a
            //      speculation re-check ----
            let now = sched_now();
            let mut deadline: Option<Instant> = (0..n)
                .filter(|&t| !done[t] && running[t] == 0)
                .filter_map(|t| retry_at[t])
                .min();
            let may_speculate = cfg.speculation
                && durations.len() >= cfg.speculation_min_peers
                && (0..n).any(|t| !done[t] && running[t] == 1 && !speculated[t]);
            if may_speculate && running_total < slots {
                let poll = now + Duration::from_millis(2);
                deadline = Some(deadline.map_or(poll, |d| d.min(poll)));
            }
            let msg = match deadline {
                Some(d) => match rx.recv_timeout(d.saturating_duration_since(now)) {
                    Ok(msg) => msg,
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        unreachable!("scheduler holds a sender")
                    }
                },
                None => rx.recv().expect("attempts in flight hold senders"),
            };

            // ---- install / retry ----
            running[msg.task] -= 1;
            running_total -= 1;
            match msg.outcome {
                Ok(value) => {
                    if !done[msg.task] {
                        done[msg.task] = true;
                        cancelled[msg.task].store(true, Ordering::Relaxed);
                        completed += 1;
                        results[msg.task] = Some(value);
                        durations.push(msg.elapsed);
                        if msg.speculative {
                            acc.speculative_wins += 1;
                        }
                    }
                    // else: this task already finished (speculation race
                    // loser) — identical output, safely discarded
                }
                Err(message) => {
                    if !done[msg.task] {
                        failures[msg.task] += 1;
                        if failures[msg.task] >= cfg.max_attempts {
                            // release any stalled attempts so the scope's
                            // implicit join doesn't drag out the error path
                            for c in cancelled.iter() {
                                c.store(true, Ordering::Relaxed);
                            }
                            return Err(MapReduceError::TaskFailed {
                                phase,
                                task: msg.task,
                                attempts: failures[msg.task],
                                message,
                            });
                        }
                        acc.retries += 1;
                        retry_at[msg.task] = Some(sched_now() + backoff(cfg, failures[msg.task]));
                    }
                }
            }
        }
        Ok(results)
    })?;

    let results = results
        .into_iter()
        .map(|r| r.expect("scheduler completed every task"))
        .collect();
    Ok((results, acc))
}

/// Run one MapReduce job.
///
/// * `inputs` — the input records; split contiguously across mappers.
/// * `mapper` — called per record with an `emit(key, value)` sink.
/// * `combiner` — optional per-mapper pre-aggregation `(key, values) →
///   value`; must be algebraically mergeable with itself and the reducer
///   (e.g. partial sums).
/// * `reducer` — `(key, values) → output`, called once per distinct key.
///
/// Returns outputs sorted by key plus phase statistics, or a typed error
/// if the configuration is invalid or a task exhausts its retry budget.
/// `K`/`V` are `Clone` so a failed or speculated attempt can re-run from
/// the retained inputs.
pub fn map_reduce<I, K, V, O, M, C, R>(
    cfg: &JobConfig,
    inputs: &[I],
    mapper: M,
    combiner: Option<C>,
    reducer: R,
) -> Result<(Vec<(K, O)>, JobStats), MapReduceError>
where
    I: Sync,
    K: Hash + Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    C: Fn(&K, Vec<V>) -> V + Sync,
    R: Fn(&K, Vec<V>) -> O + Sync,
{
    cfg.validate()?;
    let mut stats = JobStats::default();
    let num_mappers = cfg.num_mappers.max(1).min(inputs.len().max(1));
    let num_reducers = cfg.num_reducers.max(1);
    let job_idx = cfg.faults.as_ref().map_or(0, |i| i.begin_job());

    // ---- map (+ combine) phase ----
    let t0 = sched_now();
    let split_len = inputs.len().div_ceil(num_mappers);
    let combiner = combiner.as_ref();
    let (map_results, map_acc) = run_phase(
        cfg,
        job_idx,
        Phase::Map,
        num_mappers,
        |m: usize, ctx: &AttemptCtx| {
            // ceil-splitting can exhaust the input before the last mapper;
            // trailing mappers get an empty split
            let lo = (m * split_len).min(inputs.len());
            let hi = ((m + 1) * split_len).min(inputs.len());
            let mut parts: Vec<Vec<(K, V)>> = (0..num_reducers).map(|_| Vec::new()).collect();
            let mut emitted = 0usize;
            for rec in &inputs[lo..hi] {
                mapper(rec, &mut |k, v| {
                    ctx.on_work();
                    let p = partition_of(&k, num_reducers);
                    parts[p].push((k, v));
                    emitted += 1;
                });
            }
            if cfg.use_combiner {
                if let Some(comb) = combiner {
                    parts = parts
                        .into_iter()
                        .map(|pairs| fold_groups(pairs, |k, vs| comb(k, vs)))
                        .collect();
                }
            }
            (parts, emitted)
        },
    )?;
    stats.map_time = t0.elapsed();
    map_acc.add_into(&mut stats);

    // ---- shuffle ----
    let t1 = sched_now();
    let mut partitions: Vec<Vec<(K, V)>> = (0..num_reducers).map(|_| Vec::new()).collect();
    for (parts, emitted) in map_results {
        stats.map_output_records += emitted;
        for (p, pairs) in parts.into_iter().enumerate() {
            partitions[p].extend(pairs);
        }
    }
    stats.shuffled_records = partitions.iter().map(Vec::len).sum();
    stats.shuffle_time = t1.elapsed();

    // ---- reduce phase ----
    let t2 = sched_now();
    let partitions = &partitions;
    let reducer = &reducer;
    let (reduce_results, reduce_acc) = run_phase(
        cfg,
        job_idx,
        Phase::Reduce,
        num_reducers,
        |p: usize, ctx: &AttemptCtx| {
            // clone the partition so the master copy survives for retries
            fold_groups(partitions[p].clone(), |k, vs| {
                ctx.on_work();
                reducer(k, vs)
            })
        },
    )?;
    stats.reduce_time = t2.elapsed();
    reduce_acc.add_into(&mut stats);

    let mut flat: Vec<(K, O)> = reduce_results.into_iter().flatten().collect();
    stats.reduced_keys = flat.len();
    // Deterministic global order regardless of partitioning.
    flat.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((flat, stats))
}

/// A `combiner` argument for jobs that don't use one, fixing `C` so type
/// inference succeeds: `no_combiner::<K, V>()`.
pub fn no_combiner<K, V>() -> Option<fn(&K, Vec<V>) -> V> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    /// Classic word count.
    fn word_count(cfg: &JobConfig, docs: &[&str]) -> Vec<(String, usize)> {
        try_word_count(cfg, docs).expect("word count job")
    }

    fn try_word_count(
        cfg: &JobConfig,
        docs: &[&str],
    ) -> Result<Vec<(String, usize)>, MapReduceError> {
        map_reduce(
            cfg,
            docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
            |_k, vs| vs.into_iter().sum::<usize>(),
        )
        .map(|(out, _)| out)
    }

    #[test]
    fn word_count_correct() {
        let docs = ["a b a", "b c", "a"];
        let cfg = JobConfig::default();
        let out = word_count(&cfg, &docs);
        let get = |w: &str| out.iter().find(|(k, _)| k == w).map(|(_, c)| *c);
        assert_eq!(get("a"), Some(3));
        assert_eq!(get("b"), Some(2));
        assert_eq!(get("c"), Some(1));
    }

    #[test]
    fn result_independent_of_parallelism() {
        let docs = ["x y z x", "y x", "z z z", "w"];
        let base = word_count(&JobConfig::default(), &docs);
        for mappers in [1, 2, 7] {
            for reducers in [1, 3, 16] {
                let cfg = JobConfig {
                    num_mappers: mappers,
                    num_reducers: reducers,
                    ..JobConfig::default()
                };
                assert_eq!(word_count(&cfg, &docs), base, "{mappers}x{reducers}");
            }
        }
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let docs = vec!["a a a a a a a a"; 10];
        let run = |use_combiner: bool| {
            let cfg = JobConfig {
                num_mappers: 2,
                use_combiner,
                ..JobConfig::default()
            };
            map_reduce(
                &cfg,
                &docs,
                |doc: &&str, emit| {
                    for w in doc.split_whitespace() {
                        emit(w.to_string(), 1usize);
                    }
                },
                Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
                |_k, vs| vs.into_iter().sum::<usize>(),
            )
            .unwrap()
            .1
        };
        let s1 = run(true);
        let s2 = run(false);
        assert_eq!(s1.map_output_records, s2.map_output_records);
        assert!(
            s1.shuffled_records < s2.shuffled_records,
            "{} !< {}",
            s1.shuffled_records,
            s2.shuffled_records
        );
    }

    #[test]
    fn ceil_split_overflow_regression() {
        // 6 inputs across 5 mappers: ceil split is 2, so mapper 4 would
        // start at index 8 — past the input. Found by the randomized tests.
        let docs = ["a", "b", "c", "d", "e", "f"];
        let cfg = JobConfig {
            num_mappers: 5,
            ..JobConfig::default()
        };
        let out = word_count(&cfg, &docs);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let docs: Vec<&str> = vec![];
        let out = word_count(&JobConfig::default(), &docs);
        assert!(out.is_empty());
    }

    #[test]
    fn no_combiner_helper_type_checks() {
        let nums = [1u32, 2, 3, 4];
        let (out, _) = map_reduce(
            &JobConfig::default(),
            &nums,
            |n: &u32, emit| emit(*n % 2, *n as u64),
            no_combiner::<u32, u64>(),
            |_k, vs| vs.into_iter().sum::<u64>(),
        )
        .unwrap();
        assert_eq!(out, vec![(0, 6), (1, 4)]);
    }

    #[test]
    fn startup_cost_adds_latency() {
        let docs = ["a"];
        let cfg = JobConfig {
            num_mappers: 1,
            num_reducers: 2,
            startup_cost: Duration::from_millis(20),
            ..JobConfig::default()
        };
        let t = sched_now();
        word_count(&cfg, &docs);
        assert!(
            t.elapsed() >= Duration::from_millis(40),
            "1 map + 2 reduce tasks"
        );
    }

    #[test]
    fn stats_counts() {
        let docs = ["a b", "a"];
        let (_, stats) = map_reduce(
            &JobConfig {
                use_combiner: false,
                ..JobConfig::default()
            },
            &docs,
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            no_combiner::<String, usize>(),
            |_k, vs| vs.into_iter().sum::<usize>(),
        )
        .unwrap();
        assert_eq!(stats.map_output_records, 3);
        assert_eq!(stats.shuffled_records, 3);
        assert_eq!(stats.reduced_keys, 2);
        assert!(stats.total_time() >= stats.map_time);
        // healthy run: one attempt per task, nothing retried or speculated
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.speculative_wins, 0);
        assert!(stats.attempts >= 2);
    }

    #[test]
    fn validated_rejects_bad_configs() {
        assert!(matches!(
            JobConfig {
                num_mappers: 0,
                ..JobConfig::default()
            }
            .validated(),
            Err(MapReduceError::InvalidConfig {
                field: "num_mappers",
                ..
            })
        ));
        assert!(matches!(
            JobConfig {
                max_attempts: 0,
                ..JobConfig::default()
            }
            .validated(),
            Err(MapReduceError::InvalidConfig {
                field: "max_attempts",
                ..
            })
        ));
        assert!(JobConfig::default().validated().is_ok());
    }

    #[test]
    fn validated_rejects_unwinnable_fault_plans() {
        let cfg = JobConfig {
            max_attempts: 2,
            faults: Some(FaultInjector::new(
                FaultPlan::new(1).panics(1.0).fault_free_after(2),
            )),
            ..JobConfig::default()
        };
        assert!(matches!(
            cfg.validated(),
            Err(MapReduceError::InvalidConfig {
                field: "faults",
                ..
            })
        ));
    }

    #[test]
    fn fold_groups_on_unsorted_input() {
        let pairs = vec![(2, 1), (1, 10), (2, 2), (1, 20)];
        let out = fold_groups(pairs, |_k, vs| vs.into_iter().sum::<i32>());
        assert_eq!(out, vec![(1, 30), (2, 3)]);
    }

    #[test]
    fn injected_panics_are_retried_to_the_same_answer() {
        let docs = ["x y z x", "y x", "z z z", "w", "q r s", "t u v"];
        let healthy = word_count(&JobConfig::default(), &docs);
        for seed in 0..10 {
            let cfg = JobConfig {
                num_mappers: 3,
                num_reducers: 5,
                faults: Some(FaultInjector::new(FaultPlan::new(seed).panics(0.6))),
                ..JobConfig::default()
            };
            let (out, stats) = map_reduce(
                &cfg,
                &docs,
                |doc: &&str, emit| {
                    for w in doc.split_whitespace() {
                        emit(w.to_string(), 1usize);
                    }
                },
                Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
                |_k, vs| vs.into_iter().sum::<usize>(),
            )
            .unwrap();
            assert_eq!(out, healthy, "seed {seed}");
            // every attempt beyond the 8 task wins was a retry or a
            // speculation loser
            assert!(
                stats.attempts >= 8 + stats.retries,
                "seed {seed}: {stats:?}"
            );
        }
    }

    #[test]
    fn mid_work_deaths_leave_no_partial_output() {
        let docs = vec!["a b c d e f g h"; 8];
        let healthy = word_count(&JobConfig::default(), &docs);
        for seed in 0..10 {
            let cfg = JobConfig {
                num_mappers: 4,
                faults: Some(FaultInjector::new(FaultPlan::new(seed).dies_mid_work(0.7))),
                ..JobConfig::default()
            };
            let out = try_word_count(&cfg, &docs).unwrap();
            assert_eq!(out, healthy, "seed {seed}");
        }
    }

    #[test]
    fn unwinnable_injected_plans_are_rejected_up_front() {
        // fault_free_after >= max_attempts would panic every attempt in
        // the budget; validate() refuses to start such a job
        let cfg = JobConfig {
            max_attempts: 3,
            num_mappers: 2,
            num_reducers: 2,
            faults: Some(FaultInjector::new(
                FaultPlan::new(5).panics(1.0).fault_free_after(100),
            )),
            ..JobConfig::default()
        };
        match try_word_count(&cfg, &["a b", "c d"]) {
            Err(MapReduceError::InvalidConfig { field, .. }) => assert_eq!(field, "faults"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn hundred_percent_panics_within_window_still_succeed() {
        // 100% panic probability on attempts 0 and 1, healthy from 2: the
        // retry path recovers every task
        let cfg = JobConfig {
            max_attempts: 3,
            num_mappers: 2,
            num_reducers: 2,
            faults: Some(FaultInjector::new(
                FaultPlan::new(5).panics(1.0).fault_free_after(2),
            )),
            ..JobConfig::default()
        };
        let (out, stats) = map_reduce(
            &cfg,
            &["a b", "c d"],
            |doc: &&str, emit| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            no_combiner::<String, usize>(),
            |_k, vs| vs.into_iter().sum::<usize>(),
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        // 2 map + 2 reduce tasks, each failing exactly twice
        assert_eq!(stats.retries, 8, "{stats:?}");
    }

    #[test]
    fn exhausted_retries_surface_as_task_failed() {
        // a genuine user-code bug: the mapper panics on one record, every
        // attempt. After max_attempts the job reports which task died.
        // (The injector is a no-op; it just installs the quiet panic hook,
        // and the marker in the message keeps the expected panics silent.)
        let cfg = JobConfig {
            max_attempts: 3,
            num_mappers: 2,
            num_reducers: 2,
            backoff_base: Duration::from_micros(100),
            faults: Some(FaultInjector::new(FaultPlan::new(0))),
            ..JobConfig::default()
        };
        let err = map_reduce(
            &cfg,
            &["ok", "poison"],
            |doc: &&str, emit| {
                if *doc == "poison" {
                    panic!("{INJECTED_PANIC}: bad record");
                }
                emit(doc.to_string(), 1usize);
            },
            no_combiner::<String, usize>(),
            |_k, vs| vs.into_iter().sum::<usize>(),
        )
        .unwrap_err();
        match err {
            MapReduceError::TaskFailed {
                phase,
                attempts,
                message,
                ..
            } => {
                assert_eq!(phase, Phase::Map);
                assert_eq!(attempts, 3);
                assert!(message.contains("bad record"), "{message}");
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn stragglers_are_beaten_by_speculation() {
        // 8 map tasks; stalled attempts sleep 400ms but their speculative
        // backups (attempt >= 1 is fault-free) finish instantly. Fates are
        // deterministic, so scan for a seed whose schedule stalls some —
        // but not most — map tasks (enough healthy peers to establish the
        // straggler median) and leaves the 2 reduce tasks healthy (too few
        // peers there for speculation to ever engage).
        let plan = |seed: u64| {
            FaultPlan::new(seed)
                .stalls(0.4, Duration::from_millis(400))
                .fault_free_after(1)
        };
        let seed = (0..200)
            .find(|&s| {
                let inj = FaultInjector::new(plan(s));
                let stalled = (0..8)
                    .filter(|&t| matches!(inj.fate(0, Phase::Map, t, 0), AttemptFate::Stall(_)))
                    .count();
                let reduce_healthy =
                    (0..2).all(|t| inj.fate(0, Phase::Reduce, t, 0) == AttemptFate::Healthy);
                (1..=4).contains(&stalled) && reduce_healthy
            })
            .expect("some seed in 0..200 fits");
        let docs: Vec<String> = (0..8).map(|i| format!("w{i}")).collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let cfg = JobConfig {
            num_mappers: 8,
            num_reducers: 2,
            startup_cost: Duration::from_millis(2),
            speculation_slack: 2.0,
            speculation_min_peers: 3,
            faults: Some(FaultInjector::new(plan(seed))),
            ..JobConfig::default()
        };
        let t = sched_now();
        let (out, stats) = map_reduce(
            &cfg,
            &doc_refs,
            |doc: &&str, emit| emit(doc.to_string(), 1usize),
            no_combiner::<String, usize>(),
            |_k, vs| vs.into_iter().sum::<usize>(),
        )
        .unwrap();
        assert_eq!(out.len(), 8);
        assert!(
            stats.speculative_launched > 0,
            "expected speculation, {stats:?}"
        );
        assert!(stats.speculative_wins > 0, "{stats:?}");
        // the stalled originals (400ms each) never gate completion
        assert!(
            t.elapsed() < Duration::from_millis(350),
            "speculation should beat the 400ms stalls, took {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let docs = ["a b c", "d e f", "a d g", "h i"];
        let run = |seed: u64| {
            let cfg = JobConfig {
                num_mappers: 4,
                num_reducers: 3,
                faults: Some(FaultInjector::new(
                    FaultPlan::new(seed).panics(0.4).dies_mid_work(0.3),
                )),
                ..JobConfig::default()
            };
            map_reduce(
                &cfg,
                &docs,
                |doc: &&str, emit| {
                    for w in doc.split_whitespace() {
                        emit(w.to_string(), 1usize);
                    }
                },
                no_combiner::<String, usize>(),
                |_k, vs| vs.into_iter().sum::<usize>(),
            )
            .unwrap()
        };
        let (out_a, stats_a) = run(17);
        let (out_b, stats_b) = run(17);
        assert_eq!(out_a, out_b);
        // retry counts replay exactly: the fault schedule is pure
        assert_eq!(stats_a.retries, stats_b.retries);
    }
}
