//! Typed errors for the MapReduce engine and the parallel-CRH driver.

use std::fmt;

use crh_core::error::CrhError;
use crh_core::persist::PersistError;

use crate::faults::Phase;

/// Errors surfaced by [`crate::engine::map_reduce`] and
/// [`crate::driver::ParallelCrh`].
#[derive(Debug)]
pub enum MapReduceError {
    /// A [`crate::engine::JobConfig`] field failed validation.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A task exhausted its retry budget: every attempt panicked.
    TaskFailed {
        /// Which phase the task belonged to.
        phase: Phase,
        /// Task index within the phase.
        task: usize,
        /// Attempts made (== the job's `max_attempts`).
        attempts: usize,
        /// The final attempt's panic message.
        message: String,
    },
    /// An error from the core CRH library (problem preparation, solving).
    Core(CrhError),
    /// A checkpoint could not be written or read back.
    Persist(PersistError),
}

impl fmt::Display for MapReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapReduceError::InvalidConfig { field, reason } => {
                write!(f, "invalid job config: {field}: {reason}")
            }
            MapReduceError::TaskFailed {
                phase,
                task,
                attempts,
                message,
            } => write!(
                f,
                "{phase:?} task {task} failed after {attempts} attempts: {message}"
            ),
            MapReduceError::Core(e) => write!(f, "{e}"),
            MapReduceError::Persist(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for MapReduceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapReduceError::Core(e) => Some(e),
            MapReduceError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CrhError> for MapReduceError {
    fn from(e: CrhError) -> Self {
        MapReduceError::Core(e)
    }
}

impl From<PersistError> for MapReduceError {
    fn from(e: PersistError) -> Self {
        MapReduceError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_failing_task() {
        let e = MapReduceError::TaskFailed {
            phase: Phase::Map,
            task: 3,
            attempts: 4,
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("task 3"), "{s}");
        assert!(s.contains("4 attempts"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }

    #[test]
    fn implements_std_error_with_sources() {
        fn takes_err(_: &dyn std::error::Error) {}
        let e = MapReduceError::InvalidConfig {
            field: "num_mappers",
            reason: "must be >= 1".into(),
        };
        takes_err(&e);
        assert!(std::error::Error::source(&e).is_none());
        let e = MapReduceError::Core(CrhError::InvalidParameter("x".into()));
        assert!(std::error::Error::source(&e).is_some());
    }
}
