//! Out-of-core machinery: external merge sort and spill files.
//!
//! The in-process engine of [`engine`](crate::engine) shuffles in memory;
//! when the observation file exceeds RAM, the shuffle must spill. This
//! module provides the classic database answer — sorted runs on disk merged
//! with a k-way heap — generic over a small binary [`Codec`], plus the
//! spill-file plumbing [`OutOfCoreCrh`](crate::outofcore::OutOfCoreCrh)
//! builds on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Binary record encoding for spill files.
pub trait Codec: Sized {
    /// Append the record's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode one record; `Ok(None)` on clean end-of-stream.
    fn decode(r: &mut impl Read) -> io::Result<Option<Self>>;
}

/// Read exactly `N` bytes, or `None` on clean EOF before the first byte.
pub(crate) fn read_exact_or_eof<const N: usize>(r: &mut impl Read) -> io::Result<Option<[u8; N]>> {
    let mut buf = [0u8; N];
    let mut filled = 0;
    while filled < N {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated record in spill file",
            ));
        }
        filled += n;
    }
    Ok(Some(buf))
}

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique spill-file path in the system temp directory.
pub(crate) fn fresh_spill_path(tag: &str) -> PathBuf {
    let n = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("crh_spill_{}_{tag}_{n}.bin", std::process::id()))
}

/// A sorted on-disk run; deleted on drop.
struct Run {
    path: PathBuf,
}

impl Drop for Run {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// An external merge sorter: buffers up to `max_in_memory` records, spills
/// sorted runs to temp files, and k-way merges on [`finish`](Self::finish).
///
/// Peak memory is `O(max_in_memory + runs)` records regardless of input
/// size.
pub struct ExternalSorter<T: Codec + Ord> {
    max_in_memory: usize,
    buffer: Vec<T>,
    runs: Vec<Run>,
    total: usize,
}

impl<T: Codec + Ord> std::fmt::Debug for ExternalSorter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalSorter")
            .field("buffered", &self.buffer.len())
            .field("runs", &self.runs.len())
            .field("total", &self.total)
            .finish()
    }
}

impl<T: Codec + Ord> ExternalSorter<T> {
    /// Create a sorter that keeps at most `max_in_memory` records buffered.
    ///
    /// # Panics
    /// Panics if `max_in_memory` is zero.
    pub fn new(max_in_memory: usize) -> Self {
        assert!(max_in_memory > 0, "need at least one in-memory record");
        Self {
            max_in_memory,
            buffer: Vec::new(),
            runs: Vec::new(),
            total: 0,
        }
    }

    /// Add a record, spilling a sorted run if the buffer is full.
    pub fn push(&mut self, record: T) -> io::Result<()> {
        self.buffer.push(record);
        self.total += 1;
        if self.buffer.len() >= self.max_in_memory {
            self.spill()?;
        }
        Ok(())
    }

    /// Number of spilled runs so far.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total records pushed.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether no records were pushed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    fn spill(&mut self) -> io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.buffer.sort();
        let path = fresh_spill_path("run");
        let mut w = BufWriter::new(File::create(&path)?);
        let mut buf = Vec::new();
        for rec in self.buffer.drain(..) {
            buf.clear();
            rec.encode(&mut buf);
            w.write_all(&buf)?;
        }
        w.flush()?;
        self.runs.push(Run { path });
        Ok(())
    }

    /// Finish: sort the residual buffer and return a k-way merged iterator
    /// over all records in ascending order.
    pub fn finish(mut self) -> io::Result<MergeIter<T>> {
        self.buffer.sort();
        let mut sources: Vec<RunReader<T>> = Vec::with_capacity(self.runs.len() + 1);
        for run in &self.runs {
            sources.push(RunReader::File(BufReader::new(File::open(&run.path)?)));
        }
        sources.push(RunReader::Memory(
            std::mem::take(&mut self.buffer).into_iter(),
        ));

        let mut heap = BinaryHeap::with_capacity(sources.len());
        let mut readers = sources;
        for (i, r) in readers.iter_mut().enumerate() {
            if let Some(rec) = r.next_record()? {
                heap.push(Reverse(HeapEntry { rec, source: i }));
            }
        }
        Ok(MergeIter {
            readers,
            heap,
            _runs: self.runs,
        })
    }
}

enum RunReader<T> {
    File(BufReader<File>),
    Memory(std::vec::IntoIter<T>),
}

impl<T: Codec> RunReader<T> {
    fn next_record(&mut self) -> io::Result<Option<T>> {
        match self {
            RunReader::File(r) => T::decode(r),
            RunReader::Memory(it) => Ok(it.next()),
        }
    }
}

struct HeapEntry<T> {
    rec: T,
    source: usize,
}

impl<T: Ord> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rec == other.rec && self.source == other.source
    }
}
impl<T: Ord> Eq for HeapEntry<T> {}
impl<T: Ord> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rec
            .cmp(&other.rec)
            .then(self.source.cmp(&other.source))
    }
}

/// Ascending merged stream over all spilled runs + the residual buffer.
/// Run files are deleted when the iterator is dropped.
pub struct MergeIter<T: Codec + Ord> {
    readers: Vec<RunReader<T>>,
    heap: BinaryHeap<Reverse<HeapEntry<T>>>,
    _runs: Vec<Run>,
}

impl<T: Codec + Ord> Iterator for MergeIter<T> {
    type Item = io::Result<T>;

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse(HeapEntry { rec, source }) = self.heap.pop()?;
        match self.readers[source].next_record() {
            Ok(Some(next)) => self.heap.push(Reverse(HeapEntry { rec: next, source })),
            Ok(None) => {}
            Err(e) => return Some(Err(e)),
        }
        Some(Ok(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Codec for u64 {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.to_le_bytes());
        }
        fn decode(r: &mut impl Read) -> io::Result<Option<Self>> {
            Ok(read_exact_or_eof::<8>(r)?.map(u64::from_le_bytes))
        }
    }

    fn sort_all(values: Vec<u64>, cap: usize) -> Vec<u64> {
        let mut s = ExternalSorter::new(cap);
        for v in values {
            s.push(v).unwrap();
        }
        s.finish().unwrap().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn in_memory_only() {
        assert_eq!(sort_all(vec![3, 1, 2], 100), vec![1, 2, 3]);
    }

    #[test]
    fn spills_and_merges() {
        // pseudo-random permutation, forced to spill many runs
        let values: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 5000).collect();
        let mut expected = values.clone();
        expected.sort();
        assert_eq!(sort_all(values, 64), expected);
    }

    #[test]
    fn run_count_tracks_spills() {
        let mut s = ExternalSorter::new(10);
        for v in 0..35u64 {
            s.push(v).unwrap();
        }
        assert_eq!(s.run_count(), 3, "3 full spills, 5 residual");
        assert_eq!(s.len(), 35);
    }

    #[test]
    fn duplicates_preserved() {
        let out = sort_all(vec![5, 5, 5, 1, 1], 2);
        assert_eq!(out, vec![1, 1, 5, 5, 5]);
    }

    #[test]
    fn empty_sorter() {
        let s = ExternalSorter::<u64>::new(4);
        assert!(s.is_empty());
        let out: Vec<u64> = s.finish().unwrap().map(|r| r.unwrap()).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn spill_files_cleaned_up() {
        let path_probe;
        {
            let mut s = ExternalSorter::new(2);
            for v in 0..10u64 {
                s.push(v).unwrap();
            }
            assert!(s.run_count() > 0);
            // capture one run path before finishing
            path_probe = s.runs[0].path.clone();
            assert!(path_probe.exists());
            let merged: Vec<u64> = s.finish().unwrap().map(|r| r.unwrap()).collect();
            assert_eq!(merged.len(), 10);
        }
        assert!(!path_probe.exists(), "run files deleted with the iterator");
    }

    #[test]
    fn truncated_run_is_an_error() {
        let mut buf: Vec<u8> = Vec::new();
        42u64.encode(&mut buf);
        buf.truncate(5); // torn write
        let mut r = buf.as_slice();
        let err = u64::decode(&mut r);
        assert!(err.is_err(), "truncated record must surface as an error");
    }

    #[test]
    fn clean_eof_is_none() {
        let mut r: &[u8] = &[];
        assert_eq!(u64::decode(&mut r).unwrap(), None);
    }
}
