//! Deterministic fault injection for the MapReduce engine.
//!
//! Cluster MapReduce earns its keep by surviving task failures; an
//! in-process reproduction has to *manufacture* them to prove the same
//! property. A [`FaultPlan`] describes a chaos schedule — probabilities of
//! an attempt panicking at start, stalling (straggling), or dying mid-emit
//! — and a [`FaultInjector`] resolves each task attempt's fate as a pure
//! function of `(seed, job, phase, task, attempt)` via
//! [`crh_core::rng::hash_rng`]. The fate therefore does **not** depend on
//! thread scheduling, wave order, or how many other tasks failed first:
//! the same plan replays the same faults, and the chaos tests can assert
//! the recovered output is bit-identical to a fault-free run.
//!
//! `fault_free_after` bounds the chaos: attempts at or beyond that index
//! are always healthy, so every task eventually succeeds within the
//! engine's retry budget (keep `fault_free_after < max_attempts`).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crh_core::rng::{hash_rng, Rng};

/// Panic-payload marker carried by every injected failure, letting the
/// engine's panic hook suppress the expected backtrace noise while real
/// (non-injected) panics still print.
pub const INJECTED_PANIC: &str = "crh-injected-fault";

/// Which phase a task belongs to (also used in error reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Mapper task (runs map + optional combine over one input split).
    Map,
    /// Reducer task (folds one shuffle partition).
    Reduce,
}

/// The resolved fate of one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptFate {
    /// Run normally.
    Healthy,
    /// Panic immediately at attempt start (process-level task death).
    Panic,
    /// Straggle: sleep this long before doing the work, then complete
    /// normally. Speculative execution exists to beat these.
    Stall(Duration),
    /// Die after emitting this many records (map) or folding this many
    /// keys (reduce) — a mid-flight crash with partial output that must
    /// be discarded, not merged.
    DieMidWork(u64),
}

/// A seeded chaos schedule. All probabilities are per-attempt and
/// mutually exclusive (their sum must be ≤ 1).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed from which every fate is derived.
    pub seed: u64,
    /// Probability an attempt panics at start.
    pub panic_prob: f64,
    /// Probability an attempt straggles.
    pub stall_prob: f64,
    /// Probability an attempt dies mid-work.
    pub die_mid_work_prob: f64,
    /// How long a straggler stalls before working.
    pub stall_for: Duration,
    /// Mid-work deaths happen after `1..=max_work_before_death` units.
    pub max_work_before_death: u64,
    /// Attempts with index `>= fault_free_after` are always healthy,
    /// guaranteeing forward progress under a finite retry budget.
    pub fault_free_after: usize,
    /// Restrict injection to jobs whose index (per injector, counted in
    /// [`FaultInjector::begin_job`] order) falls in this range. `None`
    /// targets every job.
    pub only_jobs: Option<Range<usize>>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled; switch on the
    /// fault classes you want with the builder methods.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            panic_prob: 0.0,
            stall_prob: 0.0,
            die_mid_work_prob: 0.0,
            stall_for: Duration::from_millis(30),
            max_work_before_death: 8,
            fault_free_after: 2,
            only_jobs: None,
        }
    }

    /// Set the start-of-attempt panic probability.
    pub fn panics(mut self, prob: f64) -> Self {
        self.panic_prob = prob;
        self
    }

    /// Set the straggler probability and stall duration.
    pub fn stalls(mut self, prob: f64, stall_for: Duration) -> Self {
        self.stall_prob = prob;
        self.stall_for = stall_for;
        self
    }

    /// Set the mid-work death probability.
    pub fn dies_mid_work(mut self, prob: f64) -> Self {
        self.die_mid_work_prob = prob;
        self
    }

    /// Guarantee attempts `>= n` are healthy.
    pub fn fault_free_after(mut self, n: usize) -> Self {
        self.fault_free_after = n;
        self
    }

    /// Inject only into jobs with index in `jobs`.
    pub fn only_jobs(mut self, jobs: Range<usize>) -> Self {
        self.only_jobs = Some(jobs);
        self
    }
}

/// Resolves attempt fates from a [`FaultPlan`].
///
/// Cloning shares the job counter, so one injector threaded through a
/// multi-job driver (two jobs per CRH iteration) numbers the jobs
/// globally — `only_jobs` can then target, say, exactly the truth job of
/// iteration 3.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: Arc<FaultPlan>,
    jobs_started: Arc<AtomicUsize>,
}

impl FaultInjector {
    /// Wrap a plan.
    pub fn new(plan: FaultPlan) -> Self {
        assert!(
            plan.panic_prob + plan.stall_prob + plan.die_mid_work_prob <= 1.0 + 1e-12,
            "fault probabilities must sum to <= 1"
        );
        Self {
            plan: Arc::new(plan),
            jobs_started: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The plan this injector resolves from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Called by the engine at job start; returns this job's index.
    pub fn begin_job(&self) -> usize {
        self.jobs_started.fetch_add(1, Ordering::SeqCst)
    }

    /// The fate of attempt `attempt` of `task` in `phase` of job `job`.
    ///
    /// Pure in its arguments (plus the plan's seed): independent of call
    /// order, thread interleaving, and the fates of other attempts.
    pub fn fate(&self, job: usize, phase: Phase, task: usize, attempt: usize) -> AttemptFate {
        let p = &self.plan;
        if attempt >= p.fault_free_after {
            return AttemptFate::Healthy;
        }
        if let Some(jobs) = &p.only_jobs {
            if !jobs.contains(&job) {
                return AttemptFate::Healthy;
            }
        }
        let phase_tag = match phase {
            Phase::Map => 0u64,
            Phase::Reduce => 1u64,
        };
        let mut rng = hash_rng(
            p.seed,
            &[job as u64, phase_tag, task as u64, attempt as u64],
        );
        let x: f64 = rng.random();
        if x < p.panic_prob {
            AttemptFate::Panic
        } else if x < p.panic_prob + p.stall_prob {
            AttemptFate::Stall(p.stall_for)
        } else if x < p.panic_prob + p.stall_prob + p.die_mid_work_prob {
            AttemptFate::DieMidWork(rng.random_range(0..p.max_work_before_death) + 1)
        } else {
            AttemptFate::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic(seed: u64) -> FaultInjector {
        FaultInjector::new(
            FaultPlan::new(seed)
                .panics(0.3)
                .stalls(0.2, Duration::from_millis(5))
                .dies_mid_work(0.3),
        )
    }

    #[test]
    fn fates_are_deterministic_and_order_free() {
        let a = chaotic(42);
        let b = chaotic(42);
        // query b in reverse order: fates must still agree pointwise
        let keys: Vec<(usize, Phase, usize, usize)> = (0..50)
            .flat_map(|t| {
                (0..2).flat_map(move |a| [(0, Phase::Map, t, a), (1, Phase::Reduce, t, a)])
            })
            .collect();
        let fwd: Vec<_> = keys
            .iter()
            .map(|&(j, p, t, at)| a.fate(j, p, t, at))
            .collect();
        let rev: Vec<_> = keys
            .iter()
            .rev()
            .map(|&(j, p, t, at)| b.fate(j, p, t, at))
            .collect();
        let rev: Vec<_> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = chaotic(1);
        let b = chaotic(2);
        let fates = |inj: &FaultInjector| {
            (0..200)
                .map(|t| inj.fate(0, Phase::Map, t, 0))
                .collect::<Vec<_>>()
        };
        assert_ne!(fates(&a), fates(&b));
    }

    #[test]
    fn fault_free_after_guarantees_progress() {
        let inj = chaotic(7);
        for t in 0..100 {
            assert_eq!(inj.fate(0, Phase::Map, t, 2), AttemptFate::Healthy);
            assert_eq!(inj.fate(0, Phase::Reduce, t, 5), AttemptFate::Healthy);
        }
    }

    #[test]
    fn only_jobs_scopes_injection() {
        let inj = FaultInjector::new(FaultPlan::new(3).panics(1.0).only_jobs(2..3));
        assert_eq!(inj.fate(0, Phase::Map, 0, 0), AttemptFate::Healthy);
        assert_eq!(inj.fate(2, Phase::Map, 0, 0), AttemptFate::Panic);
        assert_eq!(inj.fate(3, Phase::Map, 0, 0), AttemptFate::Healthy);
    }

    #[test]
    fn job_counter_is_shared_across_clones() {
        let inj = chaotic(9);
        let other = inj.clone();
        assert_eq!(inj.begin_job(), 0);
        assert_eq!(other.begin_job(), 1);
        assert_eq!(inj.begin_job(), 2);
    }

    #[test]
    fn fate_mix_tracks_probabilities() {
        let inj = chaotic(11);
        let n = 10_000;
        let mut panics = 0;
        let mut stalls = 0;
        let mut deaths = 0;
        for t in 0..n {
            match inj.fate(0, Phase::Map, t, 0) {
                AttemptFate::Panic => panics += 1,
                AttemptFate::Stall(_) => stalls += 1,
                AttemptFate::DieMidWork(k) => {
                    assert!((1..=8).contains(&k));
                    deaths += 1;
                }
                AttemptFate::Healthy => {}
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(panics) - 0.3).abs() < 0.03, "{panics}");
        assert!((frac(stalls) - 0.2).abs() < 0.03, "{stalls}");
        assert!((frac(deaths) - 0.3).abs() < 0.03, "{deaths}");
    }

    #[test]
    #[should_panic(expected = "sum to <= 1")]
    fn overfull_probabilities_rejected() {
        FaultInjector::new(FaultPlan::new(0).panics(0.7).dies_mid_work(0.7));
    }
}
