//! # crh-mapreduce — parallel, fault-tolerant & out-of-core CRH (§2.7)
//!
//! Large-scale conflict resolution "take\[s\] the advantage of distributed and
//! parallel computing systems". This crate supplies the substrate and the
//! CRH pipelines on top of it:
//!
//! * [`engine`] — a from-scratch, Hadoop-shaped MapReduce engine (map →
//!   combine → hash shuffle + sort → reduce) running tasks on OS threads
//!   under a slot-limited scheduler, with per-phase statistics, a
//!   configurable per-attempt startup cost modeling cluster task-launch
//!   latency, per-attempt panic isolation, capped-exponential-backoff
//!   retries, and speculative execution for stragglers;
//! * [`faults`] — deterministic, seeded fault injection: task attempts
//!   panic, stall, or die mid-emit as a pure function of
//!   `(seed, job, phase, task, attempt)`, so chaos runs replay exactly;
//! * [`error`] — typed [`MapReduceError`] covering config validation, task
//!   failure after retry exhaustion, and checkpoint persistence;
//! * [`sidefile`] — the shared "external file" of §2.7.2-2.7.3 through which
//!   jobs exchange source weights and estimated truths;
//! * [`driver`] — the two CRH jobs (truth computation keyed by entry,
//!   weight assignment keyed by `(property, source)` with a Combiner), the
//!   iterative wrapper function (§2.7.4), and durable CRC-framed
//!   iteration checkpoints with [`resume`](ParallelCrh::resume_from_checkpoint);
//! * [`external`] — an external merge sorter (sorted spill runs + k-way
//!   heap merge) for data that exceeds RAM;
//! * [`outofcore`] — CRH as one sequential scan per iteration over an
//!   entry-sorted spill file, with `O(K·M + largest group)` peak memory.
//!
//! The engine is general: the word-count test in [`engine`] is three lines.
//! Parallel CRH produces the same truths as sequential
//! [`crh_core::solver::Crh`] regardless of mapper/reducer counts, and —
//! because retries recompute pure task functions and results land in
//! per-task slots — its output is **bit-identical** under any injected
//! fault schedule, including a kill + checkpoint resume (`tests/chaos.rs`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod driver;
pub mod engine;
pub mod error;
pub mod external;
pub mod faults;
pub mod outofcore;
pub mod sidefile;

pub use driver::{CheckpointConfig, ClaimRecord, ParallelCrh, ParallelCrhResult};
pub use engine::{key_hash, map_reduce, no_combiner, JobConfig, JobStats};
pub use error::MapReduceError;
pub use external::{Codec, ExternalSorter, MergeIter};
pub use faults::{AttemptFate, FaultInjector, FaultPlan, Phase};
pub use outofcore::{OocClaim, OocResult, OutOfCoreCrh, SortedClaims};
pub use sidefile::SideFile;
