//! # crh-mapreduce — parallel & out-of-core CRH (§2.7)
//!
//! Large-scale conflict resolution "take\[s\] the advantage of distributed and
//! parallel computing systems". This crate supplies the substrate and the
//! CRH pipelines on top of it:
//!
//! * [`engine`] — a from-scratch, Hadoop-shaped MapReduce engine (map →
//!   combine → hash shuffle + sort → reduce) running tasks on OS threads,
//!   with per-phase statistics, a configurable per-task startup cost that
//!   models cluster task-launch latency, and a task-slot wave model;
//! * [`sidefile`] — the shared "external file" of §2.7.2-2.7.3 through which
//!   jobs exchange source weights and estimated truths;
//! * [`driver`] — the two CRH jobs (truth computation keyed by entry,
//!   weight assignment keyed by `(property, source)` with a Combiner) and
//!   the iterative wrapper function (§2.7.4);
//! * [`external`] — an external merge sorter (sorted spill runs + k-way
//!   heap merge) for data that exceeds RAM;
//! * [`outofcore`] — CRH as one sequential scan per iteration over an
//!   entry-sorted spill file, with `O(K·M + largest group)` peak memory.
//!
//! The engine is general: the word-count test in [`engine`] is three lines.
//! Parallel CRH produces the same truths as sequential
//! [`crh_core::solver::Crh`] regardless of mapper/reducer counts, and so
//! does the out-of-core pipeline regardless of its memory budget.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod engine;
pub mod external;
pub mod outofcore;
pub mod sidefile;

pub use driver::{ClaimRecord, ParallelCrh, ParallelCrhResult};
pub use engine::{map_reduce, no_combiner, JobConfig, JobStats};
pub use external::{Codec, ExternalSorter, MergeIter};
pub use outofcore::{OocClaim, OocResult, OutOfCoreCrh, SortedClaims};
pub use sidefile::SideFile;
