//! Out-of-core CRH: memory-bounded truth discovery over spill files.
//!
//! §2.6 motivates handling "huge data sets that can only tolerate one
//! sequential scan"; §2.7 handles scale with a cluster. This module covers
//! the third regime — a single machine whose *disk* holds the observations
//! but whose RAM cannot: claims are externally sorted by entry once
//! ([`ExternalSorter`]), then each CRH iteration is one sequential scan of
//! the sorted spill file. Peak memory is `O(K·M + largest entry group)`
//! regardless of the number of observations.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use crh_core::error::{CrhError, Result};
use crh_core::ids::SourceId;
use crh_core::loss::{default_loss_for, Loss};
use crh_core::solver::{objective, source_losses, PropertyNorm};
use crh_core::stats::{mean_std, EntryStats, STD_FLOOR};
use crh_core::value::{PropertyType, Truth, Value};
use crh_core::weights::{LogMax, WeightAssigner};

use crate::external::{fresh_spill_path, read_exact_or_eof, Codec, ExternalSorter};

/// One observation tuple for the out-of-core pipeline: `(eID, v, sID)` plus
/// the entry's property (needed to pick the loss without an in-memory
/// table).
#[derive(Debug, Clone, PartialEq)]
pub struct OocClaim {
    /// Dense entry index.
    pub entry: u32,
    /// Property index of the entry.
    pub property: u32,
    /// Source id.
    pub source: u32,
    /// Claimed value.
    pub value: Value,
}

impl Eq for OocClaim {}

impl PartialOrd for OocClaim {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OocClaim {
    /// Sort key is `(entry, source)`; the value does not participate
    /// (duplicate `(entry, source)` pairs are deduplicated upstream).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.entry, self.source).cmp(&(other.entry, other.source))
    }
}

const TAG_CAT: u8 = 0;
const TAG_NUM: u8 = 1;
const TAG_TEXT: u8 = 2;

impl Codec for OocClaim {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.entry.to_le_bytes());
        buf.extend_from_slice(&self.property.to_le_bytes());
        buf.extend_from_slice(&self.source.to_le_bytes());
        match &self.value {
            Value::Cat(c) => {
                buf.push(TAG_CAT);
                buf.extend_from_slice(&c.to_le_bytes());
            }
            Value::Num(x) => {
                buf.push(TAG_NUM);
                buf.extend_from_slice(&x.to_le_bytes());
            }
            Value::Text(t) => {
                buf.push(TAG_TEXT);
                let bytes = t.as_bytes();
                buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                buf.extend_from_slice(bytes);
            }
        }
    }

    fn decode(r: &mut impl Read) -> io::Result<Option<Self>> {
        let Some(entry) = read_exact_or_eof::<4>(r)? else {
            return Ok(None);
        };
        let entry = u32::from_le_bytes(entry);
        let read4 = |r: &mut dyn Read| -> io::Result<[u8; 4]> {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            Ok(b)
        };
        let property = u32::from_le_bytes(read4(r)?);
        let source = u32::from_le_bytes(read4(r)?);
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let value = match tag[0] {
            TAG_CAT => Value::Cat(u32::from_le_bytes(read4(r)?)),
            TAG_NUM => {
                let mut b = [0u8; 8];
                r.read_exact(&mut b)?;
                Value::Num(f64::from_le_bytes(b))
            }
            TAG_TEXT => {
                let len = u32::from_le_bytes(read4(r)?) as usize;
                let mut b = vec![0u8; len];
                r.read_exact(&mut b)?;
                Value::Text(
                    String::from_utf8(b)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                )
            }
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown value tag {t}"),
                ))
            }
        };
        Ok(Some(Self {
            entry,
            property,
            source,
            value,
        }))
    }
}

/// A spill file of entry-sorted claims; deleted on drop. Built once, then
/// sequentially scanned by every CRH iteration.
pub struct SortedClaims {
    path: PathBuf,
    len: usize,
    num_sources: usize,
    num_properties: usize,
}

impl std::fmt::Debug for SortedClaims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SortedClaims")
            .field("len", &self.len)
            .field("num_sources", &self.num_sources)
            .field("num_properties", &self.num_properties)
            .finish()
    }
}

impl Drop for SortedClaims {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl SortedClaims {
    /// Externally sort `claims` by entry into a single spill file, keeping
    /// at most `max_in_memory` claims buffered at any time.
    pub fn build(
        claims: impl IntoIterator<Item = OocClaim>,
        max_in_memory: usize,
    ) -> io::Result<Self> {
        let mut sorter = ExternalSorter::new(max_in_memory);
        let mut num_sources = 0usize;
        let mut num_properties = 0usize;
        let mut len = 0usize;
        for c in claims {
            num_sources = num_sources.max(c.source as usize + 1);
            num_properties = num_properties.max(c.property as usize + 1);
            len += 1;
            sorter.push(c)?;
        }
        let path = fresh_spill_path("sorted");
        let mut w = BufWriter::new(std::fs::File::create(&path)?);
        let mut buf = Vec::new();
        for rec in sorter.finish()? {
            let rec = rec?;
            buf.clear();
            rec.encode(&mut buf);
            w.write_all(&buf)?;
        }
        w.flush()?;
        Ok(Self {
            path,
            len,
            num_sources,
            num_properties,
        })
    }

    /// Number of claims.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no claims.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of sources (1 + max source id).
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of properties (1 + max property id).
    pub fn num_properties(&self) -> usize {
        self.num_properties
    }

    /// Sequentially scan entry groups: yields
    /// `(entry, property, Vec<(SourceId, Value)>)` in entry order.
    pub fn scan_groups(&self) -> io::Result<GroupIter> {
        Ok(GroupIter {
            reader: BufReader::new(std::fs::File::open(&self.path)?),
            pending: None,
            done: false,
        })
    }
}

/// Iterator over entry groups of a [`SortedClaims`] file.
pub struct GroupIter {
    reader: BufReader<std::fs::File>,
    pending: Option<OocClaim>,
    done: bool,
}

impl Iterator for GroupIter {
    type Item = io::Result<(u32, u32, Vec<(SourceId, Value)>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let first = match self.pending.take() {
            Some(c) => c,
            None => match OocClaim::decode(&mut self.reader) {
                Ok(Some(c)) => c,
                Ok(None) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            },
        };
        let entry = first.entry;
        let property = first.property;
        let mut group = vec![(SourceId(first.source), first.value)];
        loop {
            match OocClaim::decode(&mut self.reader) {
                Ok(Some(c)) if c.entry == entry => {
                    group.push((SourceId(c.source), c.value));
                }
                Ok(Some(c)) => {
                    self.pending = Some(c);
                    break;
                }
                Ok(None) => {
                    self.done = true;
                    break;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        Some(Ok((entry, property, group)))
    }
}

/// Out-of-core CRH configuration.
pub struct OutOfCoreCrh {
    /// Claims kept in memory during the external sort.
    pub max_in_memory: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Relative objective-decrease tolerance.
    pub tol: f64,
    /// Cross-property normalization (§2.5).
    pub property_norm: PropertyNorm,
    /// Per-source observation-count normalization (§2.5).
    pub count_normalize: bool,
    assigner: Box<dyn WeightAssigner>,
    /// Property type per property index (drives the default loss choice).
    property_types: Vec<PropertyType>,
}

impl std::fmt::Debug for OutOfCoreCrh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutOfCoreCrh")
            .field("max_in_memory", &self.max_in_memory)
            .field("max_iters", &self.max_iters)
            .field("assigner", &self.assigner.name())
            .finish()
    }
}

/// Result of an out-of-core run (truths are delivered via the sink).
#[derive(Debug, Clone)]
pub struct OocResult {
    /// Final source weights.
    pub weights: Vec<f64>,
    /// Objective per iteration.
    pub objective_trace: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance criterion was met.
    pub converged: bool,
}

impl OutOfCoreCrh {
    /// Build for a schema given as property types (paper-default losses are
    /// picked per type: 0-1 vote, weighted median, edit distance).
    pub fn new(property_types: Vec<PropertyType>) -> Result<Self> {
        if property_types.is_empty() {
            return Err(CrhError::InvalidParameter(
                "need at least one property type".into(),
            ));
        }
        Ok(Self {
            max_in_memory: 1 << 20,
            max_iters: 50,
            tol: 1e-6,
            property_norm: PropertyNorm::SumToOne,
            count_normalize: true,
            assigner: Box::new(LogMax),
            property_types,
        })
    }

    /// Replace the weight assigner.
    pub fn weight_assigner(mut self, a: impl WeightAssigner + 'static) -> Self {
        self.assigner = Box::new(a);
        self
    }

    /// Set the external-sort memory budget (in records).
    pub fn max_in_memory(mut self, n: usize) -> Self {
        self.max_in_memory = n.max(1);
        self
    }

    /// Run CRH over `sorted`, delivering final truths through `sink`
    /// (called once per entry, in entry order, during the last scan).
    pub fn run(
        &self,
        sorted: &SortedClaims,
        mut sink: impl FnMut(u32, &Truth),
    ) -> Result<OocResult> {
        if sorted.is_empty() {
            return Err(CrhError::EmptyTable);
        }
        if sorted.num_properties() > self.property_types.len() {
            return Err(CrhError::InvalidParameter(format!(
                "claims reference {} properties but only {} types were declared",
                sorted.num_properties(),
                self.property_types.len()
            )));
        }
        let losses: Vec<Box<dyn Loss>> = self
            .property_types
            .iter()
            .map(|&t| default_loss_for(t))
            .collect();
        let k = sorted.num_sources();
        let m = self.property_types.len();

        let io_err = |e: io::Error| CrhError::InvalidParameter(format!("spill io: {e}"));

        let mut weights = vec![1.0f64; k];
        let mut trace: Vec<f64> = Vec::new();
        let mut converged = false;
        let mut iterations = 0;
        let mut source_counts = vec![0usize; k];

        for it in 0..self.max_iters {
            iterations = it + 1;
            let last = it + 1 == self.max_iters;
            let mut dev = vec![vec![0.0f64; k]; m];
            let groups = sorted.scan_groups().map_err(io_err)?;

            // one sequential scan: fit each group's truth, accumulate dev
            for group in groups {
                let (entry, property, obs) = group.map_err(io_err)?;
                let loss = &losses[property as usize];
                let stats = group_stats(&obs);
                let truth = loss.fit(&obs, &weights, &stats);
                let row = &mut dev[property as usize];
                for (s, v) in &obs {
                    row[s.index()] += loss.loss(&truth, v, &stats);
                    if it == 0 {
                        source_counts[s.index()] += 1;
                    }
                }
                if last {
                    sink(entry, &truth);
                }
            }

            let per_source = source_losses(
                &dev,
                &source_counts,
                self.property_norm,
                self.count_normalize,
            );
            let f = objective(&weights, &per_source);
            if let Some(&prev) = trace.last() {
                let prev: f64 = prev;
                trace.push(f);
                if (prev - f).abs() <= self.tol * prev.abs().max(1.0) {
                    converged = true;
                    if !last {
                        // deliver truths with the converged weights in one
                        // final scan
                        let groups = sorted.scan_groups().map_err(io_err)?;
                        for group in groups {
                            let (entry, property, obs) = group.map_err(io_err)?;
                            let loss = &losses[property as usize];
                            let stats = group_stats(&obs);
                            let truth = loss.fit(&obs, &weights, &stats);
                            sink(entry, &truth);
                        }
                    }
                    break;
                }
            } else {
                trace.push(f);
            }
            weights = self.assigner.assign(&per_source);
        }

        Ok(OocResult {
            weights,
            objective_trace: trace,
            iterations,
            converged,
        })
    }
}

/// Per-group statistics computed on the fly (mirrors
/// [`compute_entry_stats`](crh_core::stats::compute_entry_stats)).
fn group_stats(obs: &[(SourceId, Value)]) -> EntryStats {
    let nums: Vec<f64> = obs.iter().filter_map(|(_, v)| v.as_num()).collect();
    let (mean, std) = mean_std(&nums);
    let domain_size = obs
        .iter()
        .filter_map(|(_, v)| v.as_cat())
        .map(|c| c as usize + 1)
        .max()
        .unwrap_or(0);
    EntryStats {
        std: std.max(STD_FLOOR),
        mean,
        count: obs.len(),
        domain_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crh_core::ids::EntryId;
    use crh_core::solver::CrhBuilder;
    use crh_core::table::ObservationTable;

    /// Flatten an in-memory table to OocClaims (shuffled to exercise the
    /// sort).
    fn to_claims(table: &ObservationTable) -> Vec<OocClaim> {
        let mut claims: Vec<OocClaim> = table
            .iter_claims()
            .map(|(e, s, v)| OocClaim {
                entry: e.0,
                property: table.entry(e).property.0,
                source: s.0,
                value: v.clone(),
            })
            .collect();
        // deterministic shuffle
        claims.sort_by_key(|c| (c.entry as u64 * 2654435761 + c.source as u64) % 997);
        claims
    }

    fn test_table() -> ObservationTable {
        use crh_core::ids::{ObjectId, SourceId};
        use crh_core::schema::Schema;
        use crh_core::table::TableBuilder;
        let mut schema = Schema::new();
        let t = schema.add_continuous("t");
        let c = schema.add_categorical("c");
        let mut b = TableBuilder::new(schema);
        for i in 0..25u32 {
            let truth = 50.0 + i as f64;
            b.add(ObjectId(i), t, SourceId(0), Value::Num(truth))
                .unwrap();
            b.add(ObjectId(i), t, SourceId(1), Value::Num(truth + 1.0))
                .unwrap();
            b.add(ObjectId(i), t, SourceId(2), Value::Num(truth + 30.0))
                .unwrap();
            b.add_label(ObjectId(i), c, SourceId(0), "x").unwrap();
            b.add_label(ObjectId(i), c, SourceId(1), "x").unwrap();
            b.add_label(ObjectId(i), c, SourceId(2), "y").unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn claim_codec_roundtrip() {
        for v in [
            Value::Cat(7),
            Value::Num(-1.25),
            Value::Text("gate A2 → B1".into()),
            Value::Text(String::new()),
        ] {
            let claim = OocClaim {
                entry: 3,
                property: 1,
                source: 9,
                value: v,
            };
            let mut buf = Vec::new();
            claim.encode(&mut buf);
            let mut r = buf.as_slice();
            let back = OocClaim::decode(&mut r).unwrap().unwrap();
            assert_eq!(back, claim);
            assert!(OocClaim::decode(&mut r).unwrap().is_none());
        }
    }

    #[test]
    fn sorted_claims_group_scan() {
        let table = test_table();
        let sorted = SortedClaims::build(to_claims(&table), 7).unwrap();
        assert_eq!(sorted.len(), table.num_observations());
        assert_eq!(sorted.num_sources(), 3);
        let mut entries_seen = 0;
        let mut prev = None;
        for g in sorted.scan_groups().unwrap() {
            let (entry, _prop, obs) = g.unwrap();
            if let Some(p) = prev {
                assert!(entry > p, "groups in ascending entry order");
            }
            prev = Some(entry);
            assert_eq!(obs.len(), 3);
            entries_seen += 1;
        }
        assert_eq!(entries_seen, table.num_entries());
    }

    #[test]
    fn out_of_core_matches_in_memory_crh() {
        let table = test_table();
        let in_mem = CrhBuilder::new().build().unwrap().run(&table).unwrap();

        let sorted = SortedClaims::build(to_claims(&table), 11).unwrap();
        let ooc = OutOfCoreCrh::new(vec![PropertyType::Continuous, PropertyType::Categorical])
            .unwrap()
            .max_in_memory(11);
        let mut truths = std::collections::HashMap::new();
        let res = ooc
            .run(&sorted, |entry, truth| {
                truths.insert(entry, truth.point());
            })
            .unwrap();

        for (a, b) in res.weights.iter().zip(&in_mem.weights) {
            assert!(
                (a - b).abs() < 1e-9,
                "{:?} vs {:?}",
                res.weights,
                in_mem.weights
            );
        }
        assert_eq!(truths.len(), table.num_entries());
        for (e, t) in in_mem.truths.iter() {
            let ours = &truths[&(e.0)];
            assert!(t.point().matches(ours), "entry {e}");
        }
        let _ = EntryId(0);
    }

    #[test]
    fn empty_claims_rejected() {
        let sorted = SortedClaims::build(Vec::new(), 4).unwrap();
        let ooc = OutOfCoreCrh::new(vec![PropertyType::Continuous]).unwrap();
        assert!(ooc.run(&sorted, |_, _| {}).is_err());
    }

    #[test]
    fn undeclared_property_rejected() {
        let table = test_table();
        let sorted = SortedClaims::build(to_claims(&table), 64).unwrap();
        let ooc = OutOfCoreCrh::new(vec![PropertyType::Continuous]).unwrap();
        assert!(ooc.run(&sorted, |_, _| {}).is_err());
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let table = test_table();
        let path;
        {
            let sorted = SortedClaims::build(to_claims(&table), 8).unwrap();
            path = sorted.path.clone();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn converges_with_generous_iteration_cap() {
        let table = test_table();
        let sorted = SortedClaims::build(to_claims(&table), 1024).unwrap();
        let ooc =
            OutOfCoreCrh::new(vec![PropertyType::Continuous, PropertyType::Categorical]).unwrap();
        let mut n = 0;
        let res = ooc.run(&sorted, |_, _| n += 1).unwrap();
        assert!(res.converged);
        assert_eq!(n, table.num_entries(), "sink fires exactly once per entry");
        assert!(res.objective_trace.len() >= 2);
    }
}
