//! Shared side files (§2.7.2-2.7.3).
//!
//! Hadoop CRH keeps the current source weights and estimated truths "in an
//! external file \[that\] all Reducer/Mapper nodes can read". [`SideFile`]
//! models that distributed-cache file in-process: tasks take read snapshots,
//! the wrapper function replaces the contents between jobs.

use std::sync::{Arc, RwLock};

/// A shared, versioned, read-mostly value standing in for an HDFS
/// distributed-cache file.
#[derive(Debug)]
pub struct SideFile<T> {
    inner: Arc<RwLock<(u64, Arc<T>)>>,
}

impl<T> Clone for SideFile<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> SideFile<T> {
    /// Create with initial contents (version 0).
    pub fn new(value: T) -> Self {
        Self {
            inner: Arc::new(RwLock::new((0, Arc::new(value)))),
        }
    }

    /// Take a cheap read snapshot (an `Arc` clone) of the current contents.
    /// Tasks hold the snapshot for their whole run, exactly like reading the
    /// file once at task start.
    pub fn read(&self) -> Arc<T> {
        Arc::clone(&self.inner.read().expect("side file lock poisoned").1)
    }

    /// Replace the contents (the wrapper's "update the external file"),
    /// bumping the version.
    pub fn write(&self, value: T) {
        let mut guard = self.inner.write().expect("side file lock poisoned");
        guard.0 += 1;
        guard.1 = Arc::new(value);
    }

    /// How many times the file has been rewritten.
    pub fn version(&self) -> u64 {
        self.inner.read().expect("side file lock poisoned").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_stable_across_writes() {
        let f = SideFile::new(vec![1, 2, 3]);
        let snap = f.read();
        f.write(vec![9]);
        assert_eq!(*snap, vec![1, 2, 3], "old snapshot unchanged");
        assert_eq!(*f.read(), vec![9]);
        assert_eq!(f.version(), 1);
    }

    #[test]
    fn shared_between_clones() {
        let f = SideFile::new(0u32);
        let g = f.clone();
        f.write(7);
        assert_eq!(*g.read(), 7);
        assert_eq!(g.version(), 1);
    }

    #[test]
    fn concurrent_readers() {
        let f = SideFile::new(42u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let f = f.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(*f.read(), 42);
                    }
                });
            }
        });
    }
}
