//! Chaos suite: parallel CRH under deterministic fault injection.
//!
//! Every test compares a run executed under an injected fault plan —
//! task panics, stragglers, deaths mid-emit, or all three — against the
//! same run with no faults, and requires the final truths and source
//! weights to be **bit-identical**. Retries recompute pure task
//! functions and results land in per-task slots, so no fault schedule
//! may perturb the numbers. A second group kills a checkpointed run
//! mid-flight and asserts the resumed run is also bit-identical.

use std::time::Duration;

use crh_core::ids::{ObjectId, SourceId};
use crh_core::rng::{Rng, StdRng};
use crh_core::schema::Schema;
use crh_core::table::{ObservationTable, TableBuilder};
use crh_core::value::Value;
use crh_mapreduce::{
    CheckpointConfig, FaultInjector, FaultPlan, JobConfig, ParallelCrh, ParallelCrhResult,
};

/// A small but non-trivial heterogeneous table: continuous and
/// categorical properties, sources of very different reliability,
/// missing observations.
fn chaos_table(seed: u64, objects: u32, sources: u32) -> ObservationTable {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED);
    let mut schema = Schema::new();
    let price = schema.add_continuous("price");
    let cat = schema.add_categorical("sector");
    let labels = ["tech", "energy", "retail"];
    let mut b = TableBuilder::new(schema);
    for o in 0..objects {
        let truth_num = 100.0 + f64::from(o) * 3.0;
        let truth_lab = labels[(o as usize) % labels.len()];
        for s in 0..sources {
            // source s lies more the higher its id; source coverage ~85%
            if rng.random::<f64>() < 0.15 {
                continue;
            }
            let bias = f64::from(s) * rng.random_range(0.0..2.0);
            b.add(
                ObjectId(o),
                price,
                SourceId(s),
                Value::Num(truth_num + bias),
            )
            .unwrap();
            let lab = if rng.random::<f64>() < 0.2 + 0.1 * f64::from(s) {
                labels[rng.random_range(0..labels.len())]
            } else {
                truth_lab
            };
            b.add_label(ObjectId(o), cat, SourceId(s), lab).unwrap();
        }
    }
    b.build().unwrap()
}

fn run_with(table: &ObservationTable, plan: Option<FaultPlan>) -> ParallelCrhResult {
    let job = JobConfig {
        num_mappers: 3,
        num_reducers: 3,
        task_slots: 8,
        max_attempts: 12,
        backoff_base: Duration::from_micros(100),
        backoff_cap: Duration::from_millis(2),
        faults: plan.map(FaultInjector::new),
        ..JobConfig::default()
    };
    ParallelCrh::default()
        .job_config(job)
        .max_iters(6)
        .run(table)
        .expect("chaos run must converge to the fault-free answer")
}

fn assert_bit_identical(reference: &ParallelCrhResult, chaotic: &ParallelCrhResult) {
    assert_eq!(reference.iterations, chaotic.iterations);
    assert_eq!(reference.converged, chaotic.converged);
    for (i, (a, b)) in reference.weights.iter().zip(&chaotic.weights).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "weight {i} diverged: {a} vs {b}");
    }
    for (e, t) in reference.truths.iter() {
        assert_eq!(t, chaotic.truths.get(e), "truth for entry {e} diverged");
    }
}

#[test]
fn panics_never_change_the_answer() {
    let table = chaos_table(1, 16, 5);
    let reference = run_with(&table, None);
    for seed in 0..6 {
        let chaotic = run_with(&table, Some(FaultPlan::new(seed).panics(0.4)));
        assert_bit_identical(&reference, &chaotic);
    }
}

#[test]
fn stragglers_never_change_the_answer() {
    let table = chaos_table(2, 12, 4);
    let reference = run_with(&table, None);
    for seed in 0..4 {
        let plan = FaultPlan::new(seed).stalls(0.3, Duration::from_millis(25));
        let chaotic = run_with(&table, Some(plan));
        assert_bit_identical(&reference, &chaotic);
    }
}

#[test]
fn deaths_mid_emit_never_change_the_answer() {
    let table = chaos_table(3, 16, 5);
    let reference = run_with(&table, None);
    for seed in 0..6 {
        let chaotic = run_with(&table, Some(FaultPlan::new(seed).dies_mid_work(0.5)));
        assert_bit_identical(&reference, &chaotic);
    }
}

#[test]
fn combined_chaos_never_changes_the_answer() {
    let table = chaos_table(4, 14, 5);
    let reference = run_with(&table, None);
    for seed in 0..4 {
        let plan = FaultPlan::new(seed)
            .panics(0.2)
            .stalls(0.15, Duration::from_millis(15))
            .dies_mid_work(0.2)
            .fault_free_after(4);
        let chaotic = run_with(&table, Some(plan));
        assert_bit_identical(&reference, &chaotic);
    }
}

#[test]
fn chaos_runs_actually_retry() {
    // Guard against the suite silently testing nothing: under a hot plan
    // the stats must show injected failures were hit and retried.
    let table = chaos_table(5, 12, 4);
    let chaotic = run_with(
        &table,
        Some(FaultPlan::new(7).panics(0.5).dies_mid_work(0.3)),
    );
    let retries: usize = chaotic
        .truth_job_stats
        .iter()
        .chain(&chaotic.weight_job_stats)
        .map(|s| s.retries)
        .sum();
    let attempts: usize = chaotic
        .truth_job_stats
        .iter()
        .chain(&chaotic.weight_job_stats)
        .map(|s| s.attempts)
        .sum();
    assert!(retries > 0, "plan injected no faults at all");
    assert!(attempts > retries, "every retry implies a prior attempt");
}

#[test]
fn chaos_replays_exactly_per_seed() {
    let table = chaos_table(6, 10, 4);
    let plan = || FaultPlan::new(11).panics(0.3).dies_mid_work(0.2);
    let a = run_with(&table, Some(plan()));
    let b = run_with(&table, Some(plan()));
    assert_bit_identical(&a, &b);
    let (ra, rb): (Vec<_>, Vec<_>) = (
        a.truth_job_stats.iter().map(|s| s.retries).collect(),
        b.truth_job_stats.iter().map(|s| s.retries).collect(),
    );
    assert_eq!(ra, rb, "same seed must replay the same fault schedule");
}

#[test]
fn faults_scoped_to_specific_jobs_only_hit_those_jobs() {
    let table = chaos_table(7, 10, 4);
    // two jobs per iteration: jobs 2..4 are iteration 1
    let plan = FaultPlan::new(3).panics(0.9).only_jobs(2..4);
    let chaotic = run_with(&table, Some(plan));
    let reference = run_with(&table, None);
    assert_bit_identical(&reference, &chaotic);
    assert_eq!(
        chaotic.truth_job_stats[0].retries, 0,
        "iteration 0 untouched"
    );
    assert_eq!(
        chaotic.weight_job_stats[0].retries, 0,
        "iteration 0 untouched"
    );
    let it1_retries = chaotic.truth_job_stats[1].retries
        + chaotic.weight_job_stats.get(1).map_or(0, |s| s.retries);
    assert!(it1_retries > 0, "iteration 1 should have been hit");
}

// ---- kill + checkpoint/resume under chaos ----

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("crh_chaos_{}_{name}.ckpt", std::process::id()))
}

#[test]
fn kill_then_resume_under_chaos_is_bit_identical() {
    let table = chaos_table(8, 12, 5);
    let reference = run_with(&table, None);
    let path = tmp("kill_resume");

    // "Kill" the run after 2 of 6 iterations, with faults raging, then
    // resume — also under (different!) faults. Both halves must still
    // land exactly on the fault-free answer.
    let job = |seed: u64| JobConfig {
        num_mappers: 3,
        num_reducers: 3,
        task_slots: 8,
        max_attempts: 12,
        backoff_base: Duration::from_micros(100),
        backoff_cap: Duration::from_millis(2),
        faults: Some(FaultInjector::new(
            FaultPlan::new(seed).panics(0.3).dies_mid_work(0.2),
        )),
        ..JobConfig::default()
    };
    let killed = ParallelCrh::default()
        .job_config(job(21))
        .max_iters(2)
        .checkpoint(CheckpointConfig::new(&path))
        .run(&table)
        .unwrap();
    assert_eq!(killed.checkpoints_written, 2);

    let resumed = ParallelCrh::default()
        .job_config(job(99))
        .max_iters(6)
        .resume_from_checkpoint(&table, &path)
        .unwrap();
    assert_eq!(resumed.resumed_from, Some(1));
    assert_bit_identical(&reference, &resumed);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_replays_from_sparse_checkpoints() {
    // checkpoint only every 2nd iteration: resume restarts from the last
    // frame and replays the missing iteration, still bit-identical
    let table = chaos_table(9, 10, 4);
    let reference = run_with(&table, None);
    let path = tmp("sparse");
    let partial = ParallelCrh::default()
        .max_iters(3)
        .checkpoint(CheckpointConfig::new(&path).every(2))
        .run(&table)
        .unwrap();
    assert_eq!(partial.checkpoints_written, 1, "only iteration 1 persisted");
    let resumed = ParallelCrh::default()
        .job_config(JobConfig {
            num_mappers: 3,
            num_reducers: 3,
            task_slots: 8,
            max_attempts: 12,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(2),
            faults: Some(FaultInjector::new(FaultPlan::new(5).panics(0.35))),
            ..JobConfig::default()
        })
        .max_iters(6)
        .resume_from_checkpoint(&table, &path)
        .unwrap();
    assert_eq!(resumed.resumed_from, Some(1));
    assert_bit_identical(&reference, &resumed);
    std::fs::remove_file(&path).ok();
}
