//! Property-based tests for the MapReduce engine: equivalence with a
//! single-threaded reference under arbitrary data and parallelism.

use std::collections::BTreeMap;

use proptest::prelude::*;

use crh_core::value::Value;
use crh_mapreduce::{map_reduce, Codec, ExternalSorter, JobConfig, OocClaim, SortedClaims};

/// Single-threaded reference word count.
fn reference_count(docs: &[String]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for d in docs {
        for w in d.split_whitespace() {
            *m.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    m
}

fn engine_count(docs: &[String], cfg: &JobConfig) -> BTreeMap<String, usize> {
    let (out, _) = map_reduce(
        cfg,
        docs,
        |doc: &String, emit: &mut dyn FnMut(String, usize)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1usize);
            }
        },
        Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
        |_k, vs| vs.into_iter().sum::<usize>(),
    );
    out.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine agrees with the single-threaded reference for any input
    /// and any mapper/reducer/slot configuration.
    #[test]
    fn matches_reference_under_any_parallelism(
        docs in prop::collection::vec("[ab c]{0,12}", 0..20),
        mappers in 1usize..6,
        reducers in 1usize..9,
        slots in 1usize..5,
        combiner in any::<bool>(),
    ) {
        let cfg = JobConfig {
            num_mappers: mappers,
            num_reducers: reducers,
            task_slots: slots,
            use_combiner: combiner,
            ..JobConfig::default()
        };
        prop_assert_eq!(engine_count(&docs, &cfg), reference_count(&docs));
    }

    /// The external sorter agrees with std sort for any memory budget.
    #[test]
    fn external_sort_matches_std_sort(
        entries in prop::collection::vec((0u32..30, 0u32..8, -100.0f64..100.0), 0..200),
        budget in 1usize..64,
    ) {
        let claims: Vec<OocClaim> = entries
            .iter()
            .map(|&(e, s, v)| OocClaim {
                entry: e,
                property: 0,
                source: s,
                value: Value::Num(v),
            })
            .collect();
        let mut expected = claims.clone();
        expected.sort();
        let mut sorter = ExternalSorter::new(budget);
        for c in claims {
            sorter.push(c).unwrap();
        }
        let merged: Vec<OocClaim> = sorter
            .finish()
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        // Ord on OocClaim is by (entry, source) only, so compare keys.
        let keys = |v: &[OocClaim]| v.iter().map(|c| (c.entry, c.source)).collect::<Vec<_>>();
        prop_assert_eq!(keys(&merged), keys(&expected));
    }

    /// The claim codec round-trips arbitrary values through spill bytes.
    #[test]
    fn claim_codec_roundtrips(
        entry in any::<u32>(),
        property in any::<u32>(),
        source in any::<u32>(),
        which in 0u8..3,
        num in any::<f64>(),
        cat in any::<u32>(),
        text in "[^\u{0}]{0,40}",
    ) {
        prop_assume!(!num.is_nan());
        let value = match which {
            0 => Value::Cat(cat),
            1 => Value::Num(num),
            _ => Value::Text(text),
        };
        let claim = OocClaim { entry, property, source, value };
        let mut buf = Vec::new();
        claim.encode(&mut buf);
        let mut r = buf.as_slice();
        let back = OocClaim::decode(&mut r).unwrap().unwrap();
        prop_assert_eq!(back, claim);
    }

    /// SortedClaims group scan covers every claim exactly once, grouped.
    #[test]
    fn sorted_claims_scan_is_a_partition(
        entries in prop::collection::vec((0u32..12, 0u32..5), 1..60),
        budget in 1usize..32,
    ) {
        // dedup (entry, source) pairs as the upstream table builder does
        let mut seen = std::collections::HashSet::new();
        let claims: Vec<OocClaim> = entries
            .iter()
            .filter(|&&(e, s)| seen.insert((e, s)))
            .map(|&(e, s)| OocClaim {
                entry: e,
                property: 0,
                source: s,
                value: Value::Num(f64::from(e) + f64::from(s)),
            })
            .collect();
        let n = claims.len();
        let sorted = SortedClaims::build(claims, budget).unwrap();
        let mut total = 0usize;
        let mut prev_entry = None;
        for g in sorted.scan_groups().unwrap() {
            let (entry, _, obs) = g.unwrap();
            if let Some(p) = prev_entry {
                prop_assert!(entry > p);
            }
            prev_entry = Some(entry);
            // sources within a group are sorted and unique
            for w in obs.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            total += obs.len();
        }
        prop_assert_eq!(total, n);
    }

    /// Outputs are globally sorted by key and keys are unique.
    #[test]
    fn output_sorted_and_deduplicated(
        docs in prop::collection::vec("[a-d ]{0,10}", 1..12),
        reducers in 1usize..6,
    ) {
        let cfg = JobConfig {
            num_reducers: reducers,
            ..JobConfig::default()
        };
        let (out, stats) = map_reduce(
            &cfg,
            &docs,
            |doc: &String, emit: &mut dyn FnMut(String, usize)| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
            |_k, vs| vs.into_iter().sum::<usize>(),
        );
        for w in out.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "sorted unique keys");
        }
        prop_assert_eq!(stats.reduced_keys, out.len());
        prop_assert!(stats.shuffled_records <= stats.map_output_records);
    }
}
