//! Randomized property tests for the MapReduce engine: equivalence with a
//! single-threaded reference under arbitrary data and parallelism.
//!
//! Originally `proptest` properties, now driven by the in-tree seeded
//! generator so the workspace tests run offline. Every case is
//! reproducible from the seed named in its failure message.

use std::collections::BTreeMap;

use crh_core::rng::{Rng, StdRng};
use crh_core::value::Value;
use crh_mapreduce::{map_reduce, Codec, ExternalSorter, JobConfig, OocClaim, SortedClaims};

const CASES: u64 = 64;

/// Single-threaded reference word count.
fn reference_count(docs: &[String]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for d in docs {
        for w in d.split_whitespace() {
            *m.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    m
}

fn engine_count(docs: &[String], cfg: &JobConfig) -> BTreeMap<String, usize> {
    let (out, _) = map_reduce(
        cfg,
        docs,
        |doc: &String, emit: &mut dyn FnMut(String, usize)| {
            for w in doc.split_whitespace() {
                emit(w.to_string(), 1usize);
            }
        },
        Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
        |_k, vs| vs.into_iter().sum::<usize>(),
    )
    .expect("word count job");
    out.into_iter().collect()
}

fn random_doc(rng: &mut StdRng, alphabet: &[char], max_len: usize) -> String {
    let len = rng.random_range(0..max_len + 1);
    (0..len)
        .map(|_| alphabet[rng.random_range(0..alphabet.len())])
        .collect()
}

/// The engine agrees with the single-threaded reference for any input
/// and any mapper/reducer/slot configuration.
#[test]
fn matches_reference_under_any_parallelism() {
    let alphabet = ['a', 'b', ' ', 'c', ' '];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let docs: Vec<String> = (0..rng.random_range(0usize..20))
            .map(|_| random_doc(&mut rng, &alphabet, 12))
            .collect();
        let cfg = JobConfig {
            num_mappers: rng.random_range(1usize..6),
            num_reducers: rng.random_range(1usize..9),
            task_slots: rng.random_range(1usize..5),
            use_combiner: rng.random::<bool>(),
            ..JobConfig::default()
        };
        assert_eq!(
            engine_count(&docs, &cfg),
            reference_count(&docs),
            "seed {seed} cfg {cfg:?}"
        );
    }
}

/// The external sorter agrees with std sort for any memory budget.
#[test]
fn external_sort_matches_std_sort() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5037);
        let claims: Vec<OocClaim> = (0..rng.random_range(0usize..200))
            .map(|_| OocClaim {
                entry: rng.random_range(0u32..30),
                property: 0,
                source: rng.random_range(0u32..8),
                value: Value::Num(rng.random_range(-100.0f64..100.0)),
            })
            .collect();
        let budget = rng.random_range(1usize..64);
        let mut expected = claims.clone();
        expected.sort();
        let mut sorter = ExternalSorter::new(budget);
        for c in claims {
            sorter.push(c).unwrap();
        }
        let merged: Vec<OocClaim> = sorter
            .finish()
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        // Ord on OocClaim is by (entry, source) only, so compare keys.
        let keys = |v: &[OocClaim]| v.iter().map(|c| (c.entry, c.source)).collect::<Vec<_>>();
        assert_eq!(keys(&merged), keys(&expected), "seed {seed}");
    }
}

/// The claim codec round-trips arbitrary values through spill bytes.
#[test]
fn claim_codec_roundtrips() {
    let text_alphabet: &[char] = &['a', 'Z', '0', ' ', ',', '"', '\n', 'é', '中', '🦀'];
    for seed in 0..CASES * 4 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DEC);
        let value = match rng.random_range(0u32..3) {
            0 => Value::Cat(rng.random::<u32>()),
            1 => {
                // arbitrary finite bit patterns, including subnormals
                let mut num = f64::from_bits(rng.random::<u64>());
                while num.is_nan() {
                    num = f64::from_bits(rng.random::<u64>());
                }
                Value::Num(num)
            }
            _ => {
                let len = rng.random_range(0usize..40);
                Value::Text(
                    (0..len)
                        .map(|_| text_alphabet[rng.random_range(0..text_alphabet.len())])
                        .collect(),
                )
            }
        };
        let claim = OocClaim {
            entry: rng.random::<u32>(),
            property: rng.random::<u32>(),
            source: rng.random::<u32>(),
            value,
        };
        let mut buf = Vec::new();
        claim.encode(&mut buf);
        let mut r = buf.as_slice();
        let back = OocClaim::decode(&mut r).unwrap().unwrap();
        assert_eq!(back, claim, "seed {seed}");
    }
}

/// SortedClaims group scan covers every claim exactly once, grouped.
#[test]
fn sorted_claims_scan_is_a_partition() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA17);
        // dedup (entry, source) pairs as the upstream table builder does
        let mut seen = std::collections::HashSet::new();
        let claims: Vec<OocClaim> = (0..rng.random_range(1usize..60))
            .map(|_| (rng.random_range(0u32..12), rng.random_range(0u32..5)))
            .filter(|&(e, s)| seen.insert((e, s)))
            .map(|(e, s)| OocClaim {
                entry: e,
                property: 0,
                source: s,
                value: Value::Num(f64::from(e) + f64::from(s)),
            })
            .collect();
        let budget = rng.random_range(1usize..32);
        let n = claims.len();
        let sorted = SortedClaims::build(claims, budget).unwrap();
        let mut total = 0usize;
        let mut prev_entry = None;
        for g in sorted.scan_groups().unwrap() {
            let (entry, _, obs) = g.unwrap();
            if let Some(p) = prev_entry {
                assert!(entry > p, "seed {seed}");
            }
            prev_entry = Some(entry);
            // sources within a group are sorted and unique
            for w in obs.windows(2) {
                assert!(w[0].0 < w[1].0, "seed {seed}");
            }
            total += obs.len();
        }
        assert_eq!(total, n, "seed {seed}");
    }
}

/// Outputs are globally sorted by key and keys are unique.
#[test]
fn output_sorted_and_deduplicated() {
    let alphabet = ['a', 'b', 'c', 'd', ' '];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DD);
        let docs: Vec<String> = (0..rng.random_range(1usize..12))
            .map(|_| random_doc(&mut rng, &alphabet, 10))
            .collect();
        let cfg = JobConfig {
            num_reducers: rng.random_range(1usize..6),
            ..JobConfig::default()
        };
        let (out, stats) = map_reduce(
            &cfg,
            &docs,
            |doc: &String, emit: &mut dyn FnMut(String, usize)| {
                for w in doc.split_whitespace() {
                    emit(w.to_string(), 1usize);
                }
            },
            Some(|_k: &String, vs: Vec<usize>| vs.into_iter().sum::<usize>()),
            |_k, vs| vs.into_iter().sum::<usize>(),
        )
        .unwrap();
        for w in out.windows(2) {
            assert!(w[0].0 < w[1].0, "seed {seed}: sorted unique keys");
        }
        assert_eq!(stats.reduced_keys, out.len(), "seed {seed}");
        assert!(
            stats.shuffled_records <= stats.map_output_records,
            "seed {seed}"
        );
    }
}
