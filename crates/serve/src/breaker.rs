//! Per-source circuit breakers for bad-feed containment.
//!
//! A source that keeps sending malformed or non-finite observations can
//! poison the weight estimates (one NaN in an accumulated distance is
//! permanent) and waste fold capacity. Each source gets a tiny state
//! machine:
//!
//! ```text
//! Closed --strikes >= threshold--> Open{until} --cool-down elapses--> HalfOpen
//!   ^                                                                    |
//!   |<------------------- first clean chunk heals ----------------------+
//!   |                     (a bad probe chunk re-opens)
//! ```
//!
//! Time is a **logical tick** (one per ingest attempt), not wall-clock,
//! so breaker behaviour is deterministic and testable without sleeping.
//! Breaker state is deliberately in-memory only — after a crash every
//! source starts Closed again and must re-earn its quarantine, which is
//! the conservative direction (no source is ever locked out by a stale
//! quarantine file).

use std::collections::HashMap;

use crate::error::ServeError;

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive-window strikes that trip the breaker.
    pub strike_threshold: u32,
    /// Ticks a tripped source stays quarantined before a probe is allowed.
    pub cooldown_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            strike_threshold: 3,
            cooldown_ticks: 16,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed {
        strikes: u32,
    },
    Open {
        until_tick: u64,
    },
    /// Exactly one probe chunk is in flight; further chunks are rejected
    /// until the probe resolves ([`SourceBreakers::record_ok`] /
    /// [`SourceBreakers::record_bad`]) or the token expires at
    /// `probe_expires`. Without the token, two concurrent probes could
    /// race: the first fails and re-opens the breaker, then the second
    /// succeeds and closes it again — a bad source healing off the back
    /// of a single lucky chunk.
    HalfOpen {
        probe_expires: u64,
    },
}

/// The set of per-source breakers.
#[derive(Debug)]
pub struct SourceBreakers {
    cfg: BreakerConfig,
    states: HashMap<u32, State>,
}

impl SourceBreakers {
    /// Fresh breakers (all sources Closed with zero strikes).
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            states: HashMap::new(),
        }
    }

    /// Gate a chunk from `source` at logical time `tick`. Passing the gate
    /// does not clear strikes — only [`record_ok`](Self::record_ok) does.
    /// After a cool-down, exactly one probe chunk is admitted at a time;
    /// a second chunk arriving while the probe is unresolved is rejected.
    pub fn admit(&mut self, source: u32, tick: u64) -> Result<(), ServeError> {
        match self.states.get(&source).copied() {
            None | Some(State::Closed { .. }) => Ok(()),
            Some(State::Open { until_tick }) => {
                if tick >= until_tick {
                    // cool-down over: issue the single probe token
                    self.states.insert(
                        source,
                        State::HalfOpen {
                            probe_expires: tick + self.cfg.cooldown_ticks,
                        },
                    );
                    Ok(())
                } else {
                    Err(ServeError::Quarantined { source, until_tick })
                }
            }
            Some(State::HalfOpen { probe_expires }) => {
                if tick >= probe_expires {
                    // the outstanding probe's reply never arrived (its
                    // ingest died mid-pipeline); let a fresh probe in
                    // instead of quarantining the source forever
                    self.states.insert(
                        source,
                        State::HalfOpen {
                            probe_expires: tick + self.cfg.cooldown_ticks,
                        },
                    );
                    Ok(())
                } else {
                    Err(ServeError::Quarantined {
                        source,
                        until_tick: probe_expires,
                    })
                }
            }
        }
    }

    /// Record that an admitted chunk from `source` was malformed. Returns
    /// the quarantine deadline if this strike tripped (or re-tripped) the
    /// breaker.
    pub fn record_bad(&mut self, source: u32, tick: u64) -> Option<u64> {
        let state = self
            .states
            .entry(source)
            .or_insert(State::Closed { strikes: 0 });
        match *state {
            State::Closed { strikes } => {
                let strikes = strikes + 1;
                if strikes >= self.cfg.strike_threshold {
                    let until_tick = tick + self.cfg.cooldown_ticks;
                    *state = State::Open { until_tick };
                    Some(until_tick)
                } else {
                    *state = State::Closed { strikes };
                    None
                }
            }
            State::HalfOpen { .. } => {
                // the probe failed: straight back to quarantine
                let until_tick = tick + self.cfg.cooldown_ticks;
                *state = State::Open { until_tick };
                Some(until_tick)
            }
            State::Open { until_tick } => Some(until_tick),
        }
    }

    /// Record that an admitted chunk from `source` folded cleanly: the
    /// source heals fully (strikes cleared, HalfOpen closes).
    pub fn record_ok(&mut self, source: u32) {
        self.states.insert(source, State::Closed { strikes: 0 });
    }

    /// Whether `source` is currently quarantined at `tick`.
    pub fn is_quarantined(&self, source: u32, tick: u64) -> bool {
        matches!(
            self.states.get(&source),
            Some(State::Open { until_tick }) if tick < *until_tick
        )
    }

    /// Sources currently quarantined at `tick`, ascending.
    pub fn quarantined(&self, tick: u64) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .states
            .iter()
            .filter(|(_, s)| matches!(s, State::Open { until_tick } if tick < *until_tick))
            .map(|(&s, _)| s)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            strike_threshold: 3,
            cooldown_ticks: 10,
        }
    }

    #[test]
    fn trips_after_threshold_strikes() {
        let mut b = SourceBreakers::new(cfg());
        assert_eq!(b.record_bad(5, 0), None);
        assert_eq!(b.record_bad(5, 1), None);
        assert_eq!(b.record_bad(5, 2), Some(12));
        let err = b.admit(5, 3).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Quarantined {
                    source: 5,
                    until_tick: 12
                }
            ),
            "{err}"
        );
        // other sources unaffected
        b.admit(6, 3).unwrap();
    }

    #[test]
    fn heals_through_half_open_probe() {
        let mut b = SourceBreakers::new(cfg());
        for t in 0..3 {
            b.record_bad(1, t);
        }
        assert!(b.is_quarantined(1, 5));
        // cool-down elapses: probe admitted
        b.admit(1, 12).unwrap();
        b.record_ok(1);
        assert!(!b.is_quarantined(1, 13));
        // and it takes a full three fresh strikes to trip again
        assert_eq!(b.record_bad(1, 14), None);
        assert_eq!(b.record_bad(1, 15), None);
        assert!(b.record_bad(1, 16).is_some());
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = SourceBreakers::new(cfg());
        for t in 0..3 {
            b.record_bad(2, t);
        }
        b.admit(2, 12).unwrap();
        // one bad probe chunk is enough — no three-strike grace
        assert_eq!(b.record_bad(2, 12), Some(22));
        assert!(b.is_quarantined(2, 13));
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let mut b = SourceBreakers::new(cfg());
        for t in 0..3 {
            b.record_bad(4, t);
        }
        // cool-down over: the first chunk takes the probe token…
        b.admit(4, 12).unwrap();
        // …and a concurrent second chunk is rejected, not admitted
        let err = b.admit(4, 12).unwrap_err();
        assert!(
            matches!(err, ServeError::Quarantined { source: 4, .. }),
            "{err}"
        );
        // double-close regression: the in-flight probe fails, re-opening
        // the breaker; had a second probe been admitted above, its later
        // record_ok would now close the breaker off one lucky chunk
        assert!(b.record_bad(4, 13).is_some());
        assert!(b.is_quarantined(4, 14));
        let err = b.admit(4, 14).unwrap_err();
        assert!(
            matches!(err, ServeError::Quarantined { source: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn unresolved_probe_token_expires() {
        let mut b = SourceBreakers::new(cfg());
        for t in 0..3 {
            b.record_bad(8, t);
        }
        b.admit(8, 12).unwrap();
        // the probe's ingest died without record_ok/record_bad; once the
        // token expires a fresh probe is admitted instead of a permanent
        // lock-out
        assert!(b.admit(8, 15).is_err());
        b.admit(8, 22).unwrap();
        b.record_ok(8);
        assert!(!b.is_quarantined(8, 23));
    }

    #[test]
    fn clean_chunks_clear_strikes() {
        let mut b = SourceBreakers::new(cfg());
        b.record_bad(3, 0);
        b.record_bad(3, 1);
        b.record_ok(3);
        // counter reset: two more strikes do not trip
        assert_eq!(b.record_bad(3, 2), None);
        assert_eq!(b.record_bad(3, 3), None);
        assert!(b.record_bad(3, 4).is_some());
    }

    #[test]
    fn quarantined_listing_is_sorted() {
        let mut b = SourceBreakers::new(cfg());
        for s in [9, 4, 7] {
            for t in 0..3 {
                b.record_bad(s, t);
            }
        }
        assert_eq!(b.quarantined(5), vec![4, 7, 9]);
        assert_eq!(b.quarantined(100), Vec::<u32>::new());
    }
}
