//! A small synchronous client for the daemon protocol.
//!
//! One request/response round-trip per call over a persistent
//! connection, with a socket timeout so a dead daemon surfaces as a
//! typed error instead of a hang. Wire error codes the client can act on
//! (`Overloaded`, `DeadlineExceeded`, `ShuttingDown`) are mapped back to
//! their [`ServeError`] variants; everything else stays a
//! [`ServeError::Remote`] with the daemon's message attached.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crh_core::value::Truth;

use crate::core::ChunkClaim;
use crate::error::{code, ServeError};
use crate::proto::{read_frame, write_frame, Request, Response};

/// Status as reported by a remote daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonStatus {
    /// Chunks folded into the model.
    pub chunks_seen: u64,
    /// WAL records since the last snapshot.
    pub wal_records: u64,
    /// Entries in the truth cache.
    pub cached_truths: u64,
    /// Ingest requests queued at the daemon.
    pub queue_depth: u64,
    /// Quarantined sources, ascending.
    pub quarantined: Vec<u32>,
}

/// Result of a remote batch solve.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteSolve {
    /// Converged source weights.
    pub weights: Vec<f64>,
    /// Final objective value.
    pub objective: f64,
    /// Iterations used.
    pub iterations: u64,
}

/// A connected daemon client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with the given socket timeout (both read and write).
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?;
        let resp = Response::decode(&payload)?;
        if let Response::Error { code: c, message } = resp {
            return Err(match c {
                code::OVERLOADED => ServeError::Overloaded { capacity: 0 },
                code::DEADLINE => ServeError::DeadlineExceeded,
                code::SHUTTING_DOWN => ServeError::ShuttingDown,
                _ => ServeError::Remote { code: c, message },
            });
        }
        Ok(resp)
    }

    /// Fold one chunk of claims; returns `(seq, chunks_seen)`.
    pub fn ingest(&mut self, claims: Vec<ChunkClaim>) -> Result<(u64, u64), ServeError> {
        match self.call(&Request::Ingest(claims))? {
            Response::Ack { seq, chunks_seen } => Ok((seq, chunks_seen)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fold one chunk given as CSV rows `object,property_name,source,value`.
    pub fn ingest_csv(&mut self, text: impl Into<String>) -> Result<(u64, u64), ServeError> {
        match self.call(&Request::IngestCsv(text.into()))? {
            Response::Ack { seq, chunks_seen } => Ok((seq, chunks_seen)),
            other => Err(unexpected(&other)),
        }
    }

    /// Read the daemon's current source weights.
    pub fn weights(&mut self) -> Result<Vec<f64>, ServeError> {
        match self.call(&Request::Weights)? {
            Response::Weights(w) => Ok(w),
            other => Err(unexpected(&other)),
        }
    }

    /// Read the cached truth for one (object, property) cell.
    pub fn truth(&mut self, object: u32, property: u32) -> Result<Option<Truth>, ServeError> {
        match self.call(&Request::Truth { object, property })? {
            Response::Truth(t) => Ok(t),
            other => Err(unexpected(&other)),
        }
    }

    /// Read the daemon's operational status.
    pub fn status(&mut self) -> Result<DaemonStatus, ServeError> {
        match self.call(&Request::Status)? {
            Response::Status {
                chunks_seen,
                wal_records,
                cached_truths,
                queue_depth,
                quarantined,
            } => Ok(DaemonStatus {
                chunks_seen,
                wal_records,
                cached_truths,
                queue_depth,
                quarantined,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Run a batch CRH solve on the daemon over ad-hoc claims.
    pub fn solve(
        &mut self,
        tol: f64,
        max_iters: u64,
        claims: Vec<ChunkClaim>,
    ) -> Result<RemoteSolve, ServeError> {
        match self.call(&Request::Solve {
            tol,
            max_iters,
            claims,
        })? {
            Response::Solved {
                weights,
                objective,
                iterations,
            } => Ok(RemoteSolve {
                weights,
                objective,
                iterations,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the daemon to snapshot and exit; returns its final chunk count.
    pub fn shutdown(&mut self) -> Result<u64, ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::Ack { chunks_seen, .. } => Ok(chunks_seen),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::Protocol(format!("unexpected response variant: {resp:?}"))
}
