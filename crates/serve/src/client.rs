//! Synchronous clients for the daemon protocol.
//!
//! [`Client`] is one request/response round-trip per call over a
//! persistent connection, with a socket timeout so a dead daemon
//! surfaces as a typed error instead of a hang. Wire error codes the
//! client can act on (`Overloaded`, `DeadlineExceeded`, `ShuttingDown`)
//! are mapped back to their [`ServeError`] variants; everything else
//! stays a [`ServeError::Remote`] with the daemon's message attached.
//!
//! [`ClusterClient`] fronts a replicated cluster: it retries transient
//! failures (dead node, follower redirect, commit-quorum timeout) across
//! the member list under a capped-exponential-backoff-with-jitter
//! [`RetryPolicy`], follows `NotPrimary` redirects, and transparently
//! unwraps staleness-bounded [`Response::FollowerRead`] answers. When
//! every attempt fails it returns [`ServeError::RetriesExhausted`]
//! carrying the per-attempt error log.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crh_core::rng::{hash_rng, Rng as _};
use crh_core::value::Truth;

use crate::core::ChunkClaim;
use crate::error::{code, ServeError};
use crate::health::HealthMap;
use crate::proto::{read_frame, write_frame, Request, Response};

/// Status as reported by a remote daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonStatus {
    /// Chunks folded into the model.
    pub chunks_seen: u64,
    /// WAL records since the last snapshot.
    pub wal_records: u64,
    /// Entries in the truth cache.
    pub cached_truths: u64,
    /// Ingest requests queued at the daemon.
    pub queue_depth: u64,
    /// Quarantined sources, ascending.
    pub quarantined: Vec<u32>,
}

/// Result of a remote batch solve.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteSolve {
    /// Converged source weights.
    pub weights: Vec<f64>,
    /// Final objective value.
    pub objective: f64,
    /// Iterations used.
    pub iterations: u64,
}

/// A connected daemon client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with the given socket timeout (both read and write).
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Re-arm the socket timeout on the live connection (hedged reads
    /// tighten it per-attempt without reconnecting).
    pub(crate) fn set_timeout(&mut self, timeout: Duration) -> Result<(), ServeError> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        Ok(())
    }

    /// One round-trip with no interpretation of `Response::Error` — the
    /// replication ticker needs the raw frame (a peer's error *is* the
    /// protocol answer, e.g. `StaleEpoch` deposing the sender).
    pub(crate) fn call_raw(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Response::decode(&payload)
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let resp = self.call_raw(req)?;
        if let Response::Error {
            code: c,
            message,
            hint,
        } = resp
        {
            return Err(map_wire_error(c, message, hint));
        }
        Ok(resp)
    }

    /// Fold one chunk of claims; returns `(seq, chunks_seen)`.
    pub fn ingest(&mut self, claims: Vec<ChunkClaim>) -> Result<(u64, u64), ServeError> {
        match self.call(&Request::Ingest(claims))? {
            Response::Ack { seq, chunks_seen } => Ok((seq, chunks_seen)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fold one chunk given as CSV rows `object,property_name,source,value`.
    pub fn ingest_csv(&mut self, text: impl Into<String>) -> Result<(u64, u64), ServeError> {
        match self.call(&Request::IngestCsv(text.into()))? {
            Response::Ack { seq, chunks_seen } => Ok((seq, chunks_seen)),
            other => Err(unexpected(&other)),
        }
    }

    /// Read the daemon's current source weights.
    pub fn weights(&mut self) -> Result<Vec<f64>, ServeError> {
        match self.call(&Request::Weights)? {
            Response::Weights(w) => Ok(w),
            other => Err(unexpected(&other)),
        }
    }

    /// Read the cached truth for one (object, property) cell.
    pub fn truth(&mut self, object: u32, property: u32) -> Result<Option<Truth>, ServeError> {
        match self.call(&Request::Truth { object, property })? {
            Response::Truth(t) => Ok(t),
            other => Err(unexpected(&other)),
        }
    }

    /// Read the daemon's operational status.
    pub fn status(&mut self) -> Result<DaemonStatus, ServeError> {
        match self.call(&Request::Status)? {
            Response::Status {
                chunks_seen,
                wal_records,
                cached_truths,
                queue_depth,
                quarantined,
            } => Ok(DaemonStatus {
                chunks_seen,
                wal_records,
                cached_truths,
                queue_depth,
                quarantined,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Run a batch CRH solve on the daemon over ad-hoc claims.
    pub fn solve(
        &mut self,
        tol: f64,
        max_iters: u64,
        claims: Vec<ChunkClaim>,
    ) -> Result<RemoteSolve, ServeError> {
        match self.call(&Request::Solve {
            tol,
            max_iters,
            claims,
        })? {
            Response::Solved {
                weights,
                objective,
                iterations,
            } => Ok(RemoteSolve {
                weights,
                objective,
                iterations,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the daemon to snapshot and exit; returns its final chunk count.
    pub fn shutdown(&mut self) -> Result<u64, ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::Ack { chunks_seen, .. } => Ok(chunks_seen),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::Protocol(format!("unexpected response variant: {resp:?}"))
}

/// Unwrap a possible staleness-bounded follower answer into
/// `(inner, lag)`, surfacing a wrapped error as the typed error itself.
fn unwrap_read(resp: Response) -> Result<(Response, u64), ServeError> {
    match resp {
        Response::FollowerRead { lag, inner } => {
            let inner = Response::decode(&inner)?;
            if let Response::Error {
                code: c,
                message,
                hint,
            } = inner
            {
                return Err(map_wire_error(c, message, hint));
            }
            Ok((inner, lag))
        }
        resp => Ok((resp, 0)),
    }
}

fn map_wire_error(c: u8, message: String, hint: Option<u32>) -> ServeError {
    match c {
        code::OVERLOADED => ServeError::Overloaded { capacity: 0 },
        code::DEADLINE => ServeError::DeadlineExceeded,
        code::SHUTTING_DOWN => ServeError::ShuttingDown,
        code::NOT_PRIMARY => ServeError::NotPrimary { hint },
        code::DISK_DEGRADED => ServeError::DiskDegraded { op: "remote disk" },
        _ => ServeError::Remote { code: c, message },
    }
}

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `k` sleeps a duration drawn uniformly from
/// `[d/2, d]` where `d = min(base * 2^k, cap)`; the draw comes from the
/// workspace's own [`hash_rng`] keyed on `(seed, k)`, so a given client
/// configuration always produces the same schedule (reproducible chaos
/// tests) while distinct seeds decorrelate competing clients.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries (the first, un-delayed one included).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Jitter seed; clients sharing a seed share a schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before attempt `attempt + 1` (so `backoff(0)`
    /// is the sleep after the first failure).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let uncapped = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let full = uncapped.min(self.cap).max(Duration::from_nanos(2));
        let nanos = full.as_nanos() as u64;
        let mut rng = hash_rng(self.seed, &[u64::from(attempt)]);
        let jittered = nanos / 2 + rng.next_u64() % (nanos - nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

/// Where the next attempt should go after a retryable failure.
enum Goto {
    /// Same member (transient local condition: overload, quorum wait).
    Same,
    /// Rotate to the next member (dead or shutting-down node).
    Next,
    /// A `NotPrimary` redirect named the primary.
    Node(u32),
}

enum Outcome {
    Done(Response),
    Fatal(ServeError),
    Retry {
        why: String,
        goto: Goto,
        /// Failure class for the attempt log: a stalled member
        /// ("timeout") reads very differently from a healthy one
        /// pointing elsewhere ("redirect") when diagnosing an exhausted
        /// retry loop.
        class: &'static str,
    },
}

/// Failure class of an attempt, for the retry log.
fn classify(e: &ServeError) -> &'static str {
    if e.is_timeout() {
        "timeout"
    } else if e.is_redirect() {
        "redirect"
    } else {
        "error"
    }
}

/// Floor for adaptive per-member socket timeouts: even a member with a
/// microsecond-scale p95 keeps a grace window, so one garbage-collected
/// scheduler pause does not read as a gray failure.
const ADAPTIVE_FLOOR: Duration = Duration::from_millis(50);
/// Multiplier over a member's p95 for its adaptive timeout.
const ADAPTIVE_HEADROOM: u32 = 4;

/// A client for a replicated cluster: transparent failover, primary
/// redirects, and staleness-bounded follower reads.
///
/// Reads may land on a follower; they return the answer *plus* the
/// follower's staleness bound in chunks (0 when the primary answered).
/// Writes that fail transiently — connection refused, `NotPrimary`,
/// `NotReplicated` (commit-quorum timeout), `ShuttingDown` — are retried
/// under the [`RetryPolicy`]; a retried write may be folded twice if the
/// lost ack had in fact committed, exactly like any at-least-once ingest
/// pipeline, which is why callers that need exactly-once feed the daemon
/// idempotent chunk streams.
#[derive(Debug)]
pub struct ClusterClient {
    /// `(node_id, address)` for every member.
    members: Vec<(u32, String)>,
    timeout: Duration,
    policy: RetryPolicy,
    /// Index into `members` to try next.
    next: usize,
    conn: Option<Client>,
    /// Node id of the member that produced the last successful answer.
    last_served: Option<u32>,
    /// Per-member latency scores: every round-trip (success or failure)
    /// is a sample, so a member that turns slow is noticed from normal
    /// traffic, quarantined out of the rotation, and probed back in.
    health: HealthMap,
    /// Client-local clock origin for the health map's time axis.
    epoch: Instant,
}

impl ClusterClient {
    /// A client over `members` (`(node_id, address)` pairs; order is the
    /// rotation order on failover).
    pub fn new(members: Vec<(u32, String)>, timeout: Duration, policy: RetryPolicy) -> Self {
        assert!(!members.is_empty(), "a cluster needs at least one member");
        Self {
            members,
            timeout,
            policy,
            next: 0,
            conn: None,
            last_served: None,
            health: HealthMap::default(),
            epoch: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Per-member latency scores (EWMA / p95 / quarantine state).
    pub fn health(&self) -> &HealthMap {
        &self.health
    }

    /// The next rotation slot, skipping quarantined members unless one
    /// earns a probe (or every member is quarantined — a client with
    /// nothing healthy left still has to try *something*).
    fn next_healthy(&mut self) -> usize {
        let n = self.members.len();
        let now = self.now_ms();
        for step in 1..=n {
            let idx = (self.next + step) % n;
            let Some(&(id, _)) = self.members.get(idx) else {
                continue;
            };
            if !self.health.is_quarantined(id) || self.health.admit(id, now) {
                return idx;
            }
        }
        (self.next + 1) % n
    }

    /// Point the next attempt at member `node_id` (no-op for an unknown
    /// id). The shard router uses this to start writes at the member it
    /// last saw act as primary instead of re-walking the rotation.
    pub fn prefer(&mut self, node_id: u32) {
        if let Some(idx) = self.members.iter().position(|(n, _)| *n == node_id) {
            if idx != self.next {
                self.conn = None;
            }
            self.next = idx;
        }
    }

    /// Node id of the member that produced the last successful answer,
    /// if any request has succeeded yet.
    pub fn last_served(&self) -> Option<u32> {
        self.last_served
    }

    fn try_once(&mut self, req: &Request) -> Outcome {
        let Some((node_id, addr)) = self.members.get(self.next).cloned() else {
            return Outcome::Retry {
                why: format!("member index {} out of range", self.next),
                goto: Goto::Next,
                class: "error",
            };
        };
        if self.conn.is_none() {
            // a member with latency history earns a timeout sized to its
            // own p95 instead of the global worst case, so a straggler
            // surfaces as a fast typed timeout rather than a long stall
            let t = self.health.adaptive_timeout(
                node_id,
                ADAPTIVE_FLOOR,
                self.timeout,
                ADAPTIVE_HEADROOM,
            );
            match Client::connect(&addr, t) {
                Ok(c) => self.conn = Some(c),
                Err(e) => {
                    return Outcome::Retry {
                        class: classify(&e),
                        why: format!("node {node_id} ({addr}): connect failed: {e}"),
                        goto: Goto::Next,
                    };
                }
            }
        }
        let Some(conn) = self.conn.as_mut() else {
            return Outcome::Retry {
                why: format!("node {node_id} ({addr}): connection unavailable"),
                goto: Goto::Next,
                class: "error",
            };
        };
        let sent = Instant::now();
        let resp = conn.call_raw(req);
        let latency = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
        let now = self.now_ms();
        self.health.record(node_id, latency, now);
        let resp = match resp {
            Ok(r) => r,
            Err(e) => {
                return Outcome::Retry {
                    class: classify(&e),
                    why: format!("node {node_id} ({addr}): {e}"),
                    goto: Goto::Next,
                };
            }
        };
        let Response::Error {
            code: c,
            message,
            hint,
        } = resp
        else {
            self.last_served = Some(node_id);
            return Outcome::Done(resp);
        };
        match c {
            // the redirect target rides the wire as a structured field,
            // so rewording the error text can never break failover
            code::NOT_PRIMARY => Outcome::Retry {
                goto: hint.map_or(Goto::Next, Goto::Node),
                why: format!("node {node_id}: {message}"),
                class: "redirect",
            },
            // durable locally but quorum not yet confirmed: the same
            // (possibly re-elected) cluster will accept the retry
            code::NOT_REPLICATED | code::DEADLINE => Outcome::Retry {
                why: format!("node {node_id}: {message}"),
                goto: Goto::Same,
                class: "timeout",
            },
            code::OVERLOADED => Outcome::Retry {
                why: format!("node {node_id}: {message}"),
                goto: Goto::Same,
                class: "error",
            },
            // a dying-disk node has already deposed itself (or is about
            // to); rotate to a member whose disk can still fsync
            code::SHUTTING_DOWN | code::STALE_EPOCH | code::DISK_DEGRADED => Outcome::Retry {
                why: format!("node {node_id}: {message}"),
                goto: Goto::Next,
                class: "error",
            },
            _ => Outcome::Fatal(map_wire_error(c, message, hint)),
        }
    }

    pub(crate) fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.call_inner(req, None)
    }

    /// Like [`call`](Self::call), but every attempt carries the client's
    /// *remaining* budget on the wire (the deadline-propagation
    /// envelope): backoff sleeps and failed attempts eat into it, and a
    /// budget that runs out between attempts is a typed
    /// [`ServeError::DeadlineExceeded`] — not another silent retry.
    pub(crate) fn call_with_budget(
        &mut self,
        req: &Request,
        budget: Duration,
    ) -> Result<Response, ServeError> {
        self.call_inner(req, Some(Instant::now() + budget))
    }

    fn call_inner(
        &mut self,
        req: &Request,
        deadline: Option<Instant>,
    ) -> Result<Response, ServeError> {
        let mut log = Vec::new();
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff(attempt - 1));
            }
            let wire = match deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(ServeError::DeadlineExceeded);
                    }
                    Some(Request::WithDeadline {
                        budget_ms: u64::try_from(left.as_millis()).unwrap_or(u64::MAX).max(1),
                        inner: Box::new(req.clone()),
                    })
                }
                None => None,
            };
            let started = Instant::now();
            match self.try_once(wire.as_ref().unwrap_or(req)) {
                Outcome::Done(resp) => return Ok(resp),
                Outcome::Fatal(e) => return Err(e),
                Outcome::Retry { why, goto, class } => {
                    log.push(format!(
                        "[{class} after {}ms] {why}",
                        started.elapsed().as_millis()
                    ));
                    self.conn = None;
                    self.next = match goto {
                        Goto::Same => self.next,
                        Goto::Next => self.next_healthy(),
                        Goto::Node(id) => self
                            .members
                            .iter()
                            .position(|(n, _)| *n == id)
                            .unwrap_or_else(|| self.next_healthy()),
                    };
                }
            }
        }
        Err(ServeError::RetriesExhausted {
            attempts: self.policy.max_attempts,
            log,
        })
    }

    /// Unwrap a possible follower answer into `(inner, lag)`.
    pub(crate) fn read(&mut self, req: &Request) -> Result<(Response, u64), ServeError> {
        unwrap_read(self.call(req)?)
    }

    /// Staleness-bounded read with a tail-latency hedge: one shot at the
    /// preferred member under a tight timeout derived from its own p95;
    /// if that shot times out, the request is re-issued to the next
    /// healthy member under the normal retry loop instead of waiting out
    /// the straggler. Returns `(answer, lag, hedged)` where `hedged`
    /// records whether the tight first attempt had to be abandoned.
    ///
    /// Hedging is restricted to idempotent reads — re-issuing a write
    /// that may still land would double-fold it.
    pub(crate) fn read_hedged(
        &mut self,
        req: &Request,
    ) -> Result<(Response, u64, bool), ServeError> {
        let first = self.members.get(self.next).map(|&(id, _)| id);
        let tight = match first {
            Some(id) if !self.health.is_quarantined(id) => {
                self.health
                    .adaptive_timeout(id, ADAPTIVE_FLOOR, self.timeout, 2)
            }
            // no preferred member worth a tight first shot
            _ => self.timeout,
        };
        if tight >= self.timeout {
            // no latency history (or an unhealthy target): nothing to
            // hedge against, run the plain retry loop
            return self.read(req).map(|(r, lag)| (r, lag, false));
        }
        match self.try_once_with_timeout(req, tight) {
            Ok(resp) => unwrap_read(resp).map(|(r, lag)| (r, lag, false)),
            Err(e) => {
                let hedged = e.is_timeout();
                self.conn = None;
                self.next = self.next_healthy();
                self.read(req).map(|(r, lag)| (r, lag, hedged))
            }
        }
    }

    /// One shot at the current rotation slot under an explicit socket
    /// timeout, with the round-trip recorded as a health sample.
    fn try_once_with_timeout(
        &mut self,
        req: &Request,
        timeout: Duration,
    ) -> Result<Response, ServeError> {
        let (node_id, addr) = self
            .members
            .get(self.next)
            .cloned()
            .ok_or(ServeError::DeadlineExceeded)?;
        // take-then-insert keeps one borrow live and avoids asserting on
        // an Option we just filled
        let conn = match self.conn.take() {
            Some(c) => self.conn.insert(c),
            None => self.conn.insert(Client::connect(&addr, timeout)?),
        };
        conn.set_timeout(timeout)?;
        let sent = Instant::now();
        let resp = conn.call_raw(req);
        let latency = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
        let now = self.now_ms();
        self.health.record(node_id, latency, now);
        match resp? {
            Response::Error {
                code: c,
                message,
                hint,
            } => Err(map_wire_error(c, message, hint)),
            resp => {
                self.last_served = Some(node_id);
                Ok(resp)
            }
        }
    }

    /// Fold one chunk; acknowledged only after the commit quorum.
    /// Returns `(seq, committed_chunks)`.
    pub fn ingest(&mut self, claims: Vec<ChunkClaim>) -> Result<(u64, u64), ServeError> {
        match self.call(&Request::Ingest(claims))? {
            Response::Ack { seq, chunks_seen } => Ok((seq, chunks_seen)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fold one chunk under a total client-side budget: every attempt
    /// carries the remaining budget on the wire, so each hop refuses work
    /// it cannot finish instead of doing it for a client that is gone.
    pub fn ingest_with_budget(
        &mut self,
        claims: Vec<ChunkClaim>,
        budget: Duration,
    ) -> Result<(u64, u64), ServeError> {
        match self.call_with_budget(&Request::Ingest(claims), budget)? {
            Response::Ack { seq, chunks_seen } => Ok((seq, chunks_seen)),
            other => Err(unexpected(&other)),
        }
    }

    /// [`truth`](Self::truth) with a tail-latency hedge; the extra `bool`
    /// reports whether the hedge fired.
    pub fn truth_hedged(
        &mut self,
        object: u32,
        property: u32,
    ) -> Result<(Option<Truth>, u64, bool), ServeError> {
        match self.read_hedged(&Request::Truth { object, property })? {
            (Response::Truth(t), lag, hedged) => Ok((t, lag, hedged)),
            (other, ..) => Err(unexpected(&other)),
        }
    }

    /// [`weights`](Self::weights) with a tail-latency hedge; the extra
    /// `bool` reports whether the hedge fired.
    pub fn weights_hedged(&mut self) -> Result<(Vec<f64>, u64, bool), ServeError> {
        match self.read_hedged(&Request::Weights)? {
            (Response::Weights(w), lag, hedged) => Ok((w, lag, hedged)),
            (other, ..) => Err(unexpected(&other)),
        }
    }

    /// [`status`](Self::status) with a tail-latency hedge; the extra
    /// `bool` reports whether the hedge fired.
    pub fn status_hedged(&mut self) -> Result<(DaemonStatus, u64, bool), ServeError> {
        match self.read_hedged(&Request::Status)? {
            (
                Response::Status {
                    chunks_seen,
                    wal_records,
                    cached_truths,
                    queue_depth,
                    quarantined,
                },
                lag,
                hedged,
            ) => Ok((
                DaemonStatus {
                    chunks_seen,
                    wal_records,
                    cached_truths,
                    queue_depth,
                    quarantined,
                },
                lag,
                hedged,
            )),
            (other, ..) => Err(unexpected(&other)),
        }
    }

    /// Current source weights plus the answering node's staleness bound.
    pub fn weights(&mut self) -> Result<(Vec<f64>, u64), ServeError> {
        match self.read(&Request::Weights)? {
            (Response::Weights(w), lag) => Ok((w, lag)),
            (other, _) => Err(unexpected(&other)),
        }
    }

    /// Cached truth for one cell plus the staleness bound.
    pub fn truth(
        &mut self,
        object: u32,
        property: u32,
    ) -> Result<(Option<Truth>, u64), ServeError> {
        match self.read(&Request::Truth { object, property })? {
            (Response::Truth(t), lag) => Ok((t, lag)),
            (other, _) => Err(unexpected(&other)),
        }
    }

    /// Operational status of whichever member answered, plus its lag.
    pub fn status(&mut self) -> Result<(DaemonStatus, u64), ServeError> {
        match self.read(&Request::Status)? {
            (
                Response::Status {
                    chunks_seen,
                    wal_records,
                    cached_truths,
                    queue_depth,
                    quarantined,
                },
                lag,
            ) => Ok((
                DaemonStatus {
                    chunks_seen,
                    wal_records,
                    cached_truths,
                    queue_depth,
                    quarantined,
                },
                lag,
            )),
            (other, _) => Err(unexpected(&other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 7,
        };
        for k in 0..8 {
            let d = p.backoff(k);
            assert_eq!(d, p.backoff(k), "same (seed, attempt) must repeat");
            let full = (Duration::from_millis(10) * 2u32.pow(k)).min(p.cap);
            assert!(d <= full, "attempt {k}: {d:?} above {full:?}");
            assert!(d >= full / 2, "attempt {k}: {d:?} below half of {full:?}");
        }
        // deep attempts saturate at the cap instead of overflowing
        assert!(p.backoff(63) <= p.cap);
        let other = RetryPolicy { seed: 8, ..p };
        assert!(
            (0..8).any(|k| p.backoff(k) != other.backoff(k)),
            "different seeds should produce different schedules"
        );
    }

    #[test]
    fn not_primary_redirects_carry_a_structured_hint() {
        // the hint survives the wire as a typed field — no string parsing
        let resp = Response::from_error(&ServeError::NotPrimary { hint: Some(2) });
        let resp = Response::decode(&resp.encode()).unwrap();
        let Response::Error {
            code: c,
            message,
            hint,
        } = resp
        else {
            panic!("expected an error response");
        };
        assert_eq!(hint, Some(2));
        let mapped = map_wire_error(c, message, hint);
        assert!(
            matches!(mapped, ServeError::NotPrimary { hint: Some(2) }),
            "{mapped}"
        );
        // and a reworded message cannot break it: the field is authoritative
        let resp = Response::from_error(&ServeError::NotPrimary { hint: None });
        assert!(
            matches!(resp, Response::Error { hint: None, .. }),
            "{resp:?}"
        );
    }

    #[test]
    fn prefer_starts_the_rotation_at_the_named_member() {
        let mut c = ClusterClient::new(
            vec![(10, "127.0.0.1:1".into()), (20, "127.0.0.1:2".into())],
            Duration::from_millis(100),
            RetryPolicy {
                max_attempts: 1,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                seed: 1,
            },
        );
        c.prefer(20);
        let err = c.weights().unwrap_err();
        let ServeError::RetriesExhausted { log, .. } = err else {
            panic!("expected RetriesExhausted");
        };
        assert!(log[0].contains("node 20"), "{log:?}");
        // an unknown id leaves the rotation untouched
        c.prefer(99);
        assert!(c.last_served().is_none());
    }

    #[test]
    fn cluster_client_reports_the_attempt_log_when_every_node_is_down() {
        // ports from the TEST-NET-ish reserved range: nothing listens
        let mut c = ClusterClient::new(
            vec![(0, "127.0.0.1:1".into()), (1, "127.0.0.1:2".into())],
            Duration::from_millis(100),
            RetryPolicy {
                max_attempts: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                seed: 1,
            },
        );
        let err = c.weights().unwrap_err();
        match err {
            ServeError::RetriesExhausted { attempts, log } => {
                assert_eq!(attempts, 3);
                assert_eq!(log.len(), 3);
                assert!(log[0].contains("connect failed"), "{log:?}");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }
}
