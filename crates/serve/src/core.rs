//! The daemon's state machine: WAL-backed incremental CRH with snapshots,
//! per-source circuit breakers, and seeded fault injection.
//!
//! [`ServeCore`] owns everything that must survive a crash. The ingest
//! path is strictly ordered so that every crash point leaves the disk in
//! a state [`ServeCore::open`] can recover from:
//!
//! 1. breaker gate (quarantined sources rejected before any work)
//! 2. validation (schema type/finiteness/domain checks; strikes on failure)
//! 3. WAL append + fsync — **the commit point**: from here the chunk is
//!    accepted even if the process dies before acking
//! 4. fold into [`ICrhState`] + truth-cache update
//! 5. every `snapshot_every` chunks: snapshot (atomic rename) then WAL
//!    truncation
//!
//! Recovery inverts the order: load the newest snapshot, then replay WAL
//! records whose `seq` the snapshot has not already absorbed. A crash
//! between the snapshot rename and the WAL truncation leaves stale
//! records behind; the `seq` prefix makes replay skip them instead of
//! double-folding.
//!
//! Durable artifacts are kept in **two generations**: each snapshot
//! renames its predecessor to `snapshot.prev.crh` and retires the WAL to
//! `ingest.prev.wal` instead of truncating it. If the newest snapshot is
//! corrupt (bit rot, a lying fsync surfacing at power loss), recovery
//! falls back to the previous generation and bridges the gap by
//! replaying both WALs — sequence skips make the overlap idempotent, so
//! the fallback is bit-identical with what a healthy disk would have
//! recovered. All file I/O flows through the [`Vfs`] seam, which is how
//! the `chaos_disk` suite injects torn writes, bit rot, lying fsyncs,
//! and dying disks underneath this exact code path.
//!
//! An injected crash *poisons* the core — every later call answers
//! [`ServeError::ShuttingDown`] — so chaos tests cannot accidentally keep
//! using state that a real `kill -9` would have destroyed.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use crh_core::cancel::CancelToken;
use crh_core::ids::{ObjectId, PropertyId, SourceId};
use crh_core::persist::{Dec, Enc, PersistError};
use crh_core::schema::Schema;
use crh_core::session::CrhSession;
use crh_core::table::{Claim, ObservationTable};
use crh_core::value::{Truth, Value};
use crh_stream::{ICrh, ICrhCheckpoint, ICrhState};

use crate::breaker::{BreakerConfig, SourceBreakers};
use crate::error::ServeError;
use crate::faults::{ServeFate, ServeFaultInjector, ServePoint};
use crate::vfs::Vfs;
use crate::wal::{Wal, WalRecovery};

/// Magic bytes of a daemon snapshot frame.
pub(crate) const SNAPSHOT_MAGIC: [u8; 4] = *b"CRHV";
/// Current snapshot format version.
pub(crate) const SNAPSHOT_VERSION: u32 = 1;

/// One claim as it crosses the wire and the WAL: plain ids plus a value.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkClaim {
    /// The observed object.
    pub object: u32,
    /// The property (index into the daemon's schema).
    pub property: u32,
    /// The claiming source.
    pub source: u32,
    /// The claimed value.
    pub value: Value,
}

impl ChunkClaim {
    /// Convenience constructor for a continuous observation.
    pub fn num(object: u32, property: u32, source: u32, x: f64) -> Self {
        Self {
            object,
            property,
            source,
            value: Value::Num(x),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The fixed schema every chunk is validated against.
    pub schema: Schema,
    /// I-CRH decay rate `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Directory holding `snapshot.crh` and `ingest.wal`.
    pub dir: PathBuf,
    /// Snapshot (and truncate the WAL) every this many accepted chunks.
    pub snapshot_every: u64,
    /// Entries kept in the FIFO truth cache.
    pub truth_cache_cap: usize,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Fault injection (disabled in production).
    pub injector: ServeFaultInjector,
    /// Solver kernel threads for ingest and solve: `0` = available
    /// parallelism, `1` = exact sequential path. Results are bit-identical
    /// for every value (the solver's determinism contract), so this only
    /// trades wall clock.
    pub solve_threads: usize,
    /// The storage seam every durable byte flows through. Production
    /// uses the zero-cost passthrough; chaos tests install a seeded
    /// [`DiskFaultPlan`](crate::vfs::DiskFaultPlan).
    pub vfs: Vfs,
}

impl ServeConfig {
    /// Defaults: snapshot every 8 chunks, 4096 cached truths, default
    /// breaker, no fault injection, solver threads = available parallelism.
    pub fn new(schema: Schema, alpha: f64, dir: impl Into<PathBuf>) -> Self {
        Self {
            schema,
            alpha,
            dir: dir.into(),
            snapshot_every: 8,
            truth_cache_cap: 4096,
            breaker: BreakerConfig::default(),
            injector: ServeFaultInjector::disabled(),
            solve_threads: 0,
            vfs: Vfs::passthrough(),
        }
    }

    /// Set the snapshot cadence (min 1).
    pub fn snapshot_every(mut self, n: u64) -> Self {
        self.snapshot_every = n.max(1);
        self
    }

    /// Set the truth-cache capacity (min 1).
    pub fn truth_cache_cap(mut self, n: usize) -> Self {
        self.truth_cache_cap = n.max(1);
        self
    }

    /// Set the breaker tuning.
    pub fn breaker(mut self, b: BreakerConfig) -> Self {
        self.breaker = b;
        self
    }

    /// Install a fault injector (chaos tests only).
    pub fn injector(mut self, i: ServeFaultInjector) -> Self {
        self.injector = i;
        self
    }

    /// Set the solver kernel thread count (`0` = available parallelism,
    /// `1` = exact sequential).
    pub fn solve_threads(mut self, n: usize) -> Self {
        self.solve_threads = n;
        self
    }

    /// Install a storage seam (disk chaos tests only; production keeps
    /// the passthrough default).
    pub fn vfs(mut self, vfs: Vfs) -> Self {
        self.vfs = vfs;
        self
    }
}

/// What [`ServeCore::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot existed and was loaded.
    pub snapshot_loaded: bool,
    /// Chunks the snapshot had already absorbed.
    pub snapshot_chunks: u64,
    /// WAL records re-folded during replay.
    pub wal_replayed: u64,
    /// WAL records skipped because the snapshot already covered them.
    pub wal_skipped: u64,
    /// Torn-tail bytes truncated from the WAL.
    pub torn_bytes: u64,
    /// Whether recovery fell back to the *previous* snapshot generation
    /// because the newest snapshot was corrupt or missing mid-rotation.
    /// The recovered state is still exact (the retired WAL bridges the
    /// gap), but the corruption deserves an operator's attention.
    pub snapshot_fallback: bool,
}

/// Receipt for an accepted chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The sequence number this chunk was assigned (0-based).
    pub seq: u64,
    /// Total chunks folded so far (== `seq + 1`).
    pub chunks_seen: u64,
}

/// A point-in-time operational summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreStatus {
    /// Chunks folded into the model.
    pub chunks_seen: u64,
    /// WAL records since the last snapshot.
    pub wal_records: u64,
    /// Entries in the truth cache.
    pub cached_truths: u64,
    /// Sources currently quarantined.
    pub quarantined: Vec<u32>,
    /// Whether an injected crash has poisoned this core.
    pub poisoned: bool,
}

/// What [`ServeCore::apply_replicated`] did with a shipped record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The record was appended, fsync'd, and folded.
    Applied(IngestReceipt),
    /// The record's sequence was already folded (duplicate delivery).
    AlreadyApplied,
    /// The record skips ahead of this replica's contiguous prefix; the
    /// replica must catch up from `expected` before applying it.
    Gap {
        /// The sequence this replica needs next.
        expected: u64,
    },
}

/// Result of a batch solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Converged source weights.
    pub weights: Vec<f64>,
    /// Final objective value (Eq 1).
    pub objective: f64,
    /// Iterations used.
    pub iterations: u64,
}

/// FIFO-bounded map from (object, property) to the latest truth estimate.
///
/// Insertion order is the eviction order and is persisted verbatim, so a
/// recovered core serves byte-identical snapshots.
#[derive(Debug, Default)]
struct TruthCache {
    map: BTreeMap<(u32, u32), Truth>,
    order: VecDeque<(u32, u32)>,
    cap: usize,
}

impl TruthCache {
    fn new(cap: usize) -> Self {
        Self {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    fn insert(&mut self, key: (u32, u32), truth: Truth) {
        if self.map.insert(key, truth).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn get(&self, key: &(u32, u32)) -> Option<&Truth> {
        self.map.get(key)
    }

    fn iter_fifo(&self) -> impl Iterator<Item = ((u32, u32), &Truth)> {
        self.order
            .iter()
            .filter_map(|k| self.map.get(k).map(|t| (*k, t)))
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

/// The recoverable heart of the daemon.
#[derive(Debug)]
pub struct ServeCore {
    schema: Schema,
    alpha: f64,
    snapshot_every: u64,
    snapshot_path: PathBuf,
    snapshot_prev_path: PathBuf,
    wal_prev_path: PathBuf,
    vfs: Vfs,
    state: ICrhState,
    wal: Wal,
    cache: TruthCache,
    breakers: SourceBreakers,
    injector: ServeFaultInjector,
    /// Logical clock: one tick per ingest attempt (drives the breakers).
    tick: u64,
    /// Ingest attempts on this core instance (drives fault fates).
    attempts: u64,
    poisoned: bool,
    /// Solver kernel threads (0 = available parallelism).
    solve_threads: usize,
}

impl ServeCore {
    /// Open (or create) a daemon state directory, recovering whatever a
    /// previous incarnation left behind: newest snapshot first, then WAL
    /// replay with snapshot-covered records skipped and torn tails
    /// truncated.
    pub fn open(cfg: ServeConfig) -> Result<(Self, RecoveryReport), ServeError> {
        let vfs = cfg.vfs.clone();
        vfs.create_dir_all(&cfg.dir)?;
        let snapshot_path = cfg.dir.join("snapshot.crh");
        let snapshot_prev_path = cfg.dir.join("snapshot.prev.crh");
        let wal_path = cfg.dir.join("ingest.wal");
        let wal_prev_path = cfg.dir.join("ingest.prev.wal");

        let icrh = ICrh::new(cfg.alpha)?.threads(cfg.solve_threads);
        let mut cache = TruthCache::new(cfg.truth_cache_cap);

        // Recovery ladder: newest snapshot, else the previous generation
        // (corruption or a crash mid-rotation), else fresh. Only typed
        // *corruption* triggers the fallback — a transient I/O error must
        // surface to the caller, not silently rewind a generation.
        let mut snapshot_fallback = false;
        let mut loaded: Option<SnapshotPayload> = None;
        if vfs.exists(&snapshot_path) {
            match read_snapshot(&vfs, &snapshot_path) {
                Ok(ok) => loaded = Some(ok),
                Err(primary_err) if is_corruption(&primary_err) => {
                    if vfs.exists(&snapshot_prev_path) {
                        // map a second corruption back to the primary
                        // error: both generations gone is unrecoverable
                        // here (a replica re-syncs from quorum instead)
                        loaded = Some(
                            read_snapshot(&vfs, &snapshot_prev_path).map_err(|_| primary_err)?,
                        );
                    }
                    // No previous generation means the corrupt snapshot
                    // was the first ever written, and the WAL has rotated
                    // at most once — both generations together still
                    // cover every record from sequence 0, so fresh state
                    // plus full replay is complete. (The replay's
                    // sequence-gap check backstops this: incomplete
                    // coverage is a typed error, never silent loss.)
                    snapshot_fallback = true;
                }
                Err(e) => return Err(e),
            }
        } else if vfs.exists(&snapshot_prev_path) {
            // crash between the generation rename and the new snapshot
            // write: the previous generation is the newest intact one
            loaded = Some(read_snapshot(&vfs, &snapshot_prev_path)?);
            snapshot_fallback = true;
        }
        let (state, snapshot_loaded, snapshot_chunks) = match loaded {
            Some((ckpt, cached)) => {
                let chunks = ckpt.chunks_seen as u64;
                for (key, truth) in cached {
                    cache.insert(key, truth);
                }
                (ICrhState::resume(icrh, ckpt)?, true, chunks)
            }
            None => (icrh.start(), false, 0),
        };

        // The retired WAL generation first (records between the previous
        // snapshot and the newest one), then the live WAL. When the
        // newest snapshot loaded cleanly the retired records are all
        // skipped by sequence — so a corrupt *retired* log is ignorable
        // debris unless the fallback actually needs it to bridge the gap.
        let mut torn_bytes = 0u64;
        let prev_records = if vfs.exists(&wal_prev_path) {
            match Wal::open(&wal_prev_path, &vfs) {
                Ok((_, rec)) => {
                    torn_bytes += rec.truncated_bytes;
                    rec.records
                }
                Err(e) if snapshot_fallback || !is_corruption(&e) => return Err(e),
                Err(_) => Vec::new(),
            }
        } else {
            Vec::new()
        };
        let (
            wal,
            WalRecovery {
                records,
                truncated_bytes,
            },
        ) = Wal::open(&wal_path, &vfs)?;
        torn_bytes += truncated_bytes;

        let mut core = Self {
            schema: cfg.schema,
            alpha: cfg.alpha,
            snapshot_every: cfg.snapshot_every.max(1),
            snapshot_path,
            snapshot_prev_path,
            wal_prev_path,
            vfs,
            state,
            wal,
            cache,
            breakers: SourceBreakers::new(cfg.breaker),
            injector: cfg.injector,
            tick: 0,
            attempts: 0,
            poisoned: false,
            solve_threads: cfg.solve_threads,
        };

        let mut replayed = 0u64;
        let mut skipped = 0u64;
        for payload in prev_records.iter().chain(records.iter()) {
            let (seq, claims) = decode_chunk(payload)?;
            let applied = core.state.chunks_seen() as u64;
            if seq < applied {
                skipped += 1;
                continue;
            }
            if seq > applied {
                return Err(ServeError::WalCorrupt {
                    offset: replayed + skipped,
                    reason: "sequence gap between snapshot and WAL replay",
                });
            }
            core.fold(&claims)?;
            replayed += 1;
        }

        Ok((
            core,
            RecoveryReport {
                snapshot_loaded,
                snapshot_chunks,
                wal_replayed: replayed,
                wal_skipped: skipped,
                torn_bytes,
                snapshot_fallback,
            },
        ))
    }

    /// The schema chunks are validated against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Current source weights.
    pub fn weights(&self) -> &[f64] {
        self.state.weights()
    }

    /// The cached truth for `(object, property)`, if it is still resident.
    pub fn truth(&self, object: u32, property: u32) -> Option<Truth> {
        self.cache.get(&(object, property)).cloned()
    }

    /// Operational summary.
    pub fn status(&self) -> CoreStatus {
        CoreStatus {
            chunks_seen: self.state.chunks_seen() as u64,
            wal_records: self.wal.record_count(),
            cached_truths: self.cache.len() as u64,
            quarantined: self.breakers.quarantined(self.tick),
            poisoned: self.poisoned,
        }
    }

    /// Chunks folded so far (== the next chunk's sequence number).
    pub fn chunks_seen(&self) -> u64 {
        self.state.chunks_seen() as u64
    }

    /// The storage seam this core persists through. Gray-failure-aware
    /// callers check [`Vfs::is_slow`] / [`Vfs::is_sticky`] to route
    /// around members whose disks still answer, just badly.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Ingest one chunk end-to-end. On success the chunk is durable
    /// (WAL-fsync'd), folded, and — on the snapshot cadence — absorbed
    /// into a fresh snapshot.
    pub fn ingest(&mut self, claims: &[ChunkClaim]) -> Result<IngestReceipt, ServeError> {
        if self.poisoned {
            return Err(ServeError::ShuttingDown);
        }
        self.tick += 1;
        let attempt = self.attempts;
        self.attempts += 1;

        // 1. Breaker gate, before any per-claim work.
        let mut sources: Vec<u32> = claims.iter().map(|c| c.source).collect();
        sources.sort_unstable();
        sources.dedup();
        for &s in &sources {
            self.breakers.admit(s, self.tick)?;
        }

        // 2. Validation. A bad claim strikes its source's breaker.
        if claims.is_empty() {
            return Err(ServeError::InvalidChunk {
                source: None,
                reason: "empty chunk".into(),
            });
        }
        if let Err((source, reason)) = validate_claims(&self.schema, claims) {
            if let Some(s) = source {
                self.breakers.record_bad(s, self.tick);
            }
            return Err(ServeError::InvalidChunk { source, reason });
        }

        let seq = self.state.chunks_seen() as u64;
        let fate = self.injector.fate(seq, attempt);

        // 3. Commit point: WAL append + fsync. An injected *disk* crash
        // (torn write from the DiskFaultPlan) poisons the core exactly
        // like the chunk-level TornWal fate: a real kill -9 would have
        // destroyed this process. A sticky-dead disk (DiskDegraded) or a
        // transient EIO does not poison — memory is still consistent and
        // the record, if partially written, is unsynced and idempotent.
        let payload = encode_chunk(seq, claims);
        if let ServeFate::TornWal { keep_frac } = fate {
            self.wal.append_torn(&payload, keep_frac)?;
            self.poisoned = true;
            return Err(ServeError::InjectedCrash(ServePoint::WalAppend));
        }
        self.wal
            .append(&payload)
            .map_err(|e| self.poison_if_crash(e))?;
        if fate == ServeFate::CrashBeforeFold {
            self.poisoned = true;
            return Err(ServeError::InjectedCrash(ServePoint::BeforeFold));
        }
        if let ServeFate::StallFold(dur) = fate {
            std::thread::sleep(dur);
        }

        // 4. Fold. Validation already passed, so a failure here is an
        // internal bug, not the feed's fault.
        self.fold(claims)?;
        for &s in &sources {
            self.breakers.record_ok(s);
        }
        if fate == ServeFate::CrashAfterFold {
            self.poisoned = true;
            return Err(ServeError::InjectedCrash(ServePoint::AfterFold));
        }

        // 5. Snapshot cadence: advance the snapshot generation (rename
        // the old one to .prev, write the new one) and retire the WAL.
        let chunks_seen = self.state.chunks_seen() as u64;
        if chunks_seen.is_multiple_of(self.snapshot_every) {
            match fate {
                ServeFate::CrashDuringSnapshot => {
                    // abandon a partial temp file, exactly what a kill -9
                    // mid-write leaves behind; recovery must ignore it
                    let tmp = self.snapshot_path.with_extension("crh.tmp");
                    self.vfs.write_debris(&tmp, b"CRHV\x01partial")?;
                    self.poisoned = true;
                    return Err(ServeError::InjectedCrash(ServePoint::SnapshotWrite));
                }
                ServeFate::CrashAfterSnapshotRename => {
                    self.advance_snapshot_generation()
                        .map_err(|e| self.poison_if_crash(e))?;
                    // crash before the WAL rotation: stale records remain
                    self.poisoned = true;
                    return Err(ServeError::InjectedCrash(ServePoint::SnapshotTruncate));
                }
                _ => {
                    self.advance_snapshot_generation()
                        .map_err(|e| self.poison_if_crash(e))?;
                    self.wal
                        .rotate(&self.wal_prev_path)
                        .map_err(|e| self.poison_if_crash(e))?;
                }
            }
        }

        Ok(IngestReceipt { seq, chunks_seen })
    }

    /// Apply one replicated WAL record shipped by a primary: append +
    /// fsync + fold + snapshot cadence, exactly like [`ingest`](Self::ingest)
    /// but without the breaker gate or re-validation (the primary
    /// validated before committing) and without fault injection.
    /// Duplicate and out-of-order deliveries are typed outcomes, never
    /// double-folds.
    pub fn apply_replicated(&mut self, payload: &[u8]) -> Result<ApplyOutcome, ServeError> {
        if self.poisoned {
            return Err(ServeError::ShuttingDown);
        }
        let (seq, claims) = decode_chunk(payload)?;
        let applied = self.state.chunks_seen() as u64;
        if seq < applied {
            return Ok(ApplyOutcome::AlreadyApplied);
        }
        if seq > applied {
            return Ok(ApplyOutcome::Gap { expected: applied });
        }
        self.wal
            .append(payload)
            .map_err(|e| self.poison_if_crash(e))?;
        self.fold(&claims)?;
        let chunks_seen = self.state.chunks_seen() as u64;
        if chunks_seen.is_multiple_of(self.snapshot_every) {
            self.advance_snapshot_generation()
                .map_err(|e| self.poison_if_crash(e))?;
            self.wal
                .rotate(&self.wal_prev_path)
                .map_err(|e| self.poison_if_crash(e))?;
        }
        Ok(ApplyOutcome::Applied(IngestReceipt { seq, chunks_seen }))
    }

    /// Replace this core's entire state with a snapshot payload shipped
    /// by a primary (catch-up fallback when the requested records have
    /// aged out of the primary's retention window). The payload is
    /// persisted locally (snapshot file + WAL truncation) before the
    /// in-memory state switches, so a crash mid-install recovers to
    /// either the old or the new state, never a mix.
    pub fn install_snapshot(&mut self, payload: &[u8]) -> Result<(), ServeError> {
        if self.poisoned {
            return Err(ServeError::ShuttingDown);
        }
        let (ckpt, cached) = decode_snapshot_payload(payload)?;
        let state = ICrhState::resume(ICrh::new(self.alpha)?.threads(self.solve_threads), ckpt)?;
        self.vfs.write_frame(
            &self.snapshot_path,
            SNAPSHOT_MAGIC,
            SNAPSHOT_VERSION,
            payload,
        )?;
        // the installed snapshot supersedes every local generation:
        // clear the retired artifacts so recovery can never bridge from
        // a pre-install state into a post-install one
        if self.vfs.exists(&self.snapshot_prev_path) {
            self.vfs.remove_file(&self.snapshot_prev_path)?;
        }
        if self.vfs.exists(&self.wal_prev_path) {
            self.vfs.remove_file(&self.wal_prev_path)?;
        }
        self.wal.truncate_all()?;
        let mut cache = TruthCache::new(self.cache.cap);
        for (key, truth) in cached {
            cache.insert(key, truth);
        }
        self.state = state;
        self.cache = cache;
        Ok(())
    }

    /// A cheap whole-state fingerprint ([`digest64`] of
    /// [`checkpoint_bytes`](Self::checkpoint_bytes)) for replica
    /// divergence checks.
    pub fn state_digest(&self) -> u64 {
        crh_core::persist::digest64(&self.checkpoint_bytes())
    }

    /// Force a snapshot now (and truncate the WAL). Used at clean
    /// shutdown and by tests.
    pub fn snapshot_now(&mut self) -> Result<(), ServeError> {
        if self.poisoned {
            return Err(ServeError::ShuttingDown);
        }
        self.advance_snapshot_generation()?;
        self.wal.rotate(&self.wal_prev_path)
    }

    /// The snapshot payload this core would persist right now — the
    /// canonical byte-level fingerprint chaos tests compare across
    /// crash/recover boundaries.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        snapshot_payload(&self.state.checkpoint(), &self.cache)
    }

    /// Run a full batch CRH solve over `claims`, seeded with the daemon's
    /// current weights, honouring `cancel` (deadline or explicit).
    pub fn solve(
        &self,
        claims: &[ChunkClaim],
        tol: f64,
        max_iters: usize,
        cancel: &CancelToken,
    ) -> Result<SolveOutcome, ServeError> {
        if self.poisoned {
            return Err(ServeError::ShuttingDown);
        }
        solve_claims(
            &self.schema,
            claims,
            self.state.weights(),
            tol,
            max_iters,
            self.solve_threads,
            cancel,
        )
    }

    fn fold(&mut self, claims: &[ChunkClaim]) -> Result<(), ServeError> {
        let table = build_table(&self.schema, claims)?;
        let truths = self.state.process_chunk(&table)?;
        for (eid, truth) in truths.iter() {
            let entry = table.entry(eid);
            self.cache
                .insert((entry.object.0, entry.property.0), truth.clone());
        }
        Ok(())
    }

    fn write_snapshot(&self) -> Result<(), ServeError> {
        let payload = snapshot_payload(&self.state.checkpoint(), &self.cache);
        // vfs.write_frame is tmp + fsync + atomic rename + parent-dir
        // fsync: the new snapshot is durable or the old one survives
        self.vfs.write_frame(
            &self.snapshot_path,
            SNAPSHOT_MAGIC,
            SNAPSHOT_VERSION,
            &payload,
        )
    }

    /// Retire the current snapshot to the previous generation and write
    /// a fresh one. Ordering is crash-safe at every point: the rename
    /// happens first, so a crash before the new snapshot lands leaves
    /// the previous generation as the newest intact one and recovery
    /// bridges forward from it through the retained WALs.
    fn advance_snapshot_generation(&self) -> Result<(), ServeError> {
        if self.vfs.exists(&self.snapshot_path) {
            self.vfs
                .rename(&self.snapshot_path, &self.snapshot_prev_path)?;
            self.vfs.sync_parent_dir(&self.snapshot_path)?;
        }
        self.write_snapshot()
    }

    /// Poison the core when a disk fault reports the process crashed;
    /// pass every other error through untouched.
    fn poison_if_crash(&mut self, e: ServeError) -> ServeError {
        if matches!(e, ServeError::InjectedCrash(_)) {
            self.poisoned = true;
        }
        e
    }

    /// The configured solver kernel thread count (0 = available
    /// parallelism).
    pub fn solve_threads(&self) -> usize {
        self.solve_threads
    }

    /// The configured decay rate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Validate every claim against the schema: known property, matching
/// type, finite numbers, categorical ids inside the declared domain.
pub(crate) fn validate_claims(
    schema: &Schema,
    claims: &[ChunkClaim],
) -> Result<(), (Option<u32>, String)> {
    for c in claims {
        let m = PropertyId(c.property);
        schema
            .check_value(m, &c.value)
            .map_err(|e| (Some(c.source), e.to_string()))?;
        if let Value::Cat(id) = c.value {
            let in_domain = schema.domain(m).is_some_and(|d| (id as usize) < d.len());
            if !in_domain {
                return Err((
                    Some(c.source),
                    format!(
                        "categorical id {id} outside domain of property {}",
                        c.property
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn build_table(schema: &Schema, claims: &[ChunkClaim]) -> Result<ObservationTable, ServeError> {
    let raw: Vec<Claim> = claims
        .iter()
        .map(|c| Claim {
            object: ObjectId(c.object),
            property: PropertyId(c.property),
            source: SourceId(c.source),
            value: c.value.clone(),
        })
        .collect();
    Ok(ObservationTable::from_claims(schema.clone(), raw)?)
}

/// Batch CRH over `claims` seeded from `seed_weights` (free function so
/// the server can run it without holding the core lock). `threads` sets
/// the solver kernel thread count (`0` = available parallelism, `1` =
/// exact sequential); results are bit-identical for every value.
#[allow(clippy::too_many_arguments)]
pub fn solve_claims(
    schema: &Schema,
    claims: &[ChunkClaim],
    seed_weights: &[f64],
    tol: f64,
    max_iters: usize,
    threads: usize,
    cancel: &CancelToken,
) -> Result<SolveOutcome, ServeError> {
    if claims.is_empty() {
        return Err(ServeError::InvalidChunk {
            source: None,
            reason: "empty chunk".into(),
        });
    }
    validate_claims(schema, claims)
        .map_err(|(source, reason)| ServeError::InvalidChunk { source, reason })?;
    let table = build_table(schema, claims)?;
    let mut session = CrhSession::new(&table)?;
    session.set_threads(threads);
    let mut w = seed_weights.to_vec();
    w.resize(table.num_sources(), 1.0);
    w.truncate(table.num_sources());
    session.set_weights(w);
    session.run_to_convergence_with(tol, max_iters, cancel)?;
    let objective = session.objective();
    let iterations = session.iterations() as u64;
    let (_truths, weights) = session.finish();
    Ok(SolveOutcome {
        weights,
        objective,
        iterations,
    })
}

/// Parse CSV text with rows `object,property_name,source,value` into
/// claims against `schema`. Categorical labels are resolved with
/// [`Schema::lookup`] — never interned — so a typo'd label is a typed
/// rejection instead of a silent new domain value.
pub fn claims_from_csv(schema: &Schema, text: &str) -> Result<Vec<ChunkClaim>, ServeError> {
    let rows = crh_data::csv::parse(text).map_err(|e| ServeError::InvalidChunk {
        source: None,
        reason: format!("csv: {e}"),
    })?;
    let mut claims = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let bad = |reason: String| ServeError::InvalidChunk {
            source: None,
            reason: format!("row {}: {reason}", i + 1),
        };
        let [object_field, property_field, source_field, value_field] = row.as_slice() else {
            return Err(bad(format!("expected 4 fields, got {}", row.len())));
        };
        let object: u32 = object_field
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad object id {object_field:?}")))?;
        let property = schema
            .property_by_name(property_field.trim())
            .ok_or_else(|| bad(format!("unknown property {property_field:?}")))?;
        let source: u32 = source_field
            .trim()
            .parse()
            .map_err(|_| bad(format!("bad source id {source_field:?}")))?;
        let value = match schema
            .property_type(property)
            .map_err(|e| bad(e.to_string()))?
        {
            crh_core::value::PropertyType::Continuous => {
                let x: f64 = value_field
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad number {value_field:?}")))?;
                Value::Num(x)
            }
            crh_core::value::PropertyType::Categorical => schema
                .lookup(property, value_field.trim())
                .map_err(|e| ServeError::InvalidChunk {
                    source: Some(source),
                    reason: format!("row {}: {e}", i + 1),
                })?,
            crh_core::value::PropertyType::Text => Value::Text(value_field.clone()),
        };
        claims.push(ChunkClaim {
            object,
            property: property.0,
            source,
            value,
        });
    }
    Ok(claims)
}

/// Encode a WAL chunk record: `seq`, claim count, then each claim.
pub(crate) fn encode_chunk(seq: u64, claims: &[ChunkClaim]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(seq);
    e.u32(claims.len() as u32);
    for c in claims {
        e.u32(c.object);
        e.u32(c.property);
        e.u32(c.source);
        e.value(&c.value);
    }
    e.into_bytes()
}

/// Decode a WAL chunk record.
pub(crate) fn decode_chunk(bytes: &[u8]) -> Result<(u64, Vec<ChunkClaim>), ServeError> {
    let mut d = Dec::new(bytes);
    let seq = d.u64()?;
    let n = d.u32()? as usize;
    let mut claims = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        claims.push(ChunkClaim {
            object: d.u32()?,
            property: d.u32()?,
            source: d.u32()?,
            value: d.value()?,
        });
    }
    if !d.is_exhausted() {
        return Err(ServeError::Protocol(
            "trailing bytes after chunk record".into(),
        ));
    }
    Ok((seq, claims))
}

fn snapshot_payload(ckpt: &ICrhCheckpoint, cache: &TruthCache) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(ckpt.chunks_seen as u64);
    e.f64s(&ckpt.weights);
    e.f64s(&ckpt.accumulated);
    e.u32(cache.len() as u32);
    for ((object, property), truth) in cache.iter_fifo() {
        e.u32(object);
        e.u32(property);
        e.truth(truth);
    }
    e.into_bytes()
}

/// A decoded snapshot: the solver checkpoint plus the cached truths
/// keyed by `(object, property)`.
type SnapshotPayload = (ICrhCheckpoint, Vec<((u32, u32), Truth)>);

fn read_snapshot(vfs: &Vfs, path: &Path) -> Result<SnapshotPayload, ServeError> {
    let (_version, payload) = vfs.read_frame(path, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
    decode_snapshot_payload(&payload)
}

/// Whether an error means *the artifact's bytes are wrong* (bit rot, a
/// torn frame, a stale version) as opposed to the disk merely failing to
/// serve them. Only corruption may trigger a generation fallback; I/O
/// errors must surface so a transient `EIO` cannot silently rewind state.
pub(crate) fn is_corruption(e: &ServeError) -> bool {
    match e {
        ServeError::Persist(p) => !matches!(p, PersistError::Io(_)),
        ServeError::WalCorrupt { .. } => true,
        _ => false,
    }
}

fn decode_snapshot_payload(payload: &[u8]) -> Result<SnapshotPayload, ServeError> {
    let mut d = Dec::new(payload);
    let chunks_seen = d.u64()? as usize;
    let weights = d.f64s()?;
    let accumulated = d.f64s()?;
    let n = d.u32()? as usize;
    let mut cached = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let object = d.u32()?;
        let property = d.u32()?;
        let truth = d.truth()?;
        cached.push(((object, property), truth));
    }
    if !d.is_exhausted() {
        return Err(ServeError::Protocol(
            "trailing bytes after snapshot payload".into(),
        ));
    }
    let ckpt = ICrhCheckpoint {
        weights,
        accumulated,
        chunks_seen,
    };
    ckpt.validate()?;
    Ok((ckpt, cached))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_continuous("temperature");
        let p = s.add_categorical("condition");
        s.intern(p, "sunny").unwrap();
        s.intern(p, "rainy").unwrap();
        s
    }

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("crh_core_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn chunk(step: u32) -> Vec<ChunkClaim> {
        vec![
            ChunkClaim::num(0, 0, 0, 20.0 + step as f64),
            ChunkClaim::num(0, 0, 1, 20.5 + step as f64),
            ChunkClaim::num(1, 0, 2, 30.0),
            ChunkClaim {
                object: 0,
                property: 1,
                source: 0,
                value: Value::Cat(step % 2),
            },
        ]
    }

    #[test]
    fn ingest_folds_and_serves_truths() {
        let d = dir("basic");
        let (mut core, rec) = ServeCore::open(ServeConfig::new(schema(), 0.5, &d)).unwrap();
        assert!(!rec.snapshot_loaded);
        for step in 0..3 {
            let r = core.ingest(&chunk(step)).unwrap();
            assert_eq!(r.seq, step as u64);
        }
        assert_eq!(core.chunks_seen(), 3);
        assert_eq!(core.weights().len(), 3);
        assert!(core.truth(0, 0).is_some());
        assert!(core.truth(1, 0).is_some());
        assert!(core.truth(9, 9).is_none());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn restart_recovers_identical_state() {
        let d = dir("restart");
        let fingerprint = {
            let (mut core, _) =
                ServeCore::open(ServeConfig::new(schema(), 0.5, &d).snapshot_every(2)).unwrap();
            for step in 0..5 {
                core.ingest(&chunk(step)).unwrap();
            }
            core.checkpoint_bytes()
        }; // dropped without a clean shutdown: WAL holds chunk 4
        let (core, rec) = ServeCore::open(ServeConfig::new(schema(), 0.5, &d)).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.snapshot_chunks, 4);
        assert_eq!(rec.wal_replayed, 1);
        assert_eq!(core.checkpoint_bytes(), fingerprint);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn invalid_chunks_strike_and_quarantine() {
        let d = dir("breaker");
        let (mut core, _) = ServeCore::open(ServeConfig::new(schema(), 0.5, &d)).unwrap();
        let bad = vec![ChunkClaim::num(0, 0, 7, f64::NAN)];
        for _ in 0..3 {
            let err = core.ingest(&bad).unwrap_err();
            assert!(matches!(
                err,
                ServeError::InvalidChunk {
                    source: Some(7),
                    ..
                }
            ));
        }
        let err = core.ingest(&[ChunkClaim::num(0, 0, 7, 21.0)]).unwrap_err();
        assert!(
            matches!(err, ServeError::Quarantined { source: 7, .. }),
            "{err}"
        );
        // an unrelated source is unaffected
        core.ingest(&[ChunkClaim::num(0, 0, 1, 21.0)]).unwrap();
        // model state was never touched by the bad feed
        assert_eq!(core.chunks_seen(), 1);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn out_of_domain_category_is_rejected() {
        let d = dir("domain");
        let (mut core, _) = ServeCore::open(ServeConfig::new(schema(), 0.5, &d)).unwrap();
        let err = core
            .ingest(&[ChunkClaim {
                object: 0,
                property: 1,
                source: 0,
                value: Value::Cat(99),
            }])
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidChunk { .. }), "{err}");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn solve_honours_cancellation() {
        let d = dir("solve");
        let (core, _) = ServeCore::open(ServeConfig::new(schema(), 0.5, &d)).unwrap();
        let claims = chunk(0);
        let out = core.solve(&claims, 1e-9, 100, &CancelToken::new()).unwrap();
        assert!(out.objective.is_finite());
        assert_eq!(out.weights.len(), 3);
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = core.solve(&claims, 1e-9, 100, &cancelled).unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded), "{err}");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn apply_replicated_matches_local_ingest_and_dedups() {
        let da = dir("repl_a");
        let db = dir("repl_b");
        let (mut a, _) = ServeCore::open(ServeConfig::new(schema(), 0.5, &da)).unwrap();
        let (mut b, _) = ServeCore::open(ServeConfig::new(schema(), 0.5, &db)).unwrap();
        let mut records = Vec::new();
        for step in 0..4 {
            let claims = chunk(step);
            let r = a.ingest(&claims).unwrap();
            records.push(encode_chunk(r.seq, &claims));
        }
        for rec in &records {
            let out = b.apply_replicated(rec).unwrap();
            assert!(matches!(out, ApplyOutcome::Applied(_)), "{out:?}");
        }
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.checkpoint_bytes(), b.checkpoint_bytes());
        // duplicate delivery is a no-op outcome, not a double fold
        assert_eq!(
            b.apply_replicated(&records[1]).unwrap(),
            ApplyOutcome::AlreadyApplied
        );
        // skipping ahead is a typed gap, not a silent hole
        let ahead = encode_chunk(9, &chunk(9));
        assert_eq!(
            b.apply_replicated(&ahead).unwrap(),
            ApplyOutcome::Gap { expected: 4 }
        );
        assert_eq!(a.state_digest(), b.state_digest());
        std::fs::remove_dir_all(&da).ok();
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn install_snapshot_transfers_state_durably() {
        let da = dir("install_a");
        let db = dir("install_b");
        let (mut a, _) = ServeCore::open(ServeConfig::new(schema(), 0.5, &da)).unwrap();
        for step in 0..5 {
            a.ingest(&chunk(step)).unwrap();
        }
        let (mut b, _) = ServeCore::open(ServeConfig::new(schema(), 0.5, &db)).unwrap();
        b.ingest(&chunk(99)).unwrap(); // divergent state to overwrite
        b.install_snapshot(&a.checkpoint_bytes()).unwrap();
        assert_eq!(b.chunks_seen(), 5);
        assert_eq!(b.state_digest(), a.state_digest());
        // the install is durable: a restart recovers the installed state
        drop(b);
        let (b, rec) = ServeCore::open(ServeConfig::new(schema(), 0.5, &db)).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(b.state_digest(), a.state_digest());
        // garbage payloads are typed errors and leave state untouched
        let mut c = b;
        assert!(c.install_snapshot(b"not a snapshot").is_err());
        assert_eq!(c.state_digest(), a.state_digest());
        std::fs::remove_dir_all(&da).ok();
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn chunk_codec_roundtrips_and_rejects_garbage() {
        let claims = chunk(1);
        let bytes = encode_chunk(42, &claims);
        let (seq, back) = decode_chunk(&bytes).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(back, claims);
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_chunk(&extra).is_err());
        assert!(decode_chunk(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn csv_rows_become_claims_without_interning() {
        let s = schema();
        let claims = claims_from_csv(&s, "0,temperature,1,21.5\n2,condition,0,rainy\n").unwrap();
        assert_eq!(claims.len(), 2);
        assert_eq!(claims[0], ChunkClaim::num(0, 0, 1, 21.5));
        assert_eq!(claims[1].value, Value::Cat(1));
        // unknown labels and properties are typed rejections, not new ids
        assert!(matches!(
            claims_from_csv(&s, "0,condition,0,hail\n"),
            Err(ServeError::InvalidChunk {
                source: Some(0),
                ..
            })
        ));
        assert!(claims_from_csv(&s, "0,humidity,0,5\n").is_err());
        assert!(claims_from_csv(&s, "0,temperature,0\n").is_err());
        assert!(claims_from_csv(&s, "x,temperature,0,5\n").is_err());
    }

    #[test]
    fn truth_cache_evicts_fifo_and_updates_in_place() {
        let mut c = TruthCache::new(2);
        c.insert((0, 0), Truth::Point(Value::Num(1.0)));
        c.insert((1, 0), Truth::Point(Value::Num(2.0)));
        c.insert((0, 0), Truth::Point(Value::Num(9.0))); // update, no evict
        assert_eq!(c.len(), 2);
        c.insert((2, 0), Truth::Point(Value::Num(3.0))); // evicts (0,0)
        assert!(c.get(&(0, 0)).is_none());
        assert!(c.get(&(1, 0)).is_some());
        assert!(c.get(&(2, 0)).is_some());
    }
}
