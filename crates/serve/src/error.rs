//! Typed errors for the serving layer.
//!
//! Every failure a client or operator can observe is a variant here —
//! the daemon never panics on bad input, bad peers, or bad disks. The
//! variants split into three families: *load* (`Overloaded`,
//! `DeadlineExceeded`), *containment* (`Quarantined`, `InvalidChunk`),
//! and *durability* (`WalCorrupt`, `Persist`). `InjectedCrash` only ever
//! appears under a seeded [`ServeFaultPlan`](crate::faults::ServeFaultPlan)
//! in chaos tests.

use crh_core::error::CrhError;
use crh_core::persist::PersistError;
use crh_stream::StreamError;

use crate::faults::ServePoint;

/// Everything that can go wrong accepting, folding, persisting, or
/// serving observation chunks.
#[derive(Debug)]
pub enum ServeError {
    /// The ingest queue is full; the chunk was rejected without buffering.
    /// Retry with backoff — the daemon sheds load instead of growing.
    Overloaded {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// A source tripped the malformed-observation circuit breaker and its
    /// chunks are rejected until the cool-down elapses.
    Quarantined {
        /// The quarantined source id.
        source: u32,
        /// The ingest tick at which the source becomes eligible to heal.
        until_tick: u64,
    },
    /// The request did not complete within its deadline; any in-flight
    /// solve was cooperatively cancelled.
    DeadlineExceeded,
    /// The chunk failed validation (schema mismatch, non-finite value,
    /// unknown label, out-of-domain category, or empty payload).
    InvalidChunk {
        /// The source the offending claim was attributed to, if any.
        source: Option<u32>,
        /// Human-readable reason.
        reason: String,
    },
    /// A malformed protocol frame or request payload.
    Protocol(String),
    /// The remote daemon reported an error over the wire.
    Remote {
        /// The wire error code.
        code: u8,
        /// The daemon's message.
        message: String,
    },
    /// The WAL contains corruption that is not a torn tail (a bad record
    /// followed by further readable data), so recovery refuses to guess.
    WalCorrupt {
        /// Byte offset of the offending record.
        offset: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The daemon is shutting down (or a prior injected crash poisoned
    /// this core) and no longer accepts work.
    ShuttingDown,
    /// The snapshot directory could not be fsync'd after the atomic
    /// rename, so the rename itself may not survive power loss.
    SnapshotDirSync {
        /// The directory that failed to sync.
        dir: std::path::PathBuf,
        /// The underlying I/O error, stringified.
        reason: String,
    },
    /// Every retry attempt failed; the log records each attempt's error.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// One entry per attempt, in order.
        log: Vec<String>,
    },
    /// This node is a follower (or mid-election) and cannot accept
    /// writes; retry against the primary.
    NotPrimary {
        /// The node id of the primary, if this node knows it.
        hint: Option<u32>,
    },
    /// The chunk is durable on this node but fewer than `quorum` replicas
    /// acknowledged the fsync before the deadline. The client must treat
    /// the write as unacknowledged and retry; the sequence-idempotent
    /// protocol makes the retry safe.
    NotReplicated {
        /// The sequence number of the un-acked chunk.
        seq: u64,
        /// Replicas (including the primary) that had fsync'd it.
        acked: usize,
        /// The configured quorum.
        quorum: usize,
    },
    /// A replication frame carried the wrong cluster key. The frame was
    /// not acted on: any client that can reach the port must not be able
    /// to depose the primary, force elections, or inject log records.
    Unauthenticated,
    /// A replication message carried an epoch older than this node's;
    /// the sender is a deposed primary and must step down.
    StaleEpoch {
        /// The epoch the message carried.
        got: u64,
        /// This node's current epoch.
        current: u64,
    },
    /// A scatter-gather read completed on some shard groups but not all
    /// of them. The payload that *was* gathered is still returned beside
    /// this error by the router's typed [`Sharded`](crate::router::Sharded)
    /// wrapper; this variant is what a strict single-shard read reports
    /// when the owning group is unreachable.
    Degraded {
        /// Shard ids whose groups could not answer within the deadline.
        missing_shards: Vec<u32>,
    },
    /// A shard-routed frame landed on a member of a different shard group
    /// (a misdelivery or a stale route table). The frame was not acted on.
    WrongShard {
        /// The shard id the frame was addressed to.
        shard: u32,
        /// The shard id the receiving member actually serves.
        at: u32,
    },
    /// A shard-routed frame carried a shard-map version older than the
    /// receiver's: the sender's route table predates a cutover. Refresh
    /// the route table and retry.
    StaleShardMap {
        /// The map version the frame carried.
        got: u64,
        /// The receiver's current map version.
        current: u64,
    },
    /// This node's disk has gone sticky-bad (ENOSPC or persistent EIO):
    /// writes and fsyncs no longer succeed, so the node can neither make
    /// chunks durable nor persist election state. A primary reporting
    /// this has stopped acknowledging writes and is self-deposing so a
    /// replica with a healthy disk can win the election; clients retry
    /// against the rest of the cluster.
    DiskDegraded {
        /// The storage operation that failed ("write", "fsync", ...).
        op: &'static str,
    },
    /// A fault-plan builder was given an out-of-range probability or the
    /// variants' probabilities sum past 1.0, which would silently skew
    /// every seeded fate drawn from the plan.
    InvalidFaultPlan(String),
    /// A seeded fault-plan crash fired at this point. Chaos tests treat
    /// this exactly like `kill -9`: drop the core and recover from disk.
    InjectedCrash(ServePoint),
    /// An error from the streaming layer.
    Stream(StreamError),
    /// An error from the core solver.
    Core(CrhError),
    /// A snapshot failed to read or write.
    Persist(PersistError),
    /// An I/O failure on the WAL, snapshot directory, or socket.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { capacity } => {
                write!(
                    f,
                    "ingest queue full (capacity {capacity}); retry with backoff"
                )
            }
            Self::Quarantined { source, until_tick } => write!(
                f,
                "source {source} is quarantined until ingest tick {until_tick}"
            ),
            Self::DeadlineExceeded => write!(f, "request deadline exceeded"),
            Self::InvalidChunk { source, reason } => match source {
                Some(s) => write!(f, "invalid chunk (source {s}): {reason}"),
                None => write!(f, "invalid chunk: {reason}"),
            },
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
            Self::Remote { code, message } => {
                write!(f, "daemon error (code {code}): {message}")
            }
            Self::WalCorrupt { offset, reason } => {
                write!(f, "WAL corrupt at offset {offset}: {reason}")
            }
            Self::ShuttingDown => write!(f, "daemon is shutting down"),
            Self::SnapshotDirSync { dir, reason } => {
                write!(
                    f,
                    "snapshot directory {} failed to fsync: {reason}",
                    dir.display()
                )
            }
            Self::RetriesExhausted { attempts, log } => {
                write!(
                    f,
                    "all {attempts} attempts failed (last: {})",
                    log.last().map(String::as_str).unwrap_or("none")
                )
            }
            Self::NotPrimary { hint } => match hint {
                Some(n) => write!(f, "not the primary; retry against node {n}"),
                None => write!(f, "not the primary; no known primary to redirect to"),
            },
            Self::NotReplicated { seq, acked, quorum } => write!(
                f,
                "chunk seq {seq} reached only {acked}/{quorum} replicas before the deadline; retry"
            ),
            Self::Unauthenticated => {
                write!(f, "replication frame rejected: wrong cluster key")
            }
            Self::StaleEpoch { got, current } => {
                write!(
                    f,
                    "message from stale epoch {got} (current epoch {current})"
                )
            }
            Self::Degraded { missing_shards } => write!(
                f,
                "degraded read: shard group(s) {missing_shards:?} unreachable"
            ),
            Self::WrongShard { shard, at } => write!(
                f,
                "frame for shard {shard} misdelivered to a member of shard {at}"
            ),
            Self::StaleShardMap { got, current } => write!(
                f,
                "stale shard map version {got} (current {current}); refresh the route table"
            ),
            Self::DiskDegraded { op } => write!(
                f,
                "disk degraded: {op} failed with a sticky error; this node no longer accepts writes"
            ),
            Self::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            Self::InjectedCrash(p) => write!(f, "injected crash at {p:?}"),
            Self::Stream(e) => write!(f, "stream error: {e}"),
            Self::Core(e) => write!(f, "solver error: {e}"),
            Self::Persist(e) => write!(f, "snapshot error: {e}"),
            Self::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Stream(e) => Some(e),
            Self::Core(e) => Some(e),
            Self::Persist(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        Self::Stream(e)
    }
}

impl From<CrhError> for ServeError {
    fn from(e: CrhError) -> Self {
        match e {
            CrhError::Cancelled => Self::DeadlineExceeded,
            other => Self::Core(other),
        }
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        Self::Persist(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Wire error codes (stable across versions; used by
/// [`Response::Error`](crate::proto::Response)).
pub mod code {
    /// Queue full.
    pub const OVERLOADED: u8 = 1;
    /// Source quarantined.
    pub const QUARANTINED: u8 = 2;
    /// Deadline exceeded.
    pub const DEADLINE: u8 = 3;
    /// Chunk failed validation.
    pub const INVALID_CHUNK: u8 = 4;
    /// Malformed frame or request.
    pub const PROTOCOL: u8 = 5;
    /// Daemon shutting down.
    pub const SHUTTING_DOWN: u8 = 6;
    /// Anything else (durability, solver internals).
    pub const INTERNAL: u8 = 7;
    /// This node is a follower; writes must go to the primary.
    pub const NOT_PRIMARY: u8 = 8;
    /// Durable locally but the replication quorum was not reached.
    pub const NOT_REPLICATED: u8 = 9;
    /// Replication message from a deposed epoch.
    pub const STALE_EPOCH: u8 = 10;
    /// Replication frame carried the wrong cluster key.
    pub const UNAUTHENTICATED: u8 = 11;
    /// Scatter-gather read missing one or more shard groups.
    pub const DEGRADED: u8 = 12;
    /// Shard-routed frame delivered to a member of a different shard.
    pub const WRONG_SHARD: u8 = 13;
    /// Shard-routed frame carried a pre-cutover shard-map version.
    pub const STALE_SHARD_MAP: u8 = 14;
    /// The node's disk is sticky-failed; it cannot accept writes.
    pub const DISK_DEGRADED: u8 = 15;
}

impl ServeError {
    /// Whether this error means the request ran out of *time* — locally
    /// (a socket timeout, a cancelled solve) or at the remote (a typed
    /// `DEADLINE` / `NOT_REPLICATED` refusal) — rather than being
    /// refused outright. This is the class a hedged read fails over on,
    /// and the class the retry log labels `timeout` instead of
    /// `redirect`.
    pub fn is_timeout(&self) -> bool {
        match self {
            Self::DeadlineExceeded | Self::NotReplicated { .. } => true,
            Self::Remote { code, .. } => *code == code::DEADLINE || *code == code::NOT_REPLICATED,
            Self::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }

    /// Whether this error is a routing redirect — a follower refusing a
    /// write, or stale shard-routing state — rather than a failure of
    /// the peer itself. Redirects are not strikes against a peer's
    /// health: the peer answered promptly, just with directions.
    pub fn is_redirect(&self) -> bool {
        match self {
            Self::NotPrimary { .. } | Self::WrongShard { .. } | Self::StaleShardMap { .. } => true,
            Self::Remote { code, .. } => matches!(
                *code,
                code::NOT_PRIMARY | code::WRONG_SHARD | code::STALE_SHARD_MAP
            ),
            _ => false,
        }
    }

    /// The wire code a daemon reports for this error.
    pub fn wire_code(&self) -> u8 {
        match self {
            Self::Overloaded { .. } => code::OVERLOADED,
            Self::Quarantined { .. } => code::QUARANTINED,
            Self::DeadlineExceeded => code::DEADLINE,
            Self::InvalidChunk { .. } => code::INVALID_CHUNK,
            Self::Protocol(_) => code::PROTOCOL,
            Self::ShuttingDown => code::SHUTTING_DOWN,
            Self::NotPrimary { .. } => code::NOT_PRIMARY,
            Self::NotReplicated { .. } => code::NOT_REPLICATED,
            Self::StaleEpoch { .. } => code::STALE_EPOCH,
            Self::Unauthenticated => code::UNAUTHENTICATED,
            Self::Degraded { .. } => code::DEGRADED,
            Self::WrongShard { .. } => code::WRONG_SHARD,
            Self::StaleShardMap { .. } => code::STALE_SHARD_MAP,
            Self::DiskDegraded { .. } => code::DISK_DEGRADED,
            Self::Remote { code, .. } => *code,
            _ => code::INTERNAL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServeError::Overloaded { capacity: 64 }
            .to_string()
            .contains("64"));
        assert!(ServeError::Quarantined {
            source: 3,
            until_tick: 99
        }
        .to_string()
        .contains("99"));
        let e = ServeError::InvalidChunk {
            source: Some(2),
            reason: "NaN".into(),
        };
        assert!(e.to_string().contains("source 2"));
    }

    #[test]
    fn cancelled_core_error_becomes_deadline() {
        let e = ServeError::from(CrhError::Cancelled);
        assert!(matches!(e, ServeError::DeadlineExceeded));
        assert_eq!(e.wire_code(), code::DEADLINE);
    }

    #[test]
    fn replication_errors_display_and_code() {
        let e = ServeError::NotReplicated {
            seq: 7,
            acked: 1,
            quorum: 2,
        };
        assert!(e.to_string().contains("1/2"));
        assert_eq!(e.wire_code(), code::NOT_REPLICATED);
        let e = ServeError::NotPrimary { hint: Some(2) };
        assert!(e.to_string().contains("node 2"));
        assert_eq!(e.wire_code(), code::NOT_PRIMARY);
        let e = ServeError::StaleEpoch { got: 1, current: 3 };
        assert!(e.to_string().contains("epoch 1"));
        assert_eq!(e.wire_code(), code::STALE_EPOCH);
        let e = ServeError::Unauthenticated;
        assert!(e.to_string().contains("cluster key"));
        assert_eq!(e.wire_code(), code::UNAUTHENTICATED);
        let e = ServeError::RetriesExhausted {
            attempts: 3,
            log: vec!["a".into(), "connection refused".into()],
        };
        assert!(e.to_string().contains("connection refused"));
        let e = ServeError::SnapshotDirSync {
            dir: "/tmp/x".into(),
            reason: "EIO".into(),
        };
        assert!(e.to_string().contains("EIO"));
    }

    #[test]
    fn shard_errors_display_and_code() {
        let e = ServeError::Degraded {
            missing_shards: vec![1, 3],
        };
        assert!(e.to_string().contains("[1, 3]"));
        assert_eq!(e.wire_code(), code::DEGRADED);
        let e = ServeError::WrongShard { shard: 2, at: 0 };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.to_string().contains("shard 0"));
        assert_eq!(e.wire_code(), code::WRONG_SHARD);
        let e = ServeError::StaleShardMap { got: 1, current: 2 };
        assert!(e.to_string().contains("version 1"));
        assert_eq!(e.wire_code(), code::STALE_SHARD_MAP);
        let e = ServeError::InvalidFaultPlan("drop_prob = 1.5".into());
        assert!(e.to_string().contains("1.5"));
        assert_eq!(e.wire_code(), code::INTERNAL);
    }

    #[test]
    fn disk_degraded_displays_and_codes() {
        let e = ServeError::DiskDegraded { op: "fsync" };
        assert!(e.to_string().contains("fsync"));
        assert!(e.to_string().contains("sticky"));
        assert_eq!(e.wire_code(), code::DISK_DEGRADED);
    }

    #[test]
    fn timeout_and_redirect_classes_are_disjoint_and_cover_remotes() {
        let timeouts = [
            ServeError::DeadlineExceeded,
            ServeError::NotReplicated {
                seq: 1,
                acked: 1,
                quorum: 2,
            },
            ServeError::Remote {
                code: code::DEADLINE,
                message: String::new(),
            },
            ServeError::Io(std::io::Error::from(std::io::ErrorKind::TimedOut)),
            ServeError::Io(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
        ];
        for e in &timeouts {
            assert!(e.is_timeout(), "{e}");
            assert!(!e.is_redirect(), "{e}");
        }
        let redirects = [
            ServeError::NotPrimary { hint: Some(1) },
            ServeError::WrongShard { shard: 1, at: 0 },
            ServeError::StaleShardMap { got: 1, current: 2 },
            ServeError::Remote {
                code: code::NOT_PRIMARY,
                message: String::new(),
            },
        ];
        for e in &redirects {
            assert!(e.is_redirect(), "{e}");
            assert!(!e.is_timeout(), "{e}");
        }
        // a refused connection is neither: the peer is down, not slow
        let e = ServeError::Io(std::io::Error::from(std::io::ErrorKind::ConnectionRefused));
        assert!(!e.is_timeout() && !e.is_redirect());
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = ServeError::from(StreamError::NonFiniteCheckpoint);
        assert!(e.source().is_some());
        assert!(ServeError::DeadlineExceeded.source().is_none());
    }
}
