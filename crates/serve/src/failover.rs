//! Deterministic failover: the election rule and a simulated cluster
//! for exercising it under seeded network chaos.
//!
//! Failure *detection* lives in [`ReplicaNode::tick`] (a follower that
//! misses heartbeats for its node-id-staggered timeout campaigns); this
//! module holds the *decision* — [`elect`], a pure function from the
//! collected votes to the winner — and [`SimCluster`], a synchronous
//! stepped simulation that drives a set of real `ReplicaNode`s (real
//! `ServeCore`s, real WALs on disk) over a fault-injected in-memory
//! network ([`NetFaultPlan`]). Because every link fate, kill, and
//! restart is a pure function of the plan's seed and the step number,
//! a chaotic run replays exactly — the partition chaos suite leans on
//! this to compare post-heal replica digests against a never-partitioned
//! reference run.
//!
//! [`ReplicaNode::tick`]: crate::replicate::ReplicaNode::tick

use std::collections::BTreeMap;

use crate::core::{ChunkClaim, ServeConfig};
use crate::error::ServeError;
use crate::faults::{LinkFate, NetFaultPlan};
use crate::replicate::{ReplicaConfig, ReplicaNode, Role};

/// Pick the election winner from `votes`: node id → `(last_epoch,
/// durable)`. The best `(last_epoch, durable)` wins — a log extended by
/// a newer primary beats a longer stale one — and ties break to the
/// *lowest* node id, so any two candidates looking at the same votes
/// reach the same verdict. Returns `None` only for an empty vote set
/// (a candidate always votes for itself, so this never decides a real
/// election).
pub fn elect(votes: &BTreeMap<u32, (u64, u64)>) -> Option<u32> {
    votes
        .iter()
        .map(|(&node, &(last_epoch, durable))| (last_epoch, durable, std::cmp::Reverse(node)))
        .max()
        .map(|(_, _, std::cmp::Reverse(node))| node)
}

/// A frame held back by the plan's latency chaos: it is delivered (and
/// its reply fed back to whoever holds the sender's id — possibly a
/// restarted incarnation) at the start of the `deliver_at` step.
struct DelayedFrame {
    deliver_at: u64,
    from: u32,
    dest: u32,
    req: crate::proto::Request,
    drop_reply: bool,
}

/// A synchronous, deterministically chaotic cluster of [`ReplicaNode`]s.
///
/// Each [`step`](Self::step) advances logical time by one: scheduled
/// kills fire (the node is dropped mid-flight, exactly like `kill -9`),
/// downed nodes restart from their state directories, delayed frames
/// whose time has come are delivered, then every alive node ticks and
/// its outgoing frames are routed through the [`NetFaultPlan`] —
/// delivered, dropped, duplicated, delayed, or processed with the reply
/// lost.
pub struct SimCluster {
    nodes: Vec<Option<ReplicaNode>>,
    setups: Vec<(ReplicaConfig, ServeConfig)>,
    down_until: Vec<u64>,
    plan: NetFaultPlan,
    step: u64,
    frames_sent: u64,
    pending: Vec<DelayedFrame>,
}

impl SimCluster {
    /// Build an `n`-node cluster over the state directories
    /// `dirs[0..n]`, wired with `plan`'s chaos. `serve_for` maps a node
    /// id to its daemon configuration (schema, alpha, state dir).
    pub fn new(
        n: usize,
        serve_for: impl Fn(u32) -> ServeConfig,
        plan: NetFaultPlan,
    ) -> Result<Self, ServeError> {
        plan.validate()?;
        let all: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(n);
        let mut setups = Vec::with_capacity(n);
        for &id in &all {
            let rcfg = ReplicaConfig::new(id, &all);
            let scfg = serve_for(id);
            let (node, _) = ReplicaNode::open(rcfg.clone(), scfg.clone())?;
            nodes.push(Some(node));
            setups.push((rcfg, scfg));
        }
        Ok(Self {
            down_until: vec![0; n],
            nodes,
            setups,
            plan,
            step: 0,
            frames_sent: 0,
            pending: Vec::new(),
        })
    }

    /// The current step number.
    pub fn now(&self) -> u64 {
        self.step
    }

    /// Borrow node `i`, if it is alive.
    pub fn node(&self, i: usize) -> Option<&ReplicaNode> {
        self.nodes.get(i).and_then(Option::as_ref)
    }

    /// Mutably borrow node `i`, if it is alive. The shard-split
    /// coordinator uses this to drive the catch-up protocol against a
    /// donor group's primary directly, outside the stepped tick loop.
    pub fn node_mut(&mut self, i: usize) -> Option<&mut ReplicaNode> {
        self.nodes.get_mut(i).and_then(Option::as_mut)
    }

    /// Indices of the members currently alive.
    pub fn alive(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| i))
            .collect()
    }

    /// Number of member slots (alive or not).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The index of the alive primary with the highest epoch, if any.
    pub fn primary(&self) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i, n)))
            .filter(|(_, n)| n.role() == Role::Primary)
            .max_by_key(|(_, n)| n.epoch())
            .map(|(i, _)| i)
    }

    /// The member a latency-conscious read should land on: the primary
    /// unless its disk has turned chronically slow, else the first alive
    /// member on a healthy disk, else whatever is reachable at all — a
    /// gray-degraded member still *answers*, it just shouldn't be the
    /// first choice.
    pub fn read_target(&self) -> Option<usize> {
        let healthy = |i: &usize| self.node(*i).is_some_and(|n| !n.core().vfs().is_slow());
        self.primary()
            .filter(healthy)
            .or_else(|| self.alive().into_iter().find(healthy))
            .or_else(|| self.primary())
            .or_else(|| self.alive().into_iter().next())
    }

    /// Submit a client chunk to the current primary. Returns the node it
    /// landed on and the assigned sequence, or the node's typed refusal.
    pub fn client_ingest(&mut self, claims: &[ChunkClaim]) -> Result<(usize, u64), ServeError> {
        let Some(i) = self.primary() else {
            return Err(ServeError::NotPrimary { hint: None });
        };
        let Some(node) = self.nodes.get_mut(i).and_then(Option::as_mut) else {
            return Err(ServeError::NotPrimary { hint: None });
        };
        let seq = node.client_ingest(claims)?;
        Ok((i, seq))
    }

    /// Whether chunk `seq` is quorum-committed according to any alive
    /// node (commit knowledge propagates, so the primary learns first).
    pub fn is_committed(&self, seq: u64) -> bool {
        self.nodes.iter().flatten().any(|n| n.is_committed(seq))
    }

    /// Advance one step: kills, restarts, then a full tick-and-route
    /// round for every alive node (in node-id order — determinism).
    pub fn step(&mut self) -> Result<(), ServeError> {
        self.step += 1;
        let now = self.step;

        for node in self.plan.kills_at(now) {
            let i = node as usize;
            if let (Some(slot), Some(down)) = (self.nodes.get_mut(i), self.down_until.get_mut(i)) {
                if slot.take().is_some() {
                    // dropped without snapshot_now(): a crash, not a shutdown
                    *down = now + self.plan.restart_after;
                }
            }
        }
        for ((slot, down), (rcfg, scfg)) in self
            .nodes
            .iter_mut()
            .zip(self.down_until.iter_mut())
            .zip(self.setups.iter())
        {
            if slot.is_none() && *down != 0 && now >= *down {
                let (node, _) = ReplicaNode::open(rcfg.clone(), scfg.clone())?;
                *slot = Some(node);
                *down = 0;
            }
        }

        self.deliver_due(now)?;

        for i in 0..self.nodes.len() {
            let Some(mut sender) = self.nodes.get_mut(i).and_then(Option::take) else {
                continue;
            };
            let frames = sender.tick(now)?;
            for (dest, req) in frames {
                self.route(&mut sender, dest, &req, now)?;
            }
            if let Some(slot) = self.nodes.get_mut(i) {
                *slot = Some(sender);
            }
        }
        Ok(())
    }

    /// Deliver every pending delayed frame whose time has come, in the
    /// order it was queued (deterministic). The reply goes back to
    /// whatever node currently holds the sender's id — it may have
    /// crashed and restarted since the frame was sent, exactly as a real
    /// late packet would find it.
    fn deliver_due(&mut self, now: u64) -> Result<(), ServeError> {
        let mut due = Vec::new();
        let mut still_pending = Vec::new();
        for f in self.pending.drain(..) {
            if f.deliver_at <= now {
                due.push(f);
            } else {
                still_pending.push(f);
            }
        }
        self.pending = still_pending;
        for f in due {
            let resp = {
                let Some(receiver) = self.nodes.get_mut(f.dest as usize).and_then(Option::as_mut)
                else {
                    continue; // dead peer: the late frame hits silence
                };
                receiver.handle(f.from, &f.req, now)
            };
            if !f.drop_reply {
                if let Some(sender) = self.nodes.get_mut(f.from as usize).and_then(Option::as_mut) {
                    sender.on_reply(f.dest, &resp, now)?;
                }
            }
        }
        Ok(())
    }

    fn route(
        &mut self,
        sender: &mut ReplicaNode,
        dest: u32,
        req: &crate::proto::Request,
        now: u64,
    ) -> Result<(), ServeError> {
        self.frames_sent += 1;
        let fate = self
            .plan
            .link_fate(sender.node_id(), dest, now, self.frames_sent);
        let deliveries = match fate {
            LinkFate::Drop => return Ok(()),
            LinkFate::Deliver | LinkFate::DropReply => 1,
            LinkFate::Duplicate => 2,
        };
        let delay = self
            .plan
            .frame_delay(sender.node_id(), dest, now, self.frames_sent);
        if delay > 0 {
            // gray failure: the frame is in flight, just slow. Queue each
            // copy for a later step; the sender moves on without waiting.
            for _ in 0..deliveries {
                self.pending.push(DelayedFrame {
                    deliver_at: now + delay,
                    from: sender.node_id(),
                    dest,
                    req: req.clone(),
                    drop_reply: fate == LinkFate::DropReply,
                });
            }
            return Ok(());
        }
        for _ in 0..deliveries {
            let Some(receiver) = self.nodes.get_mut(dest as usize).and_then(Option::as_mut) else {
                return Ok(()); // dead (or unknown) peer: silence
            };
            let resp = receiver.handle(sender.node_id(), req, now);
            if fate != LinkFate::DropReply {
                sender.on_reply(dest, &resp, now)?;
            }
        }
        Ok(())
    }

    /// Run steps until every alive node reports the same folded state
    /// digest (and at least `min_steps` have run), or panic after
    /// `max_steps`. Returns the converged digest.
    pub fn settle(&mut self, min_steps: u64, max_steps: u64) -> Result<u64, ServeError> {
        let target = self.step + max_steps;
        let floor = self.step + min_steps;
        loop {
            self.step()?;
            if self.step >= floor {
                let digests: Vec<u64> = self
                    .nodes
                    .iter()
                    .flatten()
                    .map(|n| n.state_digest())
                    .collect();
                let all_alive = self.nodes.iter().all(Option::is_some);
                if let (true, Some((&first, rest))) = (all_alive, digests.split_first()) {
                    if rest.iter().all(|&d| d == first) {
                        // converged *and* drained: every durable record folded
                        let drained = self
                            .nodes
                            .iter()
                            .flatten()
                            .all(|n| n.commit() == n.durable());
                        if drained {
                            return Ok(first);
                        }
                    }
                }
            }
            assert!(
                self.step < target,
                "cluster failed to settle within {max_steps} steps"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crh_core::schema::Schema;
    use crh_core::value::Value;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_continuous("temperature");
        s.add_continuous("humidity");
        s
    }

    fn chunk(step: u64) -> Vec<ChunkClaim> {
        (0..3u32)
            .map(|s| ChunkClaim {
                object: (step % 4) as u32,
                property: s % 2,
                source: s,
                value: Value::Num(5.0 + step as f64 + f64::from(s) * 0.5),
            })
            .collect()
    }

    fn cluster(tag: &str, n: usize, plan: NetFaultPlan) -> SimCluster {
        let base = std::env::temp_dir().join(format!("crh_sim_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let b = base.clone();
        SimCluster::new(
            n,
            move |id| ServeConfig::new(schema(), 0.5, b.join(format!("node{id}"))),
            plan,
        )
        .unwrap()
    }

    #[test]
    fn elect_prefers_newer_epoch_then_longer_log_then_lower_id() {
        let votes: BTreeMap<u32, (u64, u64)> = [(0, (1, 10)), (1, (2, 3)), (2, (1, 50))]
            .into_iter()
            .collect();
        assert_eq!(elect(&votes), Some(1), "newest epoch beats longest log");
        let votes: BTreeMap<u32, (u64, u64)> = [(0, (1, 10)), (1, (1, 12)), (2, (1, 50))]
            .into_iter()
            .collect();
        assert_eq!(elect(&votes), Some(2), "longest log wins within an epoch");
        let votes: BTreeMap<u32, (u64, u64)> = [(2, (1, 10)), (1, (1, 10)), (0, (1, 9))]
            .into_iter()
            .collect();
        assert_eq!(elect(&votes), Some(1), "exact ties break to the lowest id");
        assert_eq!(elect(&BTreeMap::new()), None, "no votes, no winner");
    }

    #[test]
    fn healthy_cluster_elects_and_replicates() {
        let mut c = cluster("healthy", 3, NetFaultPlan::new(1));
        for _ in 0..12 {
            c.step().unwrap();
        }
        let p = c.primary().expect("a primary emerges unprompted");
        let (_, seq) = c.client_ingest(&chunk(0)).unwrap();
        for _ in 0..6 {
            c.step().unwrap();
        }
        assert!(c.is_committed(seq));
        let digest = c.settle(0, 64).unwrap();
        for i in 0..c.len() {
            assert_eq!(c.node(i).unwrap().state_digest(), digest);
        }
        // the follower lag bound is honest: everyone drained, lag 0
        for i in 0..c.len() {
            assert_eq!(c.node(i).unwrap().lag(), 0, "node {i} (primary {p})");
        }
    }

    /// The review-scenario regression: commit on {P, R} at epoch 2 while
    /// S holds only an uncommitted epoch-1 tail, P dies, R crash-restarts,
    /// S campaigns. R's persisted election rank (last folded epoch 2)
    /// must out-rank S's stale tail — a restart that regressed the rank
    /// to zero would let S win and commit conflicting bytes at an
    /// already-folded sequence.
    #[test]
    fn restarted_voter_still_outranks_a_stale_uncommitted_tail() {
        use crate::core::encode_chunk;
        use crate::proto::{Request, Response};

        let base = std::env::temp_dir().join(format!("crh_sim_rankreg_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let all = [0u32, 1, 2];
        let open = |id: u32| {
            ReplicaNode::open(
                ReplicaConfig::new(id, &all),
                ServeConfig::new(schema(), 0.5, base.join(format!("node{id}"))),
            )
            .unwrap()
            .0
        };
        let mut r = open(1);
        let mut s = open(2);

        // epoch-1 primary P ships a record to S only; it never commits
        let stale = encode_chunk(0, &chunk(7));
        s.handle(
            0,
            &Request::Replicate {
                token: 0,
                epoch: 1,
                node: 0,
                seq: 0,
                commit: 0,
                record: stale,
            },
            1,
        );
        assert_eq!((s.last_epoch(), s.durable()), (1, 1));

        // P is re-elected at epoch 2 and commits different bytes with R
        let fresh = encode_chunk(0, &chunk(8));
        r.handle(
            0,
            &Request::Replicate {
                token: 0,
                epoch: 2,
                node: 0,
                seq: 0,
                commit: 1,
                record: fresh,
            },
            2,
        );
        assert_eq!(r.core().chunks_seen(), 1, "R folded the committed record");

        // P dies; R crash-restarts (no clean shutdown)
        drop(r);
        let mut r = open(1);
        assert_eq!(
            (r.last_epoch(), r.durable()),
            (2, 1),
            "the election rank survives the restart"
        );

        // S campaigns. Its first proposal (epoch 2) is refused — R
        // already adopted epoch 2 — and the retry at epoch 3 collects
        // R's honest rank, which must beat S's stale tail.
        let mut now = 100;
        loop {
            let frames = s.tick(now).unwrap();
            for (dest, req) in frames {
                if dest == 1 {
                    let resp = r.handle(2, &req, now);
                    if let Response::ReplAck { .. } = resp {
                        s.on_reply(1, &resp, now).unwrap();
                        assert_ne!(
                            s.role(),
                            Role::Primary,
                            "a stale uncommitted tail must not win away committed writes"
                        );
                        // the committed bytes are still the folded truth
                        assert_eq!(r.core().chunks_seen(), 1);
                        std::fs::remove_dir_all(&base).ok();
                        return;
                    }
                    s.on_reply(1, &resp, now).unwrap();
                }
            }
            now += 50;
            assert!(now < 2_000, "S never collected R's vote");
        }
    }

    #[test]
    fn cluster_converges_with_a_chronic_straggler_and_random_delays() {
        // node 2 lags every frame by 6 steps and the rest of the fabric
        // jitters; commits must still land (at quorum 2-of-3, without
        // waiting on the straggler) and the cluster must converge.
        let plan = NetFaultPlan::new(5).straggler(2, 6).delays(0.2, 1, 3);
        let mut c = cluster("straggler", 3, plan);
        for _ in 0..16 {
            c.step().unwrap();
        }
        c.primary().expect("a primary emerges despite the jitter");
        let (_, seq) = c.client_ingest(&chunk(0)).unwrap();
        let mut committed_at = None;
        for s in 0..32 {
            c.step().unwrap();
            if c.is_committed(seq) {
                committed_at = Some(s);
                break;
            }
        }
        let waited = committed_at.expect("commit never arrived");
        assert!(
            waited < 6,
            "ack serialized behind the 6-step straggler (took {waited} steps)"
        );
        c.settle(0, 256).unwrap();
    }

    #[test]
    fn killing_the_primary_promotes_a_survivor() {
        let mut c = cluster("failover", 3, NetFaultPlan::new(2).restart_after(1_000_000));
        for _ in 0..12 {
            c.step().unwrap();
        }
        let old = c.primary().expect("initial primary");
        let old_epoch = c.node(old).unwrap().epoch();
        // feed some committed data first
        let (_, seq) = c.client_ingest(&chunk(0)).unwrap();
        for _ in 0..6 {
            c.step().unwrap();
        }
        assert!(c.is_committed(seq));

        // kill it (restart far beyond the test horizon)
        c.plan = std::mem::take(&mut c.plan).kill(c.now() + 1, old as u32);
        let mut promoted = None;
        for _ in 0..64 {
            c.step().unwrap();
            if let Some(p) = c.primary() {
                if p != old {
                    promoted = Some(p);
                    break;
                }
            }
        }
        let p = promoted.expect("a survivor takes over");
        assert!(c.node(p).unwrap().epoch() > old_epoch);
        // and the committed chunk survived the failover
        assert!(c.node(p).unwrap().is_committed(seq));
        // new primary accepts writes
        let (_, seq2) = c.client_ingest(&chunk(1)).unwrap();
        for _ in 0..8 {
            c.step().unwrap();
        }
        assert!(c.is_committed(seq2));
    }
}
