//! Deterministic fault injection for the serving layer.
//!
//! The MapReduce engine proves its fault tolerance with a seeded
//! `FaultPlan` resolved as a pure function of the task coordinates
//! (`crh_mapreduce::faults`); the daemon extends the same design to its
//! durability pipeline. A [`ServeFaultPlan`] assigns each ingest attempt a fate —
//! torn WAL write (`kill -9` between append and fsync), crash after the
//! fsync but before the fold, crash after the fold but before the ack,
//! crash during the snapshot (before or after the atomic rename), a
//! stalled fold (for overload tests), or a mid-solve kill — derived from
//! `(seed, chunk, attempt)` via [`crh_core::rng::hash_rng`]. The fate is
//! independent of timing and thread scheduling, so a chaos run replays
//! exactly and the recovery-equivalence suite can assert bit-identical
//! state.
//!
//! `max_faults` bounds the chaos (a global budget shared across clones,
//! surviving daemon restarts), guaranteeing every chunk is eventually
//! accepted within a finite retry budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crh_core::rng::{hash_rng, Rng};

use crate::error::ServeError;

/// `Ok` iff `p` is a usable probability: finite and within `[0, 1]`.
fn check_prob(name: &str, p: f64) -> Result<(), ServeError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(ServeError::InvalidFaultPlan(format!(
            "{name} = {p} is not a probability in [0, 1]"
        )))
    }
}

/// Where in the pipeline an injected crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePoint {
    /// Mid-append: the WAL record is torn (a prefix of its bytes reached
    /// the disk, fsync never happened).
    WalAppend,
    /// After the WAL append + fsync, before the fold: the chunk is
    /// durable but unapplied and unacknowledged.
    BeforeFold,
    /// After the fold, before the acknowledgement: the chunk is durable
    /// and applied in memory, but the ack never reaches the client.
    AfterFold,
    /// During the snapshot, before the atomic rename: the temp file is
    /// abandoned, the previous snapshot and full WAL survive.
    SnapshotWrite,
    /// After the snapshot rename, before the WAL truncation: the new
    /// snapshot and a stale WAL coexist (replay must skip applied seqs).
    SnapshotTruncate,
    /// During a batch solve (read-only; recovery is trivial but the
    /// daemon must still come back clean).
    Solve,
    /// Mid-write inside the storage layer: a seeded
    /// [`DiskFaultPlan`](crate::vfs::DiskFaultPlan) tore the write (a
    /// prefix of the bytes reached the disk) and the process is treated
    /// as crashed at that instant.
    DiskWrite,
}

/// The resolved fate of one ingest attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeFate {
    /// Run normally.
    Healthy,
    /// Crash mid-append, keeping this fraction of the record's bytes.
    TornWal {
        /// Fraction of the record that reaches the disk, in `(0, 1)`.
        keep_frac: f64,
    },
    /// Crash at [`ServePoint::BeforeFold`].
    CrashBeforeFold,
    /// Crash at [`ServePoint::AfterFold`].
    CrashAfterFold,
    /// Crash at [`ServePoint::SnapshotWrite`].
    CrashDuringSnapshot,
    /// Crash at [`ServePoint::SnapshotTruncate`].
    CrashAfterSnapshotRename,
    /// Stall the fold for this long before completing normally.
    StallFold(Duration),
}

/// A seeded chaos schedule for the daemon. Probabilities are
/// per-ingest-attempt and mutually exclusive (sum must be ≤ 1).
#[derive(Debug, Clone)]
pub struct ServeFaultPlan {
    /// Seed from which every fate is derived.
    pub seed: u64,
    /// Probability of a torn WAL write.
    pub torn_wal_prob: f64,
    /// Probability of a crash between fsync and fold.
    pub before_fold_prob: f64,
    /// Probability of a crash between fold and ack.
    pub after_fold_prob: f64,
    /// Probability of a crash before the snapshot rename.
    pub snapshot_write_prob: f64,
    /// Probability of a crash after the rename, before WAL truncation.
    pub snapshot_truncate_prob: f64,
    /// Probability of a stalled fold.
    pub stall_prob: f64,
    /// How long a stalled fold sleeps.
    pub stall_for: Duration,
    /// Total faults the injector may fire before going permanently
    /// healthy (shared across clones and daemon restarts).
    pub max_faults: u64,
}

impl ServeFaultPlan {
    /// A plan with the given seed and no faults; enable classes with the
    /// builder methods.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            torn_wal_prob: 0.0,
            before_fold_prob: 0.0,
            after_fold_prob: 0.0,
            snapshot_write_prob: 0.0,
            snapshot_truncate_prob: 0.0,
            stall_prob: 0.0,
            stall_for: Duration::from_millis(20),
            max_faults: 16,
        }
    }

    /// Set the torn-WAL-write probability.
    pub fn torn_wal(mut self, p: f64) -> Self {
        self.torn_wal_prob = p;
        self
    }

    /// Set the crash-before-fold probability.
    pub fn before_fold(mut self, p: f64) -> Self {
        self.before_fold_prob = p;
        self
    }

    /// Set the crash-after-fold probability.
    pub fn after_fold(mut self, p: f64) -> Self {
        self.after_fold_prob = p;
        self
    }

    /// Set the crash-during-snapshot probability (split evenly between
    /// before-rename and after-rename).
    pub fn during_snapshot(mut self, p: f64) -> Self {
        self.snapshot_write_prob = p / 2.0;
        self.snapshot_truncate_prob = p / 2.0;
        self
    }

    /// Set the stalled-fold probability and duration.
    pub fn stalls(mut self, p: f64, stall_for: Duration) -> Self {
        self.stall_prob = p;
        self.stall_for = stall_for;
        self
    }

    /// Cap the total number of injected faults.
    pub fn max_faults(mut self, n: u64) -> Self {
        self.max_faults = n;
        self
    }

    fn total_prob(&self) -> f64 {
        self.torn_wal_prob
            + self.before_fold_prob
            + self.after_fold_prob
            + self.snapshot_write_prob
            + self.snapshot_truncate_prob
            + self.stall_prob
    }

    /// Reject out-of-range probabilities and overfull plans with a typed
    /// error. The builder setters stay infallible (they are chained in
    /// test literals); this runs when the plan is installed in an
    /// injector, so a bad probability cannot silently skew seeded fates.
    pub fn validate(&self) -> Result<(), ServeError> {
        check_prob("torn_wal_prob", self.torn_wal_prob)?;
        check_prob("before_fold_prob", self.before_fold_prob)?;
        check_prob("after_fold_prob", self.after_fold_prob)?;
        check_prob("snapshot_write_prob", self.snapshot_write_prob)?;
        check_prob("snapshot_truncate_prob", self.snapshot_truncate_prob)?;
        check_prob("stall_prob", self.stall_prob)?;
        let total = self.total_prob();
        if total > 1.0 + 1e-12 {
            return Err(ServeError::InvalidFaultPlan(format!(
                "fault probabilities must sum to <= 1 (got {total})"
            )));
        }
        Ok(())
    }
}

/// Resolves attempt fates from a [`ServeFaultPlan`].
///
/// Cloning shares the fault budget, so one injector threaded through a
/// crash/recover/retry loop keeps a single global count of fired faults
/// — recovery cannot reset the chaos budget.
#[derive(Debug, Clone, Default)]
pub struct ServeFaultInjector {
    plan: Option<Arc<ServeFaultPlan>>,
    fired: Arc<AtomicU64>,
}

impl ServeFaultInjector {
    /// Wrap a plan.
    ///
    /// # Panics
    /// Panics if the plan's probabilities sum past 1 or any probability
    /// falls outside `[0, 1]`. Use [`Self::try_new`] for a typed error.
    pub fn new(plan: ServeFaultPlan) -> Self {
        assert!(
            plan.total_prob() <= 1.0 + 1e-12,
            "fault probabilities must sum to <= 1"
        );
        assert!(
            plan.validate().is_ok(),
            "invalid fault plan: {:?}",
            plan.validate().err()
        );
        Self {
            plan: Some(Arc::new(plan)),
            fired: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Wrap a plan, reporting an invalid one as a typed error instead of
    /// panicking.
    pub fn try_new(plan: ServeFaultPlan) -> Result<Self, ServeError> {
        plan.validate()?;
        Ok(Self {
            plan: Some(Arc::new(plan)),
            fired: Arc::new(AtomicU64::new(0)),
        })
    }

    /// An injector that never injects (the production default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Faults fired so far across all clones.
    pub fn faults_fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// The fate of ingest `attempt` of chunk `chunk`.
    ///
    /// Pure in `(seed, chunk, attempt)` apart from the global fault
    /// budget: once `max_faults` faults have fired, every further attempt
    /// is healthy, guaranteeing forward progress.
    pub fn fate(&self, chunk: u64, attempt: u64) -> ServeFate {
        let Some(p) = &self.plan else {
            return ServeFate::Healthy;
        };
        if self.fired.load(Ordering::SeqCst) >= p.max_faults {
            return ServeFate::Healthy;
        }
        let mut rng = hash_rng(p.seed, &[chunk, attempt]);
        let x: f64 = rng.random();
        let mut acc = 0.0;
        let fate = {
            acc += p.torn_wal_prob;
            if x < acc {
                // keep a deterministic, strictly-partial prefix
                let keep_frac: f64 = 0.05 + 0.9 * rng.random::<f64>();
                ServeFate::TornWal { keep_frac }
            } else {
                acc += p.before_fold_prob;
                if x < acc {
                    ServeFate::CrashBeforeFold
                } else {
                    acc += p.after_fold_prob;
                    if x < acc {
                        ServeFate::CrashAfterFold
                    } else {
                        acc += p.snapshot_write_prob;
                        if x < acc {
                            ServeFate::CrashDuringSnapshot
                        } else {
                            acc += p.snapshot_truncate_prob;
                            if x < acc {
                                ServeFate::CrashAfterSnapshotRename
                            } else {
                                acc += p.stall_prob;
                                if x < acc {
                                    ServeFate::StallFold(p.stall_for)
                                } else {
                                    ServeFate::Healthy
                                }
                            }
                        }
                    }
                }
            }
        };
        if fate != ServeFate::Healthy {
            // charge the budget; re-check in case a racing clone spent it
            if self.fired.fetch_add(1, Ordering::SeqCst) >= p.max_faults {
                return ServeFate::Healthy;
            }
        }
        fate
    }
}

/// The resolved fate of one replication frame on one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Request and reply both arrive.
    Deliver,
    /// The request never arrives (the sender sees silence).
    Drop,
    /// The request arrives and is processed, but the reply is lost — the
    /// receiver's state advanced while the sender saw a timeout, the
    /// classic at-least-once ambiguity.
    DropReply,
    /// The request arrives twice (network-level duplication); both copies
    /// are processed, both replies return.
    Duplicate,
}

/// A scheduled partition: between `from_step` (inclusive) and `to_step`
/// (exclusive), links crossing the node-set boundary are cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First simulation step the partition is active.
    pub from_step: u64,
    /// First step after healing.
    pub to_step: u64,
    /// Bitmask of node ids on side A (bit `n` set ⇒ node `n` in A).
    pub side_a: u64,
    /// `false`: a full partition (nothing crosses either way).
    /// `true`: one-way — frames from side A reach side B, but nothing
    /// returns (requests from B and all replies to A are dropped), the
    /// asymmetric failure that breaks naive heartbeat schemes.
    pub one_way: bool,
}

impl PartitionWindow {
    fn severs(&self, from: u32, to: u32, step: u64) -> bool {
        if step < self.from_step || step >= self.to_step {
            return false;
        }
        let a = |n: u32| self.side_a >> n & 1 == 1;
        if a(from) == a(to) {
            return false;
        }
        // one-way: only B→A requests are cut here; the A→B *reply* loss
        // is resolved by the caller asking for the reply fate separately
        !self.one_way || !a(from)
    }

    fn severs_reply(&self, from: u32, to: u32, step: u64) -> bool {
        if step < self.from_step || step >= self.to_step {
            return false;
        }
        let a = |n: u32| self.side_a >> n & 1 == 1;
        // a reply travels to→from; under one-way A→B delivery, replies
        // from B never make it back into A
        a(from) != a(to) && self.one_way && a(from)
    }
}

/// Domain tag separating the frame-*delay* draw from the frame-*fate*
/// draw. The fate draw keys on `(from, to, step, frame)` directly, so a
/// delay draw over the same coordinates must lead with a distinct tag —
/// otherwise configuring delays would silently reshuffle every existing
/// seeded drop/dup schedule and no prior chaos run would replay.
const DELAY_DOMAIN: u64 = 0xDE1A;

/// A seeded chaos schedule for the replication fabric: random link-level
/// drops/duplications, seeded frame delays, chronic per-peer stragglers,
/// scheduled (possibly one-way) partitions, and primary kills. Fates are
/// pure in `(seed, from, to, step, frame)`, so a chaotic cluster run
/// replays exactly.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Seed from which every link fate is derived.
    pub seed: u64,
    /// Probability a frame is dropped outright.
    pub drop_prob: f64,
    /// Probability a frame is processed but its reply is lost.
    pub drop_reply_prob: f64,
    /// Probability a frame is delivered twice.
    pub dup_prob: f64,
    /// Probability a delivered frame is delayed (gray failure: the link
    /// is congested, not cut). Drawn from a separate rng domain, so
    /// enabling delays never perturbs the drop/dup schedule.
    pub delay_prob: f64,
    /// Inclusive `(min, max)` extra steps a delayed frame waits before
    /// delivery.
    pub delay_steps: (u64, u64),
    /// `(node, extra_steps)`: chronic stragglers. Every frame *to or
    /// from* the node is delayed by at least `extra_steps` — the
    /// one-slow-replica failure mode, per peer and per direction.
    pub stragglers: Vec<(u32, u64)>,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionWindow>,
    /// `(step, node)` pairs: kill `node` at the start of `step`.
    pub kills: Vec<(u64, u32)>,
    /// Steps a killed node stays down before restarting from its disk.
    pub restart_after: u64,
}

impl NetFaultPlan {
    /// A plan with the given seed and no faults.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            restart_after: 4,
            ..Self::default()
        }
    }

    /// Set the random frame-drop probability.
    pub fn drops(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Set the lost-reply probability.
    pub fn dropped_replies(mut self, p: f64) -> Self {
        self.drop_reply_prob = p;
        self
    }

    /// Set the frame-duplication probability.
    pub fn dups(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Add a partition window.
    pub fn partition(mut self, w: PartitionWindow) -> Self {
        self.partitions.push(w);
        self
    }

    /// Kill `node` at `step` (it restarts `restart_after` steps later).
    pub fn kill(mut self, step: u64, node: u32) -> Self {
        self.kills.push((step, node));
        self
    }

    /// Set how long killed nodes stay down.
    pub fn restart_after(mut self, steps: u64) -> Self {
        self.restart_after = steps;
        self
    }

    /// Delay a `p` fraction of delivered frames by a seeded draw from
    /// `min..=max` extra steps.
    pub fn delays(mut self, p: f64, min: u64, max: u64) -> Self {
        self.delay_prob = p;
        self.delay_steps = (min, max);
        self
    }

    /// Mark `node` as a chronic straggler: every frame to or from it is
    /// delayed by at least `extra` steps.
    pub fn straggler(mut self, node: u32, extra: u64) -> Self {
        self.stragglers.push((node, extra));
        self
    }

    /// Extra steps the `frame`-th frame sent `from → to` during `step`
    /// waits before delivery. Pure in its arguments, and drawn from a
    /// domain separate from [`link_fate`](Self::link_fate)'s, so a plan
    /// that adds delays replays the exact drop/dup schedule it had
    /// without them.
    pub fn frame_delay(&self, from: u32, to: u32, step: u64, frame: u64) -> u64 {
        let mut delay = 0u64;
        for &(node, extra) in &self.stragglers {
            if node == from || node == to {
                delay = delay.max(extra);
            }
        }
        if self.delay_prob > 0.0 {
            let mut rng = hash_rng(
                self.seed,
                &[DELAY_DOMAIN, u64::from(from), u64::from(to), step, frame],
            );
            let x: f64 = rng.random();
            if x < self.delay_prob {
                let (lo, hi) = self.delay_steps;
                let span = hi.saturating_sub(lo).saturating_add(1);
                delay = delay.max(lo + rng.next_u64() % span);
            }
        }
        delay
    }

    /// The fate of the `frame`-th frame sent `from → to` during `step`.
    /// Pure in its arguments: replaying the same plan yields the same
    /// chaos, byte for byte.
    pub fn link_fate(&self, from: u32, to: u32, step: u64, frame: u64) -> LinkFate {
        for w in &self.partitions {
            if w.severs(from, to, step) {
                return LinkFate::Drop;
            }
            if w.severs_reply(from, to, step) {
                return LinkFate::DropReply;
            }
        }
        let mut rng = hash_rng(self.seed, &[u64::from(from), u64::from(to), step, frame]);
        let x: f64 = rng.random();
        if x < self.drop_prob {
            LinkFate::Drop
        } else if x < self.drop_prob + self.drop_reply_prob {
            LinkFate::DropReply
        } else if x < self.drop_prob + self.drop_reply_prob + self.dup_prob {
            LinkFate::Duplicate
        } else {
            LinkFate::Deliver
        }
    }

    /// Nodes scheduled to die at the start of `step`.
    pub fn kills_at(&self, step: u64) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .kills
            .iter()
            .filter(|(s, _)| *s == step)
            .map(|&(_, n)| n)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Reject out-of-range or jointly-overfull link probabilities with a
    /// typed error. [`SimCluster`](crate::failover::SimCluster) runs this
    /// on construction, so a chaos config cannot silently skew the seeded
    /// drop/dup split (the three classes share one uniform draw).
    pub fn validate(&self) -> Result<(), ServeError> {
        check_prob("drop_prob", self.drop_prob)?;
        check_prob("drop_reply_prob", self.drop_reply_prob)?;
        check_prob("dup_prob", self.dup_prob)?;
        check_prob("delay_prob", self.delay_prob)?;
        let total = self.drop_prob + self.drop_reply_prob + self.dup_prob;
        if total > 1.0 + 1e-12 {
            return Err(ServeError::InvalidFaultPlan(format!(
                "link fault probabilities must sum to <= 1 (got {total})"
            )));
        }
        let (lo, hi) = self.delay_steps;
        if lo > hi {
            return Err(ServeError::InvalidFaultPlan(format!(
                "delay_steps min {lo} exceeds max {hi}"
            )));
        }
        if self.delay_prob > 0.0 && hi == 0 {
            return Err(ServeError::InvalidFaultPlan(
                "delay_prob set but delay_steps max is 0 (no-op delay)".into(),
            ));
        }
        Ok(())
    }
}

/// Where a seeded `kill -9` fires inside a shard split. The split
/// coordinator checks the plan at each stage boundary and abandons the
/// process there, exactly as a real crash would; recovery then reloads
/// the durable shard-map store and must land on exactly the pre- or
/// post-cutover topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCrash {
    /// Before any staging I/O: nothing moved, map untouched.
    PreStage,
    /// After the donor snapshot is staged on some (not all) new-group
    /// members, mid catch-up: staged dirs are partial, map untouched.
    MidCatchUp,
    /// After the cutover record reached the durable shard-map store but
    /// before the coordinator adopted it in memory: the split is
    /// complete on disk.
    PostCutoverRecord,
    /// After adoption, before the caller sees the acknowledgement: the
    /// classic lost-ack ambiguity, resolved post-cutover on recovery.
    PreAck,
}

/// A seeded chaos schedule for a *sharded* topology: one link-fault
/// template stamped out per shard group (re-seeded per group so chaos
/// differs across groups but stays pure in `(seed, shard)`), per-group
/// partition windows, timed kills of single members or a shard's whole
/// quorum, and an optional crash point inside a split.
#[derive(Debug, Clone, Default)]
pub struct ShardFaultPlan {
    /// Seed every group's link fates are derived from.
    pub seed: u64,
    /// Per-group random frame-drop probability.
    pub drop_prob: f64,
    /// Per-group lost-reply probability.
    pub drop_reply_prob: f64,
    /// Per-group frame-duplication probability.
    pub dup_prob: f64,
    /// Per-group frame-delay probability (seeded independently per
    /// group, like the drop/dup probabilities).
    pub delay_prob: f64,
    /// Inclusive `(min, max)` extra steps a delayed frame waits.
    pub delay_steps: (u64, u64),
    /// `(shard, node, extra_steps)`: chronic stragglers inside a group.
    pub group_stragglers: Vec<(u32, u32, u64)>,
    /// `(shard, window)`: a partition inside that shard's group.
    pub group_partitions: Vec<(u32, PartitionWindow)>,
    /// `(step, shard, node)`: kill one member of `shard` at `step`.
    pub group_kills: Vec<(u64, u32, u32)>,
    /// `(step, shard)`: kill *every* member of `shard` at `step` — the
    /// whole-quorum outage the degraded-read contract is tested under.
    pub quorum_kills: Vec<(u64, u32)>,
    /// Steps a killed node stays down before restarting from its disk.
    pub restart_after: u64,
    /// Crash the split coordinator at this stage boundary.
    pub split_crash: Option<SplitCrash>,
}

impl ShardFaultPlan {
    /// A plan with the given seed and no faults.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            restart_after: 4,
            ..Self::default()
        }
    }

    /// Set the per-group random frame-drop probability.
    pub fn drops(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Set the per-group lost-reply probability.
    pub fn dropped_replies(mut self, p: f64) -> Self {
        self.drop_reply_prob = p;
        self
    }

    /// Set the per-group frame-duplication probability.
    pub fn dups(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Delay a `p` fraction of every group's frames by `min..=max` steps.
    pub fn delays(mut self, p: f64, min: u64, max: u64) -> Self {
        self.delay_prob = p;
        self.delay_steps = (min, max);
        self
    }

    /// Mark `node` of `shard` as a chronic straggler (`extra` steps).
    pub fn group_straggler(mut self, shard: u32, node: u32, extra: u64) -> Self {
        self.group_stragglers.push((shard, node, extra));
        self
    }

    /// Add a partition window inside `shard`'s group.
    pub fn group_partition(mut self, shard: u32, w: PartitionWindow) -> Self {
        self.group_partitions.push((shard, w));
        self
    }

    /// Kill one member of `shard` at `step`.
    pub fn kill_node(mut self, step: u64, shard: u32, node: u32) -> Self {
        self.group_kills.push((step, shard, node));
        self
    }

    /// Kill every member of `shard` at `step`.
    pub fn kill_quorum(mut self, step: u64, shard: u32) -> Self {
        self.quorum_kills.push((step, shard));
        self
    }

    /// Set how long killed nodes stay down.
    pub fn restart_after(mut self, steps: u64) -> Self {
        self.restart_after = steps;
        self
    }

    /// Crash the split coordinator at `point`.
    pub fn split_crash(mut self, point: SplitCrash) -> Self {
        self.split_crash = Some(point);
        self
    }

    /// Materialise the per-group [`NetFaultPlan`] for `shard`, a group of
    /// `replicas` members. Pure in `(seed, shard)`: the same sharded plan
    /// always yields the same per-group chaos, and two groups under one
    /// plan draw independent fates.
    pub fn plan_for(&self, shard: u32, replicas: usize) -> Result<NetFaultPlan, ServeError> {
        let mut rng = hash_rng(self.seed, &[0x5A4D, u64::from(shard)]);
        let mut p = NetFaultPlan::new(rng.next_u64())
            .drops(self.drop_prob)
            .dropped_replies(self.drop_reply_prob)
            .dups(self.dup_prob)
            .restart_after(self.restart_after);
        if self.delay_prob > 0.0 {
            p = p.delays(self.delay_prob, self.delay_steps.0, self.delay_steps.1);
        }
        for &(s, node, extra) in &self.group_stragglers {
            if s == shard {
                p = p.straggler(node, extra);
            }
        }
        for (s, w) in &self.group_partitions {
            if *s == shard {
                p = p.partition(*w);
            }
        }
        for &(step, s, node) in &self.group_kills {
            if s == shard {
                p = p.kill(step, node);
            }
        }
        for &(step, s) in &self.quorum_kills {
            if s == shard {
                for node in 0..replicas as u32 {
                    p = p.kill(step, node);
                }
            }
        }
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic(seed: u64) -> ServeFaultInjector {
        ServeFaultInjector::new(
            ServeFaultPlan::new(seed)
                .torn_wal(0.2)
                .before_fold(0.2)
                .after_fold(0.2)
                .during_snapshot(0.2)
                .max_faults(u64::MAX),
        )
    }

    #[test]
    fn fates_are_deterministic() {
        let a = chaotic(42);
        let b = chaotic(42);
        for chunk in 0..100u64 {
            for attempt in 0..3 {
                assert_eq!(a.fate(chunk, attempt), b.fate(chunk, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = chaotic(1);
        let b = chaotic(2);
        let run =
            |inj: &ServeFaultInjector| (0..200u64).map(|c| inj.fate(c, 0)).collect::<Vec<_>>();
        assert_ne!(run(&a), run(&b));
    }

    #[test]
    fn budget_caps_total_faults() {
        let inj = ServeFaultInjector::new(ServeFaultPlan::new(3).torn_wal(1.0).max_faults(5));
        let clone = inj.clone();
        let mut faults = 0;
        for c in 0..100u64 {
            let who = if c % 2 == 0 { &inj } else { &clone };
            if who.fate(c, 0) != ServeFate::Healthy {
                faults += 1;
            }
        }
        assert_eq!(faults, 5, "budget shared across clones");
        assert_eq!(inj.faults_fired(), 5);
    }

    #[test]
    fn disabled_injector_is_always_healthy() {
        let inj = ServeFaultInjector::disabled();
        for c in 0..50u64 {
            assert_eq!(inj.fate(c, 0), ServeFate::Healthy);
        }
        assert_eq!(inj.faults_fired(), 0);
    }

    #[test]
    fn torn_fraction_is_strictly_partial() {
        let inj =
            ServeFaultInjector::new(ServeFaultPlan::new(7).torn_wal(1.0).max_faults(u64::MAX));
        for c in 0..500u64 {
            if let ServeFate::TornWal { keep_frac } = inj.fate(c, 0) {
                assert!(keep_frac > 0.0 && keep_frac < 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to <= 1")]
    fn overfull_probabilities_rejected() {
        ServeFaultInjector::new(ServeFaultPlan::new(0).torn_wal(0.7).before_fold(0.7));
    }

    #[test]
    fn link_fates_are_deterministic_and_seed_sensitive() {
        let a = NetFaultPlan::new(11)
            .drops(0.2)
            .dropped_replies(0.1)
            .dups(0.1);
        let b = NetFaultPlan::new(11)
            .drops(0.2)
            .dropped_replies(0.1)
            .dups(0.1);
        let c = NetFaultPlan::new(12)
            .drops(0.2)
            .dropped_replies(0.1)
            .dups(0.1);
        let run = |p: &NetFaultPlan| {
            let mut v = Vec::new();
            for step in 0..40 {
                for from in 0..3u32 {
                    for to in 0..3u32 {
                        v.push(p.link_fate(from, to, step, 0));
                    }
                }
            }
            v
        };
        assert_eq!(run(&a), run(&b));
        assert_ne!(run(&a), run(&c));
    }

    #[test]
    fn frame_delays_are_deterministic_and_do_not_perturb_link_fates() {
        let bare = NetFaultPlan::new(11)
            .drops(0.2)
            .dropped_replies(0.1)
            .dups(0.1);
        let delayed = bare.clone().delays(0.5, 1, 4);
        let run = |p: &NetFaultPlan| {
            let mut v = Vec::new();
            for step in 0..40 {
                for from in 0..3u32 {
                    for to in 0..3u32 {
                        v.push(p.link_fate(from, to, step, 0));
                    }
                }
            }
            v
        };
        // the delay draw lives in its own rng domain: adding delays must
        // not reshuffle the seeded drop/dup schedule
        assert_eq!(run(&bare), run(&delayed));
        // delays themselves replay exactly and stay in range
        let mut any = false;
        for step in 0..40 {
            for from in 0..3u32 {
                for to in 0..3u32 {
                    let d = delayed.frame_delay(from, to, step, 0);
                    assert_eq!(d, delayed.frame_delay(from, to, step, 0));
                    assert!(d <= 4, "delay {d} above configured max");
                    any |= d > 0;
                }
            }
        }
        assert!(any, "p=0.5 over 360 frames produced no delay");
        assert_eq!(bare.frame_delay(0, 1, 3, 0), 0);
    }

    #[test]
    fn stragglers_delay_both_directions_and_floor_the_draw() {
        let p = NetFaultPlan::new(7).straggler(2, 10);
        assert_eq!(p.frame_delay(0, 2, 1, 0), 10);
        assert_eq!(p.frame_delay(2, 0, 1, 0), 10);
        assert_eq!(p.frame_delay(0, 1, 1, 0), 0);
        // a seeded draw can only push a straggler's delay further out
        let q = NetFaultPlan::new(7).straggler(2, 10).delays(1.0, 1, 3);
        for frame in 0..20 {
            assert!(q.frame_delay(0, 2, 1, frame) >= 10);
        }
    }

    #[test]
    fn delay_misconfiguration_is_a_typed_error() {
        let e = NetFaultPlan::new(0).delays(0.5, 4, 2).validate();
        assert!(matches!(e, Err(ServeError::InvalidFaultPlan(_))));
        let e = NetFaultPlan::new(0).delays(0.5, 0, 0).validate();
        assert!(matches!(e, Err(ServeError::InvalidFaultPlan(_))));
        let e = NetFaultPlan::new(0).delays(1.5, 1, 2).validate();
        assert!(matches!(e, Err(ServeError::InvalidFaultPlan(_))));
        assert!(NetFaultPlan::new(0).delays(0.5, 1, 4).validate().is_ok());
    }

    #[test]
    fn shard_plan_propagates_delays_per_group() {
        let plan = ShardFaultPlan::new(3)
            .delays(0.25, 1, 2)
            .group_straggler(1, 0, 8);
        let g0 = plan.plan_for(0, 3).unwrap();
        let g1 = plan.plan_for(1, 3).unwrap();
        assert_eq!(g0.delay_prob, 0.25);
        assert!(g0.stragglers.is_empty());
        assert_eq!(g1.stragglers, vec![(0, 8)]);
        assert_eq!(
            g1.frame_delay(0, 1, 0, 0).max(8),
            g1.frame_delay(0, 1, 0, 0)
        );
    }

    #[test]
    fn full_partition_cuts_both_directions() {
        let p = NetFaultPlan::new(0).partition(PartitionWindow {
            from_step: 10,
            to_step: 20,
            side_a: 0b001, // node 0 alone
            one_way: false,
        });
        assert_eq!(p.link_fate(0, 1, 15, 0), LinkFate::Drop);
        assert_eq!(p.link_fate(1, 0, 15, 0), LinkFate::Drop);
        // same side unaffected; outside the window everything flows
        assert_eq!(p.link_fate(1, 2, 15, 0), LinkFate::Deliver);
        assert_eq!(p.link_fate(0, 1, 9, 0), LinkFate::Deliver);
        assert_eq!(p.link_fate(1, 0, 20, 0), LinkFate::Deliver);
    }

    #[test]
    fn one_way_partition_is_asymmetric() {
        let p = NetFaultPlan::new(0).partition(PartitionWindow {
            from_step: 0,
            to_step: 10,
            side_a: 0b001,
            one_way: true,
        });
        // A→B requests arrive but the reply is lost; B→A requests vanish
        assert_eq!(p.link_fate(0, 1, 5, 0), LinkFate::DropReply);
        assert_eq!(p.link_fate(1, 0, 5, 0), LinkFate::Drop);
    }

    #[test]
    fn out_of_range_probabilities_are_typed_errors() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, -f64::INFINITY] {
            let e = ServeFaultInjector::try_new(ServeFaultPlan::new(0).torn_wal(bad));
            assert!(
                matches!(e, Err(ServeError::InvalidFaultPlan(_))),
                "torn_wal({bad}) accepted"
            );
            let e = NetFaultPlan::new(0).drops(bad).validate();
            assert!(
                matches!(e, Err(ServeError::InvalidFaultPlan(_))),
                "drops({bad}) accepted"
            );
            let e = ShardFaultPlan::new(0).dups(bad).plan_for(0, 3);
            assert!(
                matches!(e, Err(ServeError::InvalidFaultPlan(_))),
                "shard dups({bad}) accepted"
            );
        }
        // every individual probability in range, but jointly overfull
        let e = ServeFaultInjector::try_new(ServeFaultPlan::new(0).torn_wal(0.7).before_fold(0.7));
        assert!(matches!(e, Err(ServeError::InvalidFaultPlan(_))));
        let e = NetFaultPlan::new(0)
            .drops(0.5)
            .dropped_replies(0.4)
            .dups(0.2)
            .validate();
        assert!(matches!(e, Err(ServeError::InvalidFaultPlan(_))));
        // valid plans pass
        assert!(ServeFaultInjector::try_new(ServeFaultPlan::new(0).torn_wal(0.5)).is_ok());
        assert!(NetFaultPlan::new(0).drops(0.5).dups(0.5).validate().is_ok());
    }

    #[test]
    fn shard_plan_is_deterministic_and_group_sensitive() {
        let plan = ShardFaultPlan::new(9)
            .drops(0.1)
            .dups(0.05)
            .group_partition(
                1,
                PartitionWindow {
                    from_step: 5,
                    to_step: 10,
                    side_a: 0b001,
                    one_way: false,
                },
            )
            .kill_node(7, 0, 2)
            .kill_quorum(20, 1);
        let g0 = plan.plan_for(0, 3).unwrap();
        let g0b = plan.plan_for(0, 3).unwrap();
        let g1 = plan.plan_for(1, 3).unwrap();
        // pure in (seed, shard); groups draw independent link fates
        assert_eq!(g0.seed, g0b.seed);
        assert_ne!(g0.seed, g1.seed);
        // faults land only on their own group
        assert_eq!(g0.kills_at(7), vec![2]);
        assert_eq!(g1.kills_at(7), Vec::<u32>::new());
        assert_eq!(g1.kills_at(20), vec![0, 1, 2], "quorum kill covers all");
        assert_eq!(g0.kills_at(20), Vec::<u32>::new());
        assert!(g0.partitions.is_empty());
        assert_eq!(g1.partitions.len(), 1);
    }

    #[test]
    fn kill_schedule_is_sorted_and_deduped() {
        let p = NetFaultPlan::new(0)
            .kill(5, 2)
            .kill(5, 0)
            .kill(5, 2)
            .kill(9, 1);
        assert_eq!(p.kills_at(5), vec![0, 2]);
        assert_eq!(p.kills_at(9), vec![1]);
        assert_eq!(p.kills_at(6), Vec::<u32>::new());
    }
}
