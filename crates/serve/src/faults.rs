//! Deterministic fault injection for the serving layer.
//!
//! The MapReduce engine proves its fault tolerance with a seeded
//! `FaultPlan` resolved as a pure function of the task coordinates
//! (`crh_mapreduce::faults`); the daemon extends the same design to its
//! durability pipeline. A [`ServeFaultPlan`] assigns each ingest attempt a fate —
//! torn WAL write (`kill -9` between append and fsync), crash after the
//! fsync but before the fold, crash after the fold but before the ack,
//! crash during the snapshot (before or after the atomic rename), a
//! stalled fold (for overload tests), or a mid-solve kill — derived from
//! `(seed, chunk, attempt)` via [`crh_core::rng::hash_rng`]. The fate is
//! independent of timing and thread scheduling, so a chaos run replays
//! exactly and the recovery-equivalence suite can assert bit-identical
//! state.
//!
//! `max_faults` bounds the chaos (a global budget shared across clones,
//! surviving daemon restarts), guaranteeing every chunk is eventually
//! accepted within a finite retry budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crh_core::rng::{hash_rng, Rng};

/// Where in the pipeline an injected crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePoint {
    /// Mid-append: the WAL record is torn (a prefix of its bytes reached
    /// the disk, fsync never happened).
    WalAppend,
    /// After the WAL append + fsync, before the fold: the chunk is
    /// durable but unapplied and unacknowledged.
    BeforeFold,
    /// After the fold, before the acknowledgement: the chunk is durable
    /// and applied in memory, but the ack never reaches the client.
    AfterFold,
    /// During the snapshot, before the atomic rename: the temp file is
    /// abandoned, the previous snapshot and full WAL survive.
    SnapshotWrite,
    /// After the snapshot rename, before the WAL truncation: the new
    /// snapshot and a stale WAL coexist (replay must skip applied seqs).
    SnapshotTruncate,
    /// During a batch solve (read-only; recovery is trivial but the
    /// daemon must still come back clean).
    Solve,
}

/// The resolved fate of one ingest attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeFate {
    /// Run normally.
    Healthy,
    /// Crash mid-append, keeping this fraction of the record's bytes.
    TornWal {
        /// Fraction of the record that reaches the disk, in `(0, 1)`.
        keep_frac: f64,
    },
    /// Crash at [`ServePoint::BeforeFold`].
    CrashBeforeFold,
    /// Crash at [`ServePoint::AfterFold`].
    CrashAfterFold,
    /// Crash at [`ServePoint::SnapshotWrite`].
    CrashDuringSnapshot,
    /// Crash at [`ServePoint::SnapshotTruncate`].
    CrashAfterSnapshotRename,
    /// Stall the fold for this long before completing normally.
    StallFold(Duration),
}

/// A seeded chaos schedule for the daemon. Probabilities are
/// per-ingest-attempt and mutually exclusive (sum must be ≤ 1).
#[derive(Debug, Clone)]
pub struct ServeFaultPlan {
    /// Seed from which every fate is derived.
    pub seed: u64,
    /// Probability of a torn WAL write.
    pub torn_wal_prob: f64,
    /// Probability of a crash between fsync and fold.
    pub before_fold_prob: f64,
    /// Probability of a crash between fold and ack.
    pub after_fold_prob: f64,
    /// Probability of a crash before the snapshot rename.
    pub snapshot_write_prob: f64,
    /// Probability of a crash after the rename, before WAL truncation.
    pub snapshot_truncate_prob: f64,
    /// Probability of a stalled fold.
    pub stall_prob: f64,
    /// How long a stalled fold sleeps.
    pub stall_for: Duration,
    /// Total faults the injector may fire before going permanently
    /// healthy (shared across clones and daemon restarts).
    pub max_faults: u64,
}

impl ServeFaultPlan {
    /// A plan with the given seed and no faults; enable classes with the
    /// builder methods.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            torn_wal_prob: 0.0,
            before_fold_prob: 0.0,
            after_fold_prob: 0.0,
            snapshot_write_prob: 0.0,
            snapshot_truncate_prob: 0.0,
            stall_prob: 0.0,
            stall_for: Duration::from_millis(20),
            max_faults: 16,
        }
    }

    /// Set the torn-WAL-write probability.
    pub fn torn_wal(mut self, p: f64) -> Self {
        self.torn_wal_prob = p;
        self
    }

    /// Set the crash-before-fold probability.
    pub fn before_fold(mut self, p: f64) -> Self {
        self.before_fold_prob = p;
        self
    }

    /// Set the crash-after-fold probability.
    pub fn after_fold(mut self, p: f64) -> Self {
        self.after_fold_prob = p;
        self
    }

    /// Set the crash-during-snapshot probability (split evenly between
    /// before-rename and after-rename).
    pub fn during_snapshot(mut self, p: f64) -> Self {
        self.snapshot_write_prob = p / 2.0;
        self.snapshot_truncate_prob = p / 2.0;
        self
    }

    /// Set the stalled-fold probability and duration.
    pub fn stalls(mut self, p: f64, stall_for: Duration) -> Self {
        self.stall_prob = p;
        self.stall_for = stall_for;
        self
    }

    /// Cap the total number of injected faults.
    pub fn max_faults(mut self, n: u64) -> Self {
        self.max_faults = n;
        self
    }

    fn total_prob(&self) -> f64 {
        self.torn_wal_prob
            + self.before_fold_prob
            + self.after_fold_prob
            + self.snapshot_write_prob
            + self.snapshot_truncate_prob
            + self.stall_prob
    }
}

/// Resolves attempt fates from a [`ServeFaultPlan`].
///
/// Cloning shares the fault budget, so one injector threaded through a
/// crash/recover/retry loop keeps a single global count of fired faults
/// — recovery cannot reset the chaos budget.
#[derive(Debug, Clone, Default)]
pub struct ServeFaultInjector {
    plan: Option<Arc<ServeFaultPlan>>,
    fired: Arc<AtomicU64>,
}

impl ServeFaultInjector {
    /// Wrap a plan.
    ///
    /// # Panics
    /// Panics if the plan's probabilities sum past 1.
    pub fn new(plan: ServeFaultPlan) -> Self {
        assert!(
            plan.total_prob() <= 1.0 + 1e-12,
            "fault probabilities must sum to <= 1"
        );
        Self {
            plan: Some(Arc::new(plan)),
            fired: Arc::new(AtomicU64::new(0)),
        }
    }

    /// An injector that never injects (the production default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Faults fired so far across all clones.
    pub fn faults_fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// The fate of ingest `attempt` of chunk `chunk`.
    ///
    /// Pure in `(seed, chunk, attempt)` apart from the global fault
    /// budget: once `max_faults` faults have fired, every further attempt
    /// is healthy, guaranteeing forward progress.
    pub fn fate(&self, chunk: u64, attempt: u64) -> ServeFate {
        let Some(p) = &self.plan else {
            return ServeFate::Healthy;
        };
        if self.fired.load(Ordering::SeqCst) >= p.max_faults {
            return ServeFate::Healthy;
        }
        let mut rng = hash_rng(p.seed, &[chunk, attempt]);
        let x: f64 = rng.random();
        let mut acc = 0.0;
        let fate = {
            acc += p.torn_wal_prob;
            if x < acc {
                // keep a deterministic, strictly-partial prefix
                let keep_frac: f64 = 0.05 + 0.9 * rng.random::<f64>();
                ServeFate::TornWal { keep_frac }
            } else {
                acc += p.before_fold_prob;
                if x < acc {
                    ServeFate::CrashBeforeFold
                } else {
                    acc += p.after_fold_prob;
                    if x < acc {
                        ServeFate::CrashAfterFold
                    } else {
                        acc += p.snapshot_write_prob;
                        if x < acc {
                            ServeFate::CrashDuringSnapshot
                        } else {
                            acc += p.snapshot_truncate_prob;
                            if x < acc {
                                ServeFate::CrashAfterSnapshotRename
                            } else {
                                acc += p.stall_prob;
                                if x < acc {
                                    ServeFate::StallFold(p.stall_for)
                                } else {
                                    ServeFate::Healthy
                                }
                            }
                        }
                    }
                }
            }
        };
        if fate != ServeFate::Healthy {
            // charge the budget; re-check in case a racing clone spent it
            if self.fired.fetch_add(1, Ordering::SeqCst) >= p.max_faults {
                return ServeFate::Healthy;
            }
        }
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic(seed: u64) -> ServeFaultInjector {
        ServeFaultInjector::new(
            ServeFaultPlan::new(seed)
                .torn_wal(0.2)
                .before_fold(0.2)
                .after_fold(0.2)
                .during_snapshot(0.2)
                .max_faults(u64::MAX),
        )
    }

    #[test]
    fn fates_are_deterministic() {
        let a = chaotic(42);
        let b = chaotic(42);
        for chunk in 0..100u64 {
            for attempt in 0..3 {
                assert_eq!(a.fate(chunk, attempt), b.fate(chunk, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = chaotic(1);
        let b = chaotic(2);
        let run =
            |inj: &ServeFaultInjector| (0..200u64).map(|c| inj.fate(c, 0)).collect::<Vec<_>>();
        assert_ne!(run(&a), run(&b));
    }

    #[test]
    fn budget_caps_total_faults() {
        let inj = ServeFaultInjector::new(ServeFaultPlan::new(3).torn_wal(1.0).max_faults(5));
        let clone = inj.clone();
        let mut faults = 0;
        for c in 0..100u64 {
            let who = if c % 2 == 0 { &inj } else { &clone };
            if who.fate(c, 0) != ServeFate::Healthy {
                faults += 1;
            }
        }
        assert_eq!(faults, 5, "budget shared across clones");
        assert_eq!(inj.faults_fired(), 5);
    }

    #[test]
    fn disabled_injector_is_always_healthy() {
        let inj = ServeFaultInjector::disabled();
        for c in 0..50u64 {
            assert_eq!(inj.fate(c, 0), ServeFate::Healthy);
        }
        assert_eq!(inj.faults_fired(), 0);
    }

    #[test]
    fn torn_fraction_is_strictly_partial() {
        let inj =
            ServeFaultInjector::new(ServeFaultPlan::new(7).torn_wal(1.0).max_faults(u64::MAX));
        for c in 0..500u64 {
            if let ServeFate::TornWal { keep_frac } = inj.fate(c, 0) {
                assert!(keep_frac > 0.0 && keep_frac < 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to <= 1")]
    fn overfull_probabilities_rejected() {
        ServeFaultInjector::new(ServeFaultPlan::new(0).torn_wal(0.7).before_fold(0.7));
    }
}
