//! Peer-health scoring for gray-failure handling: per-peer EWMA latency,
//! a windowed p95 estimate, and a slow-peer probation state machine.
//!
//! Components that *die* are caught by heartbeats and the election
//! timeout; components that are merely *slow* are not — a straggling
//! replica answers every heartbeat, just late, and quietly drags the
//! tail of everything routed through it. This module scores peers by
//! observed latency so callers can (a) size timeouts to each peer
//! instead of the slowest ([`HealthMap::adaptive_timeout`]), (b) hedge a
//! read once the first attempt overruns the peer's p95
//! ([`HealthMap::p95`]), and (c) take a chronically slow peer out of
//! rotation entirely ([`HealthMap::is_quarantined`]).
//!
//! Probation follows the source-breaker shape ([`crate::breaker`]):
//!
//! ```text
//! Healthy --ewma > factor × peer median--> Suspended{until}
//!    ^                                         |
//!    |                              cool-down elapses
//!    |<-- fast probe sample --- Probing{expires} --slow sample--> Suspended
//! ```
//!
//! Degradation is judged *relative to the other peers' median* rather
//! than against an absolute bound, so the same map works for wall-clock
//! microseconds on the TCP client and virtual ticks in the simulated
//! cluster — the units cancel. Time is whatever monotone `u64` the
//! caller supplies (`now`), and all state is in-memory: after a restart
//! every peer starts Healthy and must re-earn its quarantine, which is
//! the conservative direction.

use std::collections::BTreeMap;
use std::time::Duration;

/// Tuning for a [`HealthMap`].
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// EWMA smoothing weight for a new sample, in `(0, 1]`.
    pub alpha: f64,
    /// Ring-buffer window the p95 estimate is computed over.
    pub window: usize,
    /// A peer whose EWMA exceeds `degraded_factor ×` the median EWMA of
    /// the *other* peers goes on probation.
    pub degraded_factor: f64,
    /// Samples a peer must have before it can be judged degraded (and
    /// before other peers' medians count it) — first impressions and
    /// cold caches are not strikes.
    pub min_samples: u64,
    /// How long (in the caller's `now` unit) a suspended peer sits out
    /// before earning a probe, and how long a probe token lives.
    pub cooldown: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            alpha: 0.3,
            window: 32,
            degraded_factor: 4.0,
            min_samples: 4,
            cooldown: 64,
        }
    }
}

/// Probation state of one peer (breaker-shaped, see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probation {
    Healthy,
    Suspended {
        until: u64,
    },
    /// Exactly one probe is in flight; further admission is refused until
    /// it resolves (the next recorded sample) or the token expires.
    Probing {
        expires: u64,
    },
}

#[derive(Debug, Clone)]
struct PeerHealth {
    ewma: f64,
    samples: u64,
    ring: Vec<u64>,
    next: usize,
    state: Probation,
}

impl PeerHealth {
    fn p95(&self) -> u64 {
        // sorted copy of the (small, fixed) window: deterministic, no
        // sketch drift, and cheap at the window sizes used here
        let mut sorted = self.ring.clone();
        sorted.sort_unstable();
        // nearest-rank percentile: ceil(0.95 n) - 1; the index is in
        // range for any non-empty window, and an empty one scores 0
        let idx = (sorted.len() * 95).div_ceil(100).saturating_sub(1);
        sorted.get(idx).copied().unwrap_or(0)
    }
}

/// Latency scores and probation state for a set of peers.
#[derive(Debug, Clone)]
pub struct HealthMap {
    cfg: HealthConfig,
    peers: BTreeMap<u32, PeerHealth>,
}

impl Default for HealthMap {
    fn default() -> Self {
        Self::new(HealthConfig::default())
    }
}

impl HealthMap {
    /// An empty map (every peer Healthy, no samples).
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            cfg,
            peers: BTreeMap::new(),
        }
    }

    /// Record one observed round-trip of `latency` (any consistent unit)
    /// for `peer` at time `now`, then re-judge its probation state.
    pub fn record(&mut self, peer: u32, latency: u64, now: u64) {
        let window = self.cfg.window.max(1);
        let alpha = self.cfg.alpha;
        let e = self.peers.entry(peer).or_insert(PeerHealth {
            ewma: latency as f64,
            samples: 0,
            ring: Vec::with_capacity(window),
            next: 0,
            state: Probation::Healthy,
        });
        if e.samples > 0 {
            e.ewma = alpha * latency as f64 + (1.0 - alpha) * e.ewma;
        }
        e.samples += 1;
        if e.ring.len() < window {
            e.ring.push(latency);
        } else if let Some(slot) = e.ring.get_mut(e.next) {
            *slot = latency;
            e.next = (e.next + 1) % window;
        }
        self.judge(peer, latency, now);
    }

    /// Re-evaluate `peer` against the median of the other peers.
    fn judge(&mut self, peer: u32, latency: u64, now: u64) {
        let Some(median) = self.healthy_median(peer) else {
            return; // nothing to compare against: benefit of the doubt
        };
        let Some(e) = self.peers.get_mut(&peer) else {
            return;
        };
        if e.samples < self.cfg.min_samples {
            return;
        }
        let bound = self.cfg.degraded_factor * median.max(1.0);
        if let Probation::Probing { .. } = e.state {
            // the probe resolves on its own sample, not the ewma — the
            // ewma is still poisoned by the samples that tripped the
            // quarantine, and the probe's entire point is to measure the
            // peer as it is now
            if (latency as f64) <= bound {
                e.state = Probation::Healthy;
                // the peer re-earns its score from here
                e.ewma = latency as f64;
            } else {
                e.state = Probation::Suspended {
                    until: now + self.cfg.cooldown,
                };
            }
            return;
        }
        if e.state == Probation::Healthy && e.ewma > bound {
            e.state = Probation::Suspended {
                until: now + self.cfg.cooldown,
            };
        }
    }

    /// Median EWMA of every peer other than `except` that has enough
    /// samples to be a credible baseline.
    fn healthy_median(&self, except: u32) -> Option<f64> {
        let mut others: Vec<f64> = self
            .peers
            .iter()
            .filter(|(&p, e)| p != except && e.samples >= self.cfg.min_samples)
            .map(|(_, e)| e.ewma)
            .collect();
        others.sort_by(|a, b| a.total_cmp(b));
        others.get(others.len() / 2).copied()
    }

    /// The peer's smoothed latency, if any samples were recorded.
    pub fn ewma(&self, peer: u32) -> Option<f64> {
        self.peers.get(&peer).map(|e| e.ewma)
    }

    /// The peer's windowed p95 latency, if any samples were recorded.
    pub fn p95(&self, peer: u32) -> Option<u64> {
        self.peers
            .get(&peer)
            .filter(|e| !e.ring.is_empty())
            .map(PeerHealth::p95)
    }

    /// Whether `peer` is currently out of rotation (suspended, or holding
    /// an unresolved probe token). Quarantined peers must not be hedge
    /// targets or cached primaries; they get exactly one probe per
    /// cool-down via [`admit`](Self::admit).
    pub fn is_quarantined(&self, peer: u32) -> bool {
        matches!(
            self.peers.get(&peer).map(|e| e.state),
            Some(Probation::Suspended { .. } | Probation::Probing { .. })
        )
    }

    /// Gate traffic to `peer` at time `now`. Healthy peers always pass;
    /// a suspended peer passes exactly once per cool-down (the probe —
    /// its next recorded sample decides whether it heals or goes back
    /// under). Callers route around a `false`.
    pub fn admit(&mut self, peer: u32, now: u64) -> bool {
        let Some(e) = self.peers.get_mut(&peer) else {
            return true;
        };
        match e.state {
            Probation::Healthy => true,
            Probation::Suspended { until } => {
                if now >= until {
                    e.state = Probation::Probing {
                        expires: now + self.cfg.cooldown,
                    };
                    true
                } else {
                    false
                }
            }
            Probation::Probing { expires } => {
                if now >= expires {
                    // the outstanding probe never resolved (its request
                    // died); issue a fresh token instead of a permanent
                    // lock-out
                    e.state = Probation::Probing {
                        expires: now + self.cfg.cooldown,
                    };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A per-peer timeout sized to observed behaviour: `headroom ×` the
    /// peer's p95, clamped to `[floor, cap]`. Latency samples are taken
    /// to be **microseconds** here (the TCP client's unit). Peers with
    /// no history get `cap` — never guess tight on a cold cache.
    pub fn adaptive_timeout(
        &self,
        peer: u32,
        floor: Duration,
        cap: Duration,
        headroom: u32,
    ) -> Duration {
        match self.p95(peer) {
            Some(p95) => {
                Duration::from_micros(p95.saturating_mul(u64::from(headroom))).clamp(floor, cap)
            }
            None => cap,
        }
    }

    /// Peers currently quarantined, ascending (for status surfaces).
    pub fn quarantined(&self) -> Vec<u32> {
        self.peers
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e.state,
                    Probation::Suspended { .. } | Probation::Probing { .. }
                )
            })
            .map(|(&p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            alpha: 0.5,
            window: 8,
            degraded_factor: 3.0,
            min_samples: 3,
            cooldown: 10,
        }
    }

    /// Feed `n` samples of constant `latency` for `peer`.
    fn feed(h: &mut HealthMap, peer: u32, latency: u64, n: u64, start: u64) -> u64 {
        for i in 0..n {
            h.record(peer, latency, start + i);
        }
        start + n
    }

    #[test]
    fn ewma_and_p95_track_samples() {
        let mut h = HealthMap::new(cfg());
        feed(&mut h, 1, 100, 8, 0);
        assert_eq!(h.ewma(1), Some(100.0));
        assert_eq!(h.p95(1), Some(100));
        // one outlier moves the ewma but the window keeps perspective
        h.record(1, 1_000, 9);
        assert!(h.ewma(1).unwrap() > 100.0);
        assert_eq!(h.p95(1), Some(1_000), "p95 surfaces the tail");
        assert_eq!(h.ewma(9), None, "unknown peer has no score");
    }

    #[test]
    fn slow_peer_is_quarantined_relative_to_its_cohort() {
        let mut h = HealthMap::new(cfg());
        feed(&mut h, 0, 100, 4, 0);
        feed(&mut h, 1, 110, 4, 10);
        // peer 2 is 10× its cohort: suspended once it has min_samples
        let t = feed(&mut h, 2, 1_000, 4, 20);
        assert!(h.is_quarantined(2));
        assert!(!h.is_quarantined(0) && !h.is_quarantined(1));
        // out of rotation during the cool-down, one probe after it
        assert!(!h.admit(2, t));
        assert!(h.admit(2, t + 20), "cool-down over: probe admitted");
        assert!(!h.admit(2, t + 20), "exactly one probe token");
        // a fast probe sample heals it
        h.record(2, 100, t + 21);
        assert!(!h.is_quarantined(2));
        assert!(h.admit(2, t + 22));
    }

    #[test]
    fn slow_probe_goes_straight_back_under() {
        let mut h = HealthMap::new(cfg());
        feed(&mut h, 0, 100, 4, 0);
        feed(&mut h, 1, 100, 4, 10);
        let t = feed(&mut h, 2, 2_000, 4, 20);
        assert!(h.is_quarantined(2));
        assert!(h.admit(2, t + 20));
        h.record(2, 2_000, t + 21);
        assert!(h.is_quarantined(2), "a slow probe re-suspends");
        assert!(!h.admit(2, t + 22));
    }

    #[test]
    fn a_lone_peer_is_never_judged() {
        let mut h = HealthMap::new(cfg());
        // no cohort to compare against: even a glacial peer stays in
        // rotation (there is nothing faster to route to anyway)
        feed(&mut h, 7, 1_000_000, 16, 0);
        assert!(!h.is_quarantined(7));
        assert!(h.admit(7, 100));
    }

    #[test]
    fn cold_peers_are_not_judged_or_counted() {
        let mut h = HealthMap::new(cfg());
        feed(&mut h, 0, 100, 4, 0);
        // peer 1 has one (slow) sample — below min_samples, not judged
        h.record(1, 10_000, 5);
        assert!(!h.is_quarantined(1));
        // and its outlier ewma is not a credible baseline against 0
        feed(&mut h, 0, 100, 4, 6);
        assert!(!h.is_quarantined(0));
    }

    #[test]
    fn unresolved_probe_token_expires() {
        let mut h = HealthMap::new(cfg());
        feed(&mut h, 0, 100, 4, 0);
        feed(&mut h, 1, 100, 4, 10);
        let t = feed(&mut h, 2, 2_000, 4, 20);
        assert!(h.admit(2, t + 20), "probe token issued");
        // the probe request died; after the token expires a fresh probe
        // is allowed rather than locking the peer out forever
        assert!(!h.admit(2, t + 21));
        assert!(h.admit(2, t + 40));
    }

    #[test]
    fn adaptive_timeout_clamps_to_floor_and_cap() {
        let mut h = HealthMap::new(cfg());
        let floor = Duration::from_millis(5);
        let cap = Duration::from_millis(500);
        assert_eq!(
            h.adaptive_timeout(3, floor, cap, 2),
            cap,
            "no history → cap"
        );
        feed(&mut h, 3, 20_000, 8, 0); // 20ms p95
        assert_eq!(
            h.adaptive_timeout(3, floor, cap, 2),
            Duration::from_millis(40)
        );
        feed(&mut h, 4, 100, 8, 0); // 0.1ms p95 → clamped up to the floor
        assert_eq!(h.adaptive_timeout(4, floor, cap, 2), floor);
        feed(&mut h, 5, 1_000_000, 8, 0); // 1s p95 → clamped down to cap
        assert_eq!(h.adaptive_timeout(5, floor, cap, 2), cap);
    }

    #[test]
    fn quarantined_listing_is_sorted() {
        let mut h = HealthMap::new(cfg());
        feed(&mut h, 0, 100, 4, 0);
        feed(&mut h, 1, 100, 4, 10);
        feed(&mut h, 9, 5_000, 4, 20);
        feed(&mut h, 4, 5_000, 4, 30);
        assert_eq!(h.quarantined(), vec![4, 9]);
    }
}
