//! `crh-serve`: a crash-only, overload-safe truth-discovery daemon over
//! incremental CRH.
//!
//! The batch and streaming crates answer "what is true?" for data you
//! already have; this crate keeps the answer *standing* while new
//! observations keep arriving and the machine keeps failing. It layers
//! five robustness mechanisms over [`crh_stream`]'s I-CRH state:
//!
//! 1. **Crash-only durability** ([`wal`], [`core`]) — every accepted
//!    chunk is CRC-framed into an append-only WAL before it is folded;
//!    periodic snapshots (atomic rename) absorb the log. `kill -9` at
//!    any instruction recovers to bit-identical weights and truths:
//!    snapshot load, then WAL replay with snapshot-covered sequence
//!    numbers skipped and torn tails truncated.
//! 2. **Overload safety** ([`queue`], [`server`]) — a bounded ingest
//!    queue sheds load with a typed [`ServeError::Overloaded`] instead
//!    of buffering unboundedly; per-request deadlines turn slow folds
//!    and solves into [`ServeError::DeadlineExceeded`] with cooperative
//!    cancellation, never a hung client.
//! 3. **Bad-feed containment** ([`breaker`]) — malformed or non-finite
//!    observations strike a per-source circuit breaker; tripped sources
//!    are quarantined with a cool-down and heal through a half-open
//!    probe, so one byzantine feed cannot poison the weight estimates.
//! 4. **Deterministic chaos** ([`faults`]) — a seeded
//!    [`ServeFaultPlan`] resolves crash/stall fates as a pure function
//!    of `(seed, chunk, attempt)`, letting the test suite prove recovery
//!    equivalence for every fault interleaving it schedules; a seeded
//!    [`NetFaultPlan`] does the same for the replication fabric (link
//!    drops, one-way partitions, duplicated frames, timed kills).
//! 5. **Replication and failover** ([`replicate`], [`failover`],
//!    [`server::HaServer`]) — the primary ships every WAL record to
//!    followers and acks a write only after a quorum has fsynced it;
//!    followers serve staleness-bounded reads, promotion after a
//!    heartbeat loss is deterministic (highest replicated sequence,
//!    ties to the lowest node id), and [`ClusterClient`] fails over
//!    transparently with capped, jittered backoff.
//!
//! 6. **Sharded scale-out** ([`shard`], [`router`]) — a versioned
//!    hash-range shard map (derived from the same deterministic hash
//!    seam `crh-mapreduce` partitions with) assigns every entry to one
//!    of N shard groups, each an independent quorum-replicated cluster;
//!    [`ShardRouter`] scatter-gathers reads under a typed degraded-read
//!    contract ([`Sharded`] / [`ServeError::Degraded`]) and shard splits
//!    stage the moved range via snapshot + WAL catch-up before one
//!    atomic durable cutover record, so a crash at any point during a
//!    split recovers to exactly the pre- or post-cutover topology.
//!
//! 7. **Disk-fault survival** ([`vfs`], [`scrub`]) — every durable
//!    artifact (WAL, snapshots, election metadata, shard map, staging
//!    log) is written through an injectable [`Vfs`] seam; a seeded
//!    [`DiskFaultPlan`] tears writes at arbitrary offsets, rots bits on
//!    read, lies about fsync, and latches a dying disk sticky-bad, all
//!    as a pure function of `(seed, op)`. Recovery falls back to the
//!    previous snapshot generation on corruption, a primary on a dead
//!    disk self-deposes with a typed [`ServeError::DiskDegraded`], and
//!    a background scrubber walks CRCs to catch silent rot early,
//!    quarantining corrupt replica artifacts and re-syncing them from
//!    the quorum (read-repair).
//!
//! 8. **Gray-failure resilience** ([`health`], [`faults`], [`vfs`]) —
//!    slowness is injectable like any other fault: seeded frame delays
//!    and chronic stragglers on the replication fabric, slow-read/write/
//!    fsync fates on the disk seam. Every hop carries the client's
//!    remaining deadline budget on the wire and refuses work it cannot
//!    finish ([`ServeError::DeadlineExceeded`]); quorum acks never wait
//!    on the slowest replica; [`ShardRouter`] hedges a read once the
//!    first attempt overruns the shard's p95; and a peer whose EWMA
//!    latency degrades against its cohort is quarantined on probation
//!    ([`HealthMap`]), while a primary on a slow disk self-deposes.
//!
//! The wire protocol ([`proto`]) is the workspace's own length-prefixed
//! CRC-framed format; [`client`] is a small synchronous client. Nothing
//! here needs a dependency outside the workspace.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod breaker;
pub mod client;
pub mod core;
pub mod error;
pub mod failover;
pub mod faults;
pub mod health;
pub mod proto;
pub mod queue;
pub mod replicate;
pub mod router;
pub mod scrub;
pub mod server;
pub mod shard;
pub mod vfs;
pub mod wal;

pub use breaker::BreakerConfig;
pub use client::{Client, ClusterClient, DaemonStatus, RemoteSolve, RetryPolicy};
pub use core::{
    claims_from_csv, solve_claims, ChunkClaim, CoreStatus, IngestReceipt, RecoveryReport,
    ServeConfig, ServeCore, SolveOutcome,
};
pub use error::ServeError;
pub use failover::{elect, SimCluster};
pub use faults::{
    LinkFate, NetFaultPlan, PartitionWindow, ServeFate, ServeFaultInjector, ServeFaultPlan,
    ServePoint, ShardFaultPlan, SplitCrash,
};
pub use health::{HealthConfig, HealthMap};
pub use queue::BoundedQueue;
pub use replicate::{ReplicaConfig, ReplicaNode, ReplicaRecovery, Role};
pub use router::{ShardAck, ShardGroup, ShardRouter};
pub use scrub::{scrub_dir, ScrubFinding, ScrubReport};
pub use server::{HaConfig, HaServer, Server, ServerConfig};
pub use shard::{
    entry_point, ShardMap, ShardMapStore, ShardRange, Sharded, ShardedSim, SplitOutcome, SplitSpec,
};
pub use vfs::{DiskFaultPlan, DiskFile, Vfs};
pub use wal::{Wal, WalRecovery};
