//! The daemon's length-prefixed wire protocol.
//!
//! Frames are symmetric in both directions:
//!
//! ```text
//! frame := len:u32 LE | crc32:u32 LE | payload[len]
//! ```
//!
//! with `len` capped at [`MAX_FRAME_BYTES`] so a hostile or broken peer
//! cannot make the daemon allocate unboundedly. Payloads are tagged
//! unions encoded with the same [`Enc`]/[`Dec`] codec as every durable
//! artefact in the workspace — bit-exact `f64`s, length-prefixed
//! strings, no text parsing on the hot path. Any framing or decoding
//! failure is a typed [`ServeError::Protocol`]; the daemon answers what
//! it can and drops the connection rather than panicking.

use std::io::{Read, Write};

use crh_core::persist::{crc32, Dec, Enc};
use crh_core::value::Truth;

use crate::core::ChunkClaim;
use crate::error::ServeError;
use crate::shard::ShardRange;

/// Upper bound on a single frame's payload (16 MiB).
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Fold one chunk of claims into the model.
    Ingest(Vec<ChunkClaim>),
    /// Fold one chunk given as CSV text with rows
    /// `object,property_name,source,value` (categorical labels are
    /// resolved against the daemon's schema, never interned).
    IngestCsv(String),
    /// Read the current source weights.
    Weights,
    /// Read the cached truth for one (object, property) cell.
    Truth {
        /// The object id.
        object: u32,
        /// The property id.
        property: u32,
    },
    /// Read the daemon's operational status.
    Status,
    /// Run a batch CRH solve over ad-hoc claims, seeded from the
    /// daemon's current weights.
    Solve {
        /// Convergence tolerance.
        tol: f64,
        /// Iteration cap.
        max_iters: u64,
        /// The claims to solve over.
        claims: Vec<ChunkClaim>,
    },
    /// Ask the daemon to snapshot and exit cleanly.
    Shutdown,
    /// Primary → follower: ship one WAL record. `record` is the same
    /// CRC-framed chunk payload the primary appended to its own log;
    /// `commit` lets the follower fold everything the quorum has fsync'd.
    Replicate {
        /// Shared cluster key; frames with the wrong key are refused.
        token: u64,
        /// The primary's election epoch.
        epoch: u64,
        /// The sending primary's node id.
        node: u32,
        /// The record's sequence number.
        seq: u64,
        /// Highest quorum-fsync'd sequence (exclusive fold bound).
        commit: u64,
        /// The WAL record payload.
        record: Vec<u8>,
    },
    /// Primary → follower: liveness + commit propagation when there is
    /// nothing to ship.
    Heartbeat {
        /// Shared cluster key; frames with the wrong key are refused.
        token: u64,
        /// The primary's election epoch.
        epoch: u64,
        /// The sending primary's node id.
        node: u32,
        /// Highest quorum-fsync'd sequence.
        commit: u64,
        /// The primary's own durable sequence (for follower lag).
        head: u64,
    },
    /// Follower → primary: request records from `from` onward (the
    /// follower detected a gap or is rejoining after a partition).
    CatchUp {
        /// Shared cluster key; frames with the wrong key are refused.
        token: u64,
        /// The requester's epoch.
        epoch: u64,
        /// First missing sequence number.
        from: u64,
    },
    /// Election winner → everyone: announce the new primary for `epoch`.
    Promote {
        /// Shared cluster key; frames with the wrong key are refused.
        token: u64,
        /// The new (strictly higher) epoch.
        epoch: u64,
        /// The winning node id.
        node: u32,
        /// The winner's durable sequence at promotion.
        head: u64,
    },
    /// Election probe: ask a peer for its durable sequence so the
    /// candidate set can be ranked deterministically.
    SeqQuery {
        /// Shared cluster key; frames with the wrong key are refused.
        token: u64,
        /// The candidate's current epoch.
        epoch: u64,
    },
    /// Router → any shard member: fetch the member's current shard map
    /// so a client with a stale route table can re-route after a
    /// split/cutover.
    RouteTable,
    /// Router → shard primary: fold one chunk of claims, all of which
    /// hash into `shard`'s entry range. Refused with `WRONG_SHARD` on a
    /// misdelivery and `STALE_SHARD_MAP` when `map_version` predates the
    /// member's map, so a routing error can never fold claims into the
    /// wrong group.
    ShardIngest {
        /// The shard the sender believes it is addressing.
        shard: u32,
        /// The shard-map version the routing decision was made under.
        map_version: u64,
        /// The claims to fold.
        claims: Vec<ChunkClaim>,
    },
    /// Router → shard member: read one cell's truth, shard-checked the
    /// same way as [`Request::ShardIngest`].
    ShardTruth {
        /// The shard the sender believes owns the cell.
        shard: u32,
        /// The shard-map version the routing decision was made under.
        map_version: u64,
        /// The object id.
        object: u32,
        /// The property id.
        property: u32,
    },
    /// Split coordinator → virgin member of a *new* shard group: install
    /// the donor's snapshot and catch-up records before the group opens.
    /// Only accepted by an empty replica (nothing staged, nothing
    /// folded), so a misdelivery can never overwrite live state.
    SplitStage {
        /// Shared cluster key; frames with the wrong key are refused.
        token: u64,
        /// The shard this member will serve after cutover.
        shard: u32,
        /// Donor full-state snapshot, installed first when present.
        snapshot: Option<Vec<u8>>,
        /// Donor WAL record payloads, consecutive by sequence.
        records: Vec<Vec<u8>>,
    },
    /// Split coordinator → every member: atomically adopt the
    /// post-split shard map. Each member persists the map before
    /// answering, so the cutover survives any crash after the ack.
    SplitCutover {
        /// Shared cluster key; frames with the wrong key are refused.
        token: u64,
        /// The new map version (must exceed the member's current).
        version: u64,
        /// The complete post-split range table.
        ranges: Vec<ShardRange>,
    },
    /// Any request, wrapped with the client's remaining deadline budget.
    /// Each hop decrements the budget by what it spends before
    /// forwarding; a hop that cannot finish inside the remainder refuses
    /// with a typed `DEADLINE` error *before* doing the work, so no
    /// caller pays for an answer it already gave up on. A budget of 0 is
    /// a valid frame that every hop must refuse.
    WithDeadline {
        /// Remaining budget in milliseconds.
        budget_ms: u64,
        /// The wrapped request. Never itself a `WithDeadline` — nesting
        /// is a typed protocol error at decode.
        inner: Box<Request>,
    },
    /// A minimal liveness/latency round-trip: answered immediately with
    /// [`Response::ProbeAck`], bypassing the ingest queue. Health
    /// scoring uses it to re-measure a quarantined peer without betting
    /// real traffic on it.
    Probe {
        /// Echo nonce tying the ack to this probe.
        nonce: u64,
    },
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The chunk was accepted and folded.
    Ack {
        /// Sequence number assigned to the chunk.
        seq: u64,
        /// Chunks folded so far.
        chunks_seen: u64,
    },
    /// Current source weights.
    Weights(Vec<f64>),
    /// Cached truth, if resident.
    Truth(Option<Truth>),
    /// Operational status.
    Status {
        /// Chunks folded into the model.
        chunks_seen: u64,
        /// WAL records since the last snapshot.
        wal_records: u64,
        /// Entries in the truth cache.
        cached_truths: u64,
        /// Ingest requests currently queued.
        queue_depth: u64,
        /// Quarantined sources, ascending.
        quarantined: Vec<u32>,
    },
    /// Batch solve result.
    Solved {
        /// Converged weights.
        weights: Vec<f64>,
        /// Final objective value.
        objective: f64,
        /// Iterations used.
        iterations: u64,
    },
    /// A typed failure (see [`crate::error::code`]).
    Error {
        /// Stable wire code.
        code: u8,
        /// Human-readable message.
        message: String,
        /// Structured redirect target for `NOT_PRIMARY`: the node id of
        /// the primary, when the refusing node knows it. Carried here —
        /// not parsed out of `message` — so rewording the error text can
        /// never break failover redirects.
        hint: Option<u32>,
    },
    /// Acknowledgement of a replication message (`Replicate`,
    /// `Heartbeat`, `SeqQuery`, or `Promote`): the responder's identity,
    /// epoch, and durable sequence.
    ReplAck {
        /// The responding node id.
        node: u32,
        /// The responder's epoch (a higher epoch deposes the sender).
        epoch: u64,
        /// The responder's durable (fsync'd) sequence — for a replication
        /// ack this is how far the log is verified consistent with the
        /// current primary; for an election probe it is the raw durable
        /// count.
        durable: u64,
        /// The epoch of the responder's last durable record (election
        /// ranking: a log from a newer epoch beats a longer stale one).
        last_epoch: u64,
    },
    /// Catch-up payload: records from the requested sequence onward,
    /// preceded by a full snapshot when the request predates the
    /// primary's retention window.
    CatchUpRecords {
        /// The primary's epoch.
        epoch: u64,
        /// Highest quorum-fsync'd sequence.
        commit: u64,
        /// Full-state snapshot payload, when retention cannot cover the
        /// request; the follower installs it before applying `records`.
        snapshot: Option<Vec<u8>>,
        /// WAL record payloads, consecutive by sequence.
        records: Vec<Vec<u8>>,
    },
    /// A follower's answer to a read: the inner encoded [`Response`] plus
    /// the staleness bound (how many chunks the follower lags the
    /// primary's last advertised head).
    FollowerRead {
        /// Staleness bound in chunks.
        lag: u64,
        /// The encoded inner response.
        inner: Vec<u8>,
    },
    /// A shard member's current route table, for
    /// [`Request::RouteTable`].
    RouteTable {
        /// The member's shard-map version.
        version: u64,
        /// The shard this member serves.
        shard: u32,
        /// The complete range table, sorted and contiguous.
        ranges: Vec<ShardRange>,
    },
    /// Answer to [`Request::Probe`]: the nonce, echoed.
    ProbeAck {
        /// The probe's nonce.
        nonce: u64,
    },
}

const REQ_INGEST: u8 = 0;
const REQ_INGEST_CSV: u8 = 1;
const REQ_WEIGHTS: u8 = 2;
const REQ_TRUTH: u8 = 3;
const REQ_STATUS: u8 = 4;
const REQ_SOLVE: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;
const REQ_REPLICATE: u8 = 7;
const REQ_HEARTBEAT: u8 = 8;
const REQ_CATCH_UP: u8 = 9;
const REQ_PROMOTE: u8 = 10;
const REQ_SEQ_QUERY: u8 = 11;
const REQ_ROUTE_TABLE: u8 = 12;
const REQ_SHARD_INGEST: u8 = 13;
const REQ_SHARD_TRUTH: u8 = 14;
const REQ_SPLIT_STAGE: u8 = 15;
const REQ_SPLIT_CUTOVER: u8 = 16;
const REQ_WITH_DEADLINE: u8 = 17;
const REQ_PROBE: u8 = 18;

const RESP_ACK: u8 = 0;
const RESP_WEIGHTS: u8 = 1;
const RESP_TRUTH: u8 = 2;
const RESP_STATUS: u8 = 3;
const RESP_SOLVED: u8 = 4;
const RESP_REPL_ACK: u8 = 5;
const RESP_CATCH_UP_RECORDS: u8 = 6;
const RESP_FOLLOWER_READ: u8 = 7;
const RESP_ROUTE_TABLE: u8 = 8;
const RESP_PROBE_ACK: u8 = 9;
const RESP_ERROR: u8 = 255;

fn enc_claims(e: &mut Enc, claims: &[ChunkClaim]) {
    e.u32(claims.len() as u32);
    for c in claims {
        e.u32(c.object);
        e.u32(c.property);
        e.u32(c.source);
        e.value(&c.value);
    }
}

fn dec_claims(d: &mut Dec) -> Result<Vec<ChunkClaim>, ServeError> {
    let n = d.u32()? as usize;
    let mut claims = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        claims.push(ChunkClaim {
            object: d.u32()?,
            property: d.u32()?,
            source: d.u32()?,
            value: d.value()?,
        });
    }
    Ok(claims)
}

fn enc_ranges(e: &mut Enc, ranges: &[ShardRange]) {
    e.u32(ranges.len() as u32);
    for r in ranges {
        e.u32(r.shard);
        e.u64(r.start);
        e.u64(r.end);
    }
}

fn dec_ranges(d: &mut Dec) -> Result<Vec<ShardRange>, ServeError> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        out.push(ShardRange {
            shard: d.u32()?,
            start: d.u64()?,
            end: d.u64()?,
        });
    }
    Ok(out)
}

fn dec_u32s(d: &mut Dec) -> Result<Vec<u32>, ServeError> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(d.u32()?);
    }
    Ok(out)
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Self::Ingest(claims) => {
                e.u8(REQ_INGEST);
                enc_claims(&mut e, claims);
            }
            Self::IngestCsv(text) => {
                e.u8(REQ_INGEST_CSV);
                e.str(text);
            }
            Self::Weights => e.u8(REQ_WEIGHTS),
            Self::Truth { object, property } => {
                e.u8(REQ_TRUTH);
                e.u32(*object);
                e.u32(*property);
            }
            Self::Status => e.u8(REQ_STATUS),
            Self::Solve {
                tol,
                max_iters,
                claims,
            } => {
                e.u8(REQ_SOLVE);
                e.f64(*tol);
                e.u64(*max_iters);
                enc_claims(&mut e, claims);
            }
            Self::Shutdown => e.u8(REQ_SHUTDOWN),
            Self::Replicate {
                token,
                epoch,
                node,
                seq,
                commit,
                record,
            } => {
                e.u8(REQ_REPLICATE);
                e.u64(*token);
                e.u64(*epoch);
                e.u32(*node);
                e.u64(*seq);
                e.u64(*commit);
                e.bytes(record);
            }
            Self::Heartbeat {
                token,
                epoch,
                node,
                commit,
                head,
            } => {
                e.u8(REQ_HEARTBEAT);
                e.u64(*token);
                e.u64(*epoch);
                e.u32(*node);
                e.u64(*commit);
                e.u64(*head);
            }
            Self::CatchUp { token, epoch, from } => {
                e.u8(REQ_CATCH_UP);
                e.u64(*token);
                e.u64(*epoch);
                e.u64(*from);
            }
            Self::Promote {
                token,
                epoch,
                node,
                head,
            } => {
                e.u8(REQ_PROMOTE);
                e.u64(*token);
                e.u64(*epoch);
                e.u32(*node);
                e.u64(*head);
            }
            Self::SeqQuery { token, epoch } => {
                e.u8(REQ_SEQ_QUERY);
                e.u64(*token);
                e.u64(*epoch);
            }
            Self::RouteTable => e.u8(REQ_ROUTE_TABLE),
            Self::ShardIngest {
                shard,
                map_version,
                claims,
            } => {
                e.u8(REQ_SHARD_INGEST);
                e.u32(*shard);
                e.u64(*map_version);
                enc_claims(&mut e, claims);
            }
            Self::ShardTruth {
                shard,
                map_version,
                object,
                property,
            } => {
                e.u8(REQ_SHARD_TRUTH);
                e.u32(*shard);
                e.u64(*map_version);
                e.u32(*object);
                e.u32(*property);
            }
            Self::SplitStage {
                token,
                shard,
                snapshot,
                records,
            } => {
                e.u8(REQ_SPLIT_STAGE);
                e.u64(*token);
                e.u32(*shard);
                match snapshot {
                    None => e.u8(0),
                    Some(s) => {
                        e.u8(1);
                        e.bytes(s);
                    }
                }
                e.u32(records.len() as u32);
                for r in records {
                    e.bytes(r);
                }
            }
            Self::SplitCutover {
                token,
                version,
                ranges,
            } => {
                e.u8(REQ_SPLIT_CUTOVER);
                e.u64(*token);
                e.u64(*version);
                enc_ranges(&mut e, ranges);
            }
            Self::WithDeadline { budget_ms, inner } => {
                e.u8(REQ_WITH_DEADLINE);
                e.u64(*budget_ms);
                e.bytes(&inner.encode());
            }
            Self::Probe { nonce } => {
                e.u8(REQ_PROBE);
                e.u64(*nonce);
            }
        }
        e.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        let mut d = Dec::new(bytes);
        let req = match d.u8()? {
            REQ_INGEST => Self::Ingest(dec_claims(&mut d)?),
            REQ_INGEST_CSV => Self::IngestCsv(d.str()?),
            REQ_WEIGHTS => Self::Weights,
            REQ_TRUTH => Self::Truth {
                object: d.u32()?,
                property: d.u32()?,
            },
            REQ_STATUS => Self::Status,
            REQ_SOLVE => Self::Solve {
                tol: d.f64()?,
                max_iters: d.u64()?,
                claims: dec_claims(&mut d)?,
            },
            REQ_SHUTDOWN => Self::Shutdown,
            REQ_REPLICATE => Self::Replicate {
                token: d.u64()?,
                epoch: d.u64()?,
                node: d.u32()?,
                seq: d.u64()?,
                commit: d.u64()?,
                record: d.bytes()?,
            },
            REQ_HEARTBEAT => Self::Heartbeat {
                token: d.u64()?,
                epoch: d.u64()?,
                node: d.u32()?,
                commit: d.u64()?,
                head: d.u64()?,
            },
            REQ_CATCH_UP => Self::CatchUp {
                token: d.u64()?,
                epoch: d.u64()?,
                from: d.u64()?,
            },
            REQ_PROMOTE => Self::Promote {
                token: d.u64()?,
                epoch: d.u64()?,
                node: d.u32()?,
                head: d.u64()?,
            },
            REQ_SEQ_QUERY => Self::SeqQuery {
                token: d.u64()?,
                epoch: d.u64()?,
            },
            REQ_ROUTE_TABLE => Self::RouteTable,
            REQ_SHARD_INGEST => Self::ShardIngest {
                shard: d.u32()?,
                map_version: d.u64()?,
                claims: dec_claims(&mut d)?,
            },
            REQ_SHARD_TRUTH => Self::ShardTruth {
                shard: d.u32()?,
                map_version: d.u64()?,
                object: d.u32()?,
                property: d.u32()?,
            },
            REQ_SPLIT_STAGE => {
                let token = d.u64()?;
                let shard = d.u32()?;
                let snapshot = match d.u8()? {
                    0 => None,
                    1 => Some(d.bytes()?),
                    tag => {
                        return Err(ServeError::Protocol(format!(
                            "bad option tag {tag} in split-stage snapshot"
                        )));
                    }
                };
                let n = d.u32()? as usize;
                let mut records = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    records.push(d.bytes()?);
                }
                Self::SplitStage {
                    token,
                    shard,
                    snapshot,
                    records,
                }
            }
            REQ_SPLIT_CUTOVER => Self::SplitCutover {
                token: d.u64()?,
                version: d.u64()?,
                ranges: dec_ranges(&mut d)?,
            },
            REQ_WITH_DEADLINE => {
                let budget_ms = d.u64()?;
                let inner_bytes = d.bytes()?;
                let inner = Self::decode(&inner_bytes)?;
                if matches!(inner, Self::WithDeadline { .. }) {
                    // one budget per request: a nested wrapper would let
                    // the inner frame smuggle a larger budget past every
                    // hop that already decremented the outer one
                    return Err(ServeError::Protocol("nested deadline wrapper".into()));
                }
                Self::WithDeadline {
                    budget_ms,
                    inner: Box::new(inner),
                }
            }
            REQ_PROBE => Self::Probe { nonce: d.u64()? },
            tag => {
                return Err(ServeError::Protocol(format!("unknown request tag {tag}")));
            }
        };
        if !d.is_exhausted() {
            return Err(ServeError::Protocol("trailing bytes after request".into()));
        }
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Self::Ack { seq, chunks_seen } => {
                e.u8(RESP_ACK);
                e.u64(*seq);
                e.u64(*chunks_seen);
            }
            Self::Weights(w) => {
                e.u8(RESP_WEIGHTS);
                e.f64s(w);
            }
            Self::Truth(t) => {
                e.u8(RESP_TRUTH);
                match t {
                    None => e.u8(0),
                    Some(t) => {
                        e.u8(1);
                        e.truth(t);
                    }
                }
            }
            Self::Status {
                chunks_seen,
                wal_records,
                cached_truths,
                queue_depth,
                quarantined,
            } => {
                e.u8(RESP_STATUS);
                e.u64(*chunks_seen);
                e.u64(*wal_records);
                e.u64(*cached_truths);
                e.u64(*queue_depth);
                e.u32(quarantined.len() as u32);
                for &s in quarantined {
                    e.u32(s);
                }
            }
            Self::Solved {
                weights,
                objective,
                iterations,
            } => {
                e.u8(RESP_SOLVED);
                e.f64s(weights);
                e.f64(*objective);
                e.u64(*iterations);
            }
            Self::Error {
                code,
                message,
                hint,
            } => {
                e.u8(RESP_ERROR);
                e.u8(*code);
                e.str(message);
                match hint {
                    None => e.u8(0),
                    Some(n) => {
                        e.u8(1);
                        e.u32(*n);
                    }
                }
            }
            Self::ReplAck {
                node,
                epoch,
                durable,
                last_epoch,
            } => {
                e.u8(RESP_REPL_ACK);
                e.u32(*node);
                e.u64(*epoch);
                e.u64(*durable);
                e.u64(*last_epoch);
            }
            Self::CatchUpRecords {
                epoch,
                commit,
                snapshot,
                records,
            } => {
                e.u8(RESP_CATCH_UP_RECORDS);
                e.u64(*epoch);
                e.u64(*commit);
                match snapshot {
                    None => e.u8(0),
                    Some(s) => {
                        e.u8(1);
                        e.bytes(s);
                    }
                }
                e.u32(records.len() as u32);
                for r in records {
                    e.bytes(r);
                }
            }
            Self::FollowerRead { lag, inner } => {
                e.u8(RESP_FOLLOWER_READ);
                e.u64(*lag);
                e.bytes(inner);
            }
            Self::RouteTable {
                version,
                shard,
                ranges,
            } => {
                e.u8(RESP_ROUTE_TABLE);
                e.u64(*version);
                e.u32(*shard);
                enc_ranges(&mut e, ranges);
            }
            Self::ProbeAck { nonce } => {
                e.u8(RESP_PROBE_ACK);
                e.u64(*nonce);
            }
        }
        e.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        let mut d = Dec::new(bytes);
        let resp = match d.u8()? {
            RESP_ACK => Self::Ack {
                seq: d.u64()?,
                chunks_seen: d.u64()?,
            },
            RESP_WEIGHTS => Self::Weights(d.f64s()?),
            RESP_TRUTH => match d.u8()? {
                0 => Self::Truth(None),
                1 => Self::Truth(Some(d.truth()?)),
                tag => {
                    return Err(ServeError::Protocol(format!(
                        "bad option tag {tag} in truth response"
                    )));
                }
            },
            RESP_STATUS => Self::Status {
                chunks_seen: d.u64()?,
                wal_records: d.u64()?,
                cached_truths: d.u64()?,
                queue_depth: d.u64()?,
                quarantined: dec_u32s(&mut d)?,
            },
            RESP_SOLVED => Self::Solved {
                weights: d.f64s()?,
                objective: d.f64()?,
                iterations: d.u64()?,
            },
            RESP_ERROR => {
                let code = d.u8()?;
                let message = d.str()?;
                let hint = match d.u8()? {
                    0 => None,
                    1 => Some(d.u32()?),
                    tag => {
                        return Err(ServeError::Protocol(format!(
                            "bad option tag {tag} in error hint"
                        )));
                    }
                };
                Self::Error {
                    code,
                    message,
                    hint,
                }
            }
            RESP_REPL_ACK => Self::ReplAck {
                node: d.u32()?,
                epoch: d.u64()?,
                durable: d.u64()?,
                last_epoch: d.u64()?,
            },
            RESP_CATCH_UP_RECORDS => {
                let epoch = d.u64()?;
                let commit = d.u64()?;
                let snapshot = match d.u8()? {
                    0 => None,
                    1 => Some(d.bytes()?),
                    tag => {
                        return Err(ServeError::Protocol(format!(
                            "bad option tag {tag} in catch-up snapshot"
                        )));
                    }
                };
                let n = d.u32()? as usize;
                let mut records = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    records.push(d.bytes()?);
                }
                Self::CatchUpRecords {
                    epoch,
                    commit,
                    snapshot,
                    records,
                }
            }
            RESP_FOLLOWER_READ => Self::FollowerRead {
                lag: d.u64()?,
                inner: d.bytes()?,
            },
            RESP_ROUTE_TABLE => Self::RouteTable {
                version: d.u64()?,
                shard: d.u32()?,
                ranges: dec_ranges(&mut d)?,
            },
            RESP_PROBE_ACK => Self::ProbeAck { nonce: d.u64()? },
            tag => {
                return Err(ServeError::Protocol(format!("unknown response tag {tag}")));
            }
        };
        if !d.is_exhausted() {
            return Err(ServeError::Protocol("trailing bytes after response".into()));
        }
        Ok(resp)
    }

    /// The response the daemon sends for a failed request. A
    /// `NotPrimary` refusal carries its redirect target as the
    /// structured `hint` field, never just prose.
    pub fn from_error(e: &ServeError) -> Self {
        let hint = match e {
            ServeError::NotPrimary { hint } => *hint,
            _ => None,
        };
        Self::Error {
            code: e.wire_code(),
            message: e.to_string(),
            hint,
        }
    }
}

/// Write one frame (length, CRC, payload) to `w`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(ServeError::Protocol(format!(
            "frame of {} bytes exceeds the {} byte cap",
            payload.len(),
            MAX_FRAME_BYTES
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame from `r`, verifying the length cap and CRC.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ServeError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let stored_crc = u32::from_le_bytes(crc_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(ServeError::Protocol(format!(
            "peer announced a {len} byte frame (cap {MAX_FRAME_BYTES})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != stored_crc {
        return Err(ServeError::Protocol("frame CRC mismatch".into()));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crh_core::value::Value;

    fn sample_claims() -> Vec<ChunkClaim> {
        vec![
            ChunkClaim::num(0, 0, 1, 21.5),
            ChunkClaim {
                object: 3,
                property: 1,
                source: 2,
                value: Value::Cat(1),
            },
            ChunkClaim {
                object: 4,
                property: 2,
                source: 0,
                value: Value::Text("fog".into()),
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Ingest(sample_claims()),
            Request::IngestCsv("0,temperature,1,21.5\n".into()),
            Request::Weights,
            Request::Truth {
                object: 7,
                property: 1,
            },
            Request::Status,
            Request::Solve {
                tol: 1e-6,
                max_iters: 50,
                claims: sample_claims(),
            },
            Request::Shutdown,
            Request::Replicate {
                token: 0xC1A5,
                epoch: 3,
                node: 0,
                seq: 17,
                commit: 15,
                record: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
            Request::Heartbeat {
                token: 0xC1A5,
                epoch: 3,
                node: 1,
                commit: 17,
                head: 18,
            },
            Request::CatchUp {
                token: 0xC1A5,
                epoch: 3,
                from: 12,
            },
            Request::Promote {
                token: 0xC1A5,
                epoch: 4,
                node: 2,
                head: 18,
            },
            Request::SeqQuery {
                token: 0xC1A5,
                epoch: 4,
            },
            Request::RouteTable,
            Request::ShardIngest {
                shard: 1,
                map_version: 2,
                claims: sample_claims(),
            },
            Request::ShardTruth {
                shard: 0,
                map_version: 2,
                object: 7,
                property: 1,
            },
            Request::SplitStage {
                token: 0xC1A5,
                shard: 2,
                snapshot: Some(vec![1, 2, 3]),
                records: vec![vec![4, 5], vec![]],
            },
            Request::SplitStage {
                token: 0xC1A5,
                shard: 2,
                snapshot: None,
                records: vec![],
            },
            Request::SplitCutover {
                token: 0xC1A5,
                version: 3,
                ranges: vec![
                    ShardRange {
                        shard: 0,
                        start: 0,
                        end: 99,
                    },
                    ShardRange {
                        shard: 1,
                        start: 100,
                        end: u64::MAX,
                    },
                ],
            },
            Request::WithDeadline {
                budget_ms: 1_500,
                inner: Box::new(Request::Ingest(sample_claims())),
            },
            Request::WithDeadline {
                budget_ms: 0,
                inner: Box::new(Request::Status),
            },
            Request::Probe { nonce: 0xFEED_BEEF },
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn nested_deadline_wrappers_are_typed_protocol_errors() {
        // encode() permits the construction; decode() must refuse it so
        // no hop ever sees a second, larger budget hiding inside
        let nested = Request::WithDeadline {
            budget_ms: 9,
            inner: Box::new(Request::WithDeadline {
                budget_ms: 1_000_000,
                inner: Box::new(Request::Weights),
            }),
        };
        let err = Request::decode(&nested.encode()).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
        assert!(err.to_string().contains("nested"), "{err}");
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Ack {
                seq: 9,
                chunks_seen: 10,
            },
            Response::Weights(vec![1.0, 0.5, f64::MAX]),
            Response::Truth(None),
            Response::Truth(Some(Truth::Point(Value::Num(3.25)))),
            Response::Truth(Some(Truth::Distribution {
                probs: vec![0.25, 0.75],
                mode: 1,
            })),
            Response::Status {
                chunks_seen: 5,
                wal_records: 2,
                cached_truths: 11,
                queue_depth: 0,
                quarantined: vec![3, 8],
            },
            Response::Solved {
                weights: vec![2.0, 1.0],
                objective: 0.125,
                iterations: 7,
            },
            Response::Error {
                code: crate::error::code::OVERLOADED,
                message: "queue full".into(),
                hint: None,
            },
            Response::Error {
                code: crate::error::code::NOT_PRIMARY,
                message: "not the primary".into(),
                hint: Some(2),
            },
            Response::ReplAck {
                node: 1,
                epoch: 4,
                durable: 18,
                last_epoch: 3,
            },
            Response::CatchUpRecords {
                epoch: 4,
                commit: 17,
                snapshot: None,
                records: vec![vec![1, 2, 3], vec![]],
            },
            Response::CatchUpRecords {
                epoch: 4,
                commit: 17,
                snapshot: Some(vec![9; 32]),
                records: vec![],
            },
            Response::FollowerRead {
                lag: 2,
                inner: Response::Weights(vec![1.0, 0.5]).encode(),
            },
            Response::RouteTable {
                version: 3,
                shard: 1,
                ranges: vec![
                    ShardRange {
                        shard: 0,
                        start: 0,
                        end: 7,
                    },
                    ShardRange {
                        shard: 1,
                        start: 8,
                        end: u64::MAX,
                    },
                ],
            },
            Response::ProbeAck { nonce: 0xFEED_BEEF },
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn garbage_and_truncation_are_typed_protocol_errors() {
        assert!(matches!(
            Request::decode(&[200]),
            Err(ServeError::Protocol(_))
        ));
        let mut bytes = Request::Weights.encode();
        bytes.push(0xAB);
        assert!(matches!(
            Request::decode(&bytes),
            Err(ServeError::Protocol(_))
        ));
        let solve = Request::Solve {
            tol: 1e-6,
            max_iters: 10,
            claims: sample_claims(),
        }
        .encode();
        assert!(Request::decode(&solve[..solve.len() - 2]).is_err());
    }

    #[test]
    fn frames_roundtrip_and_reject_corruption() {
        let payload = Request::Status.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(got, payload);

        let mut corrupted = buf.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0x01;
        let err = read_frame(&mut corrupted.as_slice()).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    }

    #[test]
    fn oversized_frame_announcement_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    }
}
