//! A bounded MPSC work queue with typed overload rejection.
//!
//! The daemon's overload policy is *shed, don't buffer*: when the ingest
//! queue is full, [`BoundedQueue::try_push`] fails immediately with
//! [`ServeError::Overloaded`] instead of blocking the connection thread
//! or growing without bound. Memory held by queued work is therefore
//! `O(capacity)` no matter how fast clients push. The consumer side
//! blocks with a condition variable (plus timeout, so a worker can poll
//! its shutdown flag).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::error::ServeError;

/// A fixed-capacity FIFO queue shared between connection threads
/// (producers) and the fold worker (consumer).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Lock the queue state, recovering from poisoning. A poisoned
    /// mutex means a producer/consumer thread panicked mid-operation;
    /// the queue's state (a `VecDeque` plus a flag) is valid after any
    /// interrupted operation, and the daemon is crash-only — durable
    /// state lives in the WAL, so shedding a possibly part-enqueued
    /// item is strictly better than cascading the panic to every
    /// connection thread.
    fn locked(&self) -> MutexGuard<'_, Inner<T>> {
        // crh-lint: allow(unbounded-wait-in-serve) — in-process mutex over a VecDeque; no I/O under the guard, so the wait is bounded by local critical sections
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Create a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.locked().items.len()
    }

    /// Enqueue without blocking. Fails with [`ServeError::Overloaded`]
    /// when full and [`ServeError::ShuttingDown`] once closed.
    pub fn try_push(&self, item: T) -> Result<(), ServeError> {
        let mut inner = self.locked();
        if inner.closed {
            return Err(ServeError::ShuttingDown);
        }
        if inner.items.len() >= self.capacity {
            return Err(ServeError::Overloaded {
                capacity: self.capacity,
            });
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking up to `wait`. Returns `Ok(None)` on timeout (so
    /// the worker can poll its shutdown flag) and `Err(ShuttingDown)`
    /// once the queue is closed *and* drained.
    pub fn pop_timeout(&self, wait: Duration) -> Result<Option<T>, ServeError> {
        let mut inner = self.locked();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Ok(Some(item));
            }
            if inner.closed {
                return Err(ServeError::ShuttingDown);
            }
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(inner, wait)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if timeout.timed_out() {
                // one last check: an item may have landed between the
                // timeout and re-acquiring the lock
                return Ok(inner.items.pop_front());
            }
        }
    }

    /// Close the queue: producers are rejected, the consumer drains what
    /// remains and then sees `ShuttingDown`.
    pub fn close(&self) {
        self.locked().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_with_typed_overload() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let err = q.try_push(3).unwrap_err();
        assert!(
            matches!(err, ServeError::Overloaded { capacity: 2 }),
            "{err}"
        );
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn fifo_order_and_timeout() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), Some("a"));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), Some("b"));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), None);
    }

    #[test]
    fn close_drains_then_shuts_down() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err(ServeError::ShuttingDown)));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), Some(7));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(10)),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.pop_timeout(Duration::from_millis(200)) {
                        Ok(Some(x)) => got.push(x),
                        Ok(None) => {}
                        Err(_) => break,
                    }
                }
                got
            })
        };
        for i in 0..20 {
            // capacity 8: spin until the consumer makes room
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("{e}"),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
