//! WAL-shipping replication: a primary streams its log to followers and
//! acknowledges clients only after a quorum has fsync'd.
//!
//! A [`ReplicaNode`] is the transport-agnostic brain of one cluster
//! member. It is driven entirely by three entry points — [`handle`]
//! (an incoming replication frame), [`on_reply`] (the response to a
//! frame this node sent), and [`tick`] (the passage of logical time,
//! which emits the frames to send next) — so the same state machine runs
//! under the deterministic simulated network
//! ([`crate::failover::SimCluster`]) and the real TCP daemon
//! ([`crate::server::HaServer`]).
//!
//! The protocol is a deliberately small Raft-shaped design specialised
//! to the daemon's append-only chunk log:
//!
//! - **Log.** Chunk `seq` numbers are dense (`0, 1, 2, …`). Every node
//!   splits its log into a *folded* prefix (absorbed into [`ServeCore`],
//!   irreversible) and a *staged* tail (fsync'd in a separate staging
//!   WAL, still revocable). `durable = folded + staged`.
//! - **Commit.** The primary folds and acknowledges a chunk only once a
//!   quorum of nodes (itself included) reports the chunk durable *and
//!   verified consistent with its log* — so a fold can never later be
//!   contradicted. Followers fold only up to the commit bound the
//!   primary advertises, clamped to their verified prefix.
//! - **Election.** A follower that misses heartbeats for its (node-id
//!   staggered) timeout campaigns with a proposed `epoch`. Peers grant
//!   at most one campaign per epoch, reporting `(last_epoch, durable)`;
//!   the winner is the best `(last_epoch, durable)` with ties broken by
//!   the *lowest* node id ([`crate::failover::elect`]), which makes the
//!   promotion decision a pure function of the votes. Quorum
//!   intersection then gives the Raft leader-completeness property:
//!   every quorum-acked chunk is in the winner's log.
//! - **Durable election state.** The adopted epoch and the epoch of the
//!   last folded record are persisted atomically (`election.meta`)
//!   *before* any vote grant leaves the node and *before* any fold is
//!   irreversible — Raft's `currentTerm`/`votedFor`/entry-term rules.
//!   A crash-restart therefore can neither re-grant a vote in an epoch
//!   it already voted in nor under-report the election rank of records
//!   it committed.
//! - **Authentication.** Every replication frame carries the shared
//!   [`cluster_key`](ReplicaConfig::cluster_key) and is refused with a
//!   typed `Unauthenticated` error when the key is wrong, so a stray
//!   client that can reach the port cannot depose the primary, force
//!   elections, or inject log records.
//! - **Repair.** A deposed primary's unreplicated staged tail conflicts
//!   with the new primary's shipments at the same sequence numbers; the
//!   follower truncates the stale tail and accepts the authoritative
//!   bytes. A follower too far behind the primary's retention window is
//!   healed by a full snapshot transfer
//!   ([`ServeCore::install_snapshot`]) followed by the retained tail.
//!
//! [`handle`]: ReplicaNode::handle
//! [`on_reply`]: ReplicaNode::on_reply
//! [`tick`]: ReplicaNode::tick

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};

use crh_core::persist::{crc32, Dec, Enc};

use crate::core::{decode_chunk, encode_chunk, validate_claims, ApplyOutcome, ChunkClaim};
use crate::core::{ServeConfig, ServeCore};
use crate::error::ServeError;
use crate::failover::elect;
use crate::health::HealthMap;
use crate::proto::{Request, Response};
use crate::vfs::Vfs;
use crate::wal::Wal;

/// Sentinel `from` value in a catch-up request meaning "ship me the full
/// snapshot regardless of retention" — the read-repair path after the
/// scrubber quarantined a corrupt local artifact.
const FULL_RESYNC: u64 = u64::MAX;

/// What this node currently believes it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts client writes, assigns sequence numbers, ships the log.
    Primary,
    /// Applies shipped records, serves staleness-bounded reads.
    Follower,
    /// Campaigning after a heartbeat timeout.
    Candidate,
}

/// Cluster-membership and timing knobs for one replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// This node's id (ids also break election ties — lower wins).
    pub node_id: u32,
    /// The other members' ids.
    pub peers: Vec<u32>,
    /// Nodes (including the primary) that must hold a chunk durable
    /// before it commits. `1` with no peers degenerates to the
    /// standalone daemon.
    pub quorum: usize,
    /// Ticks between primary heartbeats / replication pushes.
    pub heartbeat_every: u64,
    /// Ticks of primary silence before a follower campaigns.
    pub heartbeat_timeout: u64,
    /// Records the primary retains for follower catch-up; beyond this a
    /// straggler gets a full snapshot instead.
    pub retention_cap: usize,
    /// Records shipped per peer per push.
    pub replicate_window: usize,
    /// Shared cluster key stamped on every replication frame this node
    /// sends and required on every replication frame it accepts, so a
    /// stray client that can reach the port cannot depose the primary,
    /// force elections, or inject log records. Every member of a
    /// cluster must use the same key.
    pub cluster_key: u64,
    /// Ticks between background scrub passes over the node's durable
    /// artifacts (WALs, snapshots, election meta). `0` disables the
    /// scrubber. A corrupt artifact is quarantined and repaired: a
    /// primary rewrites it from its authoritative in-memory state, a
    /// follower re-syncs from the quorum (read-repair).
    pub scrub_every: u64,
}

impl ReplicaConfig {
    /// Sensible defaults for `node_id` in a cluster of `all` ids.
    pub fn new(node_id: u32, all: &[u32]) -> Self {
        let peers: Vec<u32> = all.iter().copied().filter(|&n| n != node_id).collect();
        let quorum = all.len() / 2 + 1;
        Self {
            node_id,
            peers,
            quorum,
            heartbeat_every: 1,
            heartbeat_timeout: 5,
            retention_cap: 64,
            replicate_window: 4,
            cluster_key: 0,
            scrub_every: 0,
        }
    }

    /// Set the shared cluster key (all members must agree).
    pub fn cluster_key(mut self, key: u64) -> Self {
        self.cluster_key = key;
        self
    }

    /// Enable the background scrubber with this tick interval (0 = off).
    pub fn scrub_every(mut self, ticks: u64) -> Self {
        self.scrub_every = ticks;
        self
    }
}

// ---------------------------------------------------------------------
// Durable election state
// ---------------------------------------------------------------------

const META_MAGIC: [u8; 8] = *b"CRHELEC1";

/// The election state that must survive a crash, per Raft's persistence
/// rules: the highest epoch this node has ever adopted *or granted a
/// vote in* (`currentTerm`/`votedFor` — here a grant always bumps the
/// epoch, so one field covers both), and the epoch of the last record
/// folded into the core (the per-entry term of the log head, needed so
/// a restarted node's `(last_epoch, durable)` election rank reflects
/// what it actually committed instead of a conservative zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ElectionMeta {
    epoch: u64,
    last_folded_epoch: u64,
}

impl ElectionMeta {
    /// Load from `path` through the storage seam; a missing file is a
    /// genuinely new node (all zeros), but an unreadable or corrupt one
    /// is a typed refusal — guessing an epoch can grant a double vote.
    fn load(vfs: &Vfs, path: &Path) -> Result<Self, ServeError> {
        if !vfs.exists(path) {
            return Ok(Self::default());
        }
        decode_election_meta(&vfs.read(path)?)
    }

    /// Durably replace the file at `path`: write-to-temp, fsync, atomic
    /// rename, directory fsync (all inside [`Vfs::write_atomic`]) — the
    /// same discipline as snapshots, so a torn write can never surface
    /// as a half-updated epoch.
    fn save(self, vfs: &Vfs, path: &Path) -> Result<(), ServeError> {
        let mut e = Enc::new();
        e.u64(self.epoch);
        e.u64(self.last_folded_epoch);
        let payload = e.into_bytes();
        let mut bytes = Vec::with_capacity(META_MAGIC.len() + 4 + payload.len());
        bytes.extend_from_slice(&META_MAGIC);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        vfs.write_atomic(path, &bytes)
    }
}

/// Decode (and thereby CRC-verify) election-meta bytes.
fn decode_election_meta(bytes: &[u8]) -> Result<ElectionMeta, ServeError> {
    let corrupt = |reason| ServeError::WalCorrupt { offset: 0, reason };
    if bytes.len() < META_MAGIC.len() + 4 || !bytes.starts_with(&META_MAGIC) {
        return Err(corrupt("missing or wrong election meta header"));
    }
    let crc_at = META_MAGIC.len();
    let stored_crc = Dec::new(bytes.get(crc_at..).unwrap_or(&[])).u32()?;
    let payload = bytes.get(crc_at + 4..).unwrap_or(&[]);
    if crc32(payload) != stored_crc {
        return Err(corrupt("election meta CRC mismatch"));
    }
    let mut d = Dec::new(payload);
    let meta = ElectionMeta {
        epoch: d.u64()?,
        last_folded_epoch: d.u64()?,
    };
    if !d.is_exhausted() {
        return Err(corrupt("trailing bytes in election meta"));
    }
    Ok(meta)
}

/// Validate election-meta bytes without exposing the contents (the
/// scrubber's integrity check).
pub(crate) fn verify_election_meta(bytes: &[u8]) -> Result<(), ServeError> {
    decode_election_meta(bytes).map(|_| ())
}

/// One log record: its sequence number, the epoch of the primary that
/// (most recently) shipped it, and the exact WAL payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Staged {
    seq: u64,
    epoch: u64,
    payload: Vec<u8>,
}

fn staging_record(s: &Staged) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(s.seq);
    e.u64(s.epoch);
    e.bytes(&s.payload);
    e.into_bytes()
}

fn decode_staging_record(bytes: &[u8]) -> Result<Staged, ServeError> {
    let mut d = Dec::new(bytes);
    let seq = d.u64()?;
    let epoch = d.u64()?;
    let payload = d.bytes()?;
    if !d.is_exhausted() {
        return Err(ServeError::Protocol(
            "trailing bytes in staging record".into(),
        ));
    }
    Ok(Staged {
        seq,
        epoch,
        payload,
    })
}

/// One member of a replicated `crh-serve` cluster. See the module docs
/// for the protocol.
#[derive(Debug)]
pub struct ReplicaNode {
    cfg: ReplicaConfig,
    core: ServeCore,
    /// Durable-but-unfolded log tail, mirrored in `staging`.
    staged: VecDeque<Staged>,
    staging: Wal,
    /// Recent records (folded included) kept for follower catch-up.
    retention: VecDeque<Staged>,
    epoch: u64,
    role: Role,
    leader: Option<u32>,
    /// Highest quorum-committed sequence count (chunks `0..commit`).
    commit: u64,
    /// Prefix verified byte-consistent with the current primary's log
    /// (`== durable` on the primary itself).
    synced: u64,
    /// Epoch of the last folded record, persisted in the election meta
    /// file so a restarted node's election rank still reflects what it
    /// committed (mirrored in [`ElectionMeta::last_folded_epoch`]).
    last_folded_epoch: u64,
    /// Where the durable election state lives (`election.meta` in the
    /// node's state directory).
    meta_path: PathBuf,
    /// The node's state directory (the scrubber's walk root).
    serve_dir: PathBuf,
    /// The storage seam shared with the core (and with the chaos plan).
    vfs: Vfs,
    /// Tick of the last background scrub pass.
    last_scrub: u64,
    /// Set when the scrubber quarantined a local artifact this follower
    /// cannot rebuild from memory: the next catch-up requests a full
    /// snapshot from the primary (read-repair), which rewrites every
    /// durable artifact. Cleared once the snapshot installs.
    repair_resync: bool,
    last_heartbeat: u64,
    last_push: u64,
    /// The primary's advertised durable head (staleness bound for reads).
    primary_head: u64,
    /// Set when a frame revealed records this node is missing; cleared
    /// once the log is contiguous again.
    needs_catchup: bool,
    // primary-only (BTreeMap: iteration order feeds frame emission and
    // election maths, which must be deterministic under the simulator)
    match_synced: BTreeMap<u32, u64>,
    next_send: BTreeMap<u32, u64>,
    promote_pending: Vec<u32>,
    /// Per-peer EWMA reply latency (in ticks) feeding the slow-peer
    /// quarantine: the quorum never waits on a straggler, but routing
    /// layers use this to stop *preferring* one.
    peer_health: HealthMap,
    /// Tick at which the oldest still-unanswered frame to each peer was
    /// sent; a reply resolves it into a latency sample.
    sent_at: BTreeMap<u32, u64>,
    // candidate-only
    votes: BTreeMap<u32, (u64, u64)>,
    election_epoch: u64,
    election_deadline: u64,
}

/// What a node reopened from disk recovered.
#[derive(Debug)]
pub struct ReplicaRecovery {
    /// The underlying core's recovery report.
    pub core: crate::core::RecoveryReport,
    /// Staged (durable, unfolded) records recovered from the staging WAL.
    pub staged_records: u64,
}

impl ReplicaNode {
    /// Open (or create) a replica over the state directory in `serve`.
    /// The node rejoins as a follower at its *persisted* epoch — never
    /// lower, so it can neither re-grant a vote in an epoch it already
    /// voted in nor under-report the epoch of records it folded.
    pub fn open(
        cfg: ReplicaConfig,
        serve: ServeConfig,
    ) -> Result<(Self, ReplicaRecovery), ServeError> {
        let vfs = serve.vfs.clone();
        let serve_dir = serve.dir.clone();
        let staging_path = serve_dir.join("staging.wal");
        let meta_path = serve_dir.join("election.meta");
        let (core, core_report) = ServeCore::open(serve)?;
        let (mut staging, rec) = Wal::open(&staging_path, &vfs)?;
        let meta = ElectionMeta::load(&vfs, &meta_path)?;

        // Keep only the contiguous staged tail that extends the folded
        // prefix; anything else (already folded, or beyond a gap torn by
        // a crash mid-rebuild) is dropped and the file rewritten.
        let mut staged: VecDeque<Staged> = VecDeque::new();
        let mut expected = core.chunks_seen();
        let mut dropped = false;
        for bytes in &rec.records {
            let s = decode_staging_record(bytes)?;
            if s.seq < expected {
                dropped = true;
                continue;
            }
            if s.seq > expected {
                dropped = true;
                break;
            }
            expected += 1;
            staged.push_back(s);
        }
        if dropped {
            staging.truncate_all()?;
            for s in &staged {
                staging.append(&staging_record(s))?;
            }
        }

        let staged_records = staged.len() as u64;
        let commit = core.chunks_seen();
        let node = Self {
            retention: staged.iter().cloned().collect(),
            synced: commit,
            commit,
            staged,
            staging,
            core,
            epoch: meta.epoch,
            role: Role::Follower,
            leader: None,
            last_folded_epoch: meta.last_folded_epoch,
            meta_path,
            serve_dir,
            vfs,
            last_scrub: 0,
            repair_resync: false,
            last_heartbeat: 0,
            last_push: 0,
            primary_head: 0,
            needs_catchup: false,
            match_synced: BTreeMap::new(),
            next_send: BTreeMap::new(),
            promote_pending: Vec::new(),
            peer_health: HealthMap::default(),
            sent_at: BTreeMap::new(),
            votes: BTreeMap::new(),
            election_epoch: 0,
            election_deadline: 0,
            cfg,
        };
        Ok((
            node,
            ReplicaRecovery {
                core: core_report,
                staged_records,
            },
        ))
    }

    // ---- accessors -----------------------------------------------------

    /// This node's id.
    pub fn node_id(&self) -> u32 {
        self.cfg.node_id
    }

    /// The shared secret every trusted frame must carry.
    pub fn cluster_key(&self) -> u64 {
        self.cfg.cluster_key
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Chunks known quorum-committed (`0..commit`).
    pub fn commit(&self) -> u64 {
        self.commit
    }

    /// Chunks durable on this node (folded + staged).
    pub fn durable(&self) -> u64 {
        self.core.chunks_seen() + self.staged.len() as u64
    }

    /// Whether chunk `seq` is quorum-committed (safe to acknowledge).
    pub fn is_committed(&self, seq: u64) -> bool {
        seq < self.commit
    }

    /// Where a rejected client should try instead, if known.
    pub fn leader_hint(&self) -> Option<u32> {
        self.leader.filter(|&l| l != self.cfg.node_id)
    }

    /// Staleness bound for reads served here: how many chunks this node
    /// lags the primary's last advertised durable head (0 on a primary).
    pub fn lag(&self) -> u64 {
        if self.role == Role::Primary {
            0
        } else {
            self.primary_head.saturating_sub(self.core.chunks_seen())
        }
    }

    /// The folded truth-discovery state (for reads).
    pub fn core(&self) -> &ServeCore {
        &self.core
    }

    /// Per-peer reply-latency scores (EWMA / p95 / quarantine state),
    /// sampled from the replication traffic this node already sends.
    pub fn peer_health(&self) -> &HealthMap {
        &self.peer_health
    }

    /// How many cluster members are known to hold chunk `seq` durable
    /// and leader-consistent (this node's own log included).
    pub fn ack_count(&self, seq: u64) -> usize {
        let own = usize::from(self.synced > seq);
        own + self
            .cfg
            .peers
            .iter()
            .filter(|p| self.match_synced.get(p).is_some_and(|&m| m > seq))
            .count()
    }

    /// The configured commit quorum.
    pub fn quorum(&self) -> usize {
        self.cfg.quorum
    }

    /// Force a snapshot of the folded state (clean-shutdown path).
    pub fn snapshot_now(&mut self) -> Result<(), ServeError> {
        self.core.snapshot_now()
    }

    /// Seed a *virgin* member of a freshly-split shard group with the
    /// donor's committed state: install the snapshot (if any), fold each
    /// committed record, and adopt the result as this node's durable,
    /// quorum-committed prefix. Returns the seeded head.
    ///
    /// Refused with a typed error once the node holds any state — a
    /// split stages strictly before the new group serves its first
    /// write, so a crash mid-seed leaves a partially-seeded core the
    /// coordinator simply wipes and re-stages (the cutover record is
    /// written only after every member acked its seed).
    pub fn seed_split(
        &mut self,
        snapshot: Option<&[u8]>,
        records: &[Vec<u8>],
    ) -> Result<u64, ServeError> {
        if self.durable() != 0 || self.commit != 0 {
            return Err(ServeError::Protocol(format!(
                "split-stage refused: node {} already holds state (durable {}, committed {})",
                self.cfg.node_id,
                self.durable(),
                self.commit
            )));
        }
        if let Some(snap) = snapshot {
            self.core.install_snapshot(snap)?;
        }
        for payload in records {
            match self.core.apply_replicated(payload)? {
                ApplyOutcome::Applied(_) | ApplyOutcome::AlreadyApplied => {}
                ApplyOutcome::Gap { expected } => {
                    return Err(ServeError::Protocol(format!(
                        "gap in split-stage records: expected seq {expected}"
                    )));
                }
            }
        }
        let head = self.core.chunks_seen();
        self.synced = head;
        self.commit = head;
        self.primary_head = head;
        Ok(head)
    }

    /// Digest of the folded state (replica-divergence checks).
    pub fn state_digest(&self) -> u64 {
        self.core.state_digest()
    }

    /// The epoch of this node's newest durable record (its election
    /// rank, together with [`durable`](Self::durable)). Derived from the
    /// staged tail when there is one, else from the persisted epoch of
    /// the last folded record — so it survives restarts.
    pub fn last_epoch(&self) -> u64 {
        self.staged
            .back()
            .map_or(self.last_folded_epoch, |s| s.epoch)
    }

    /// Whether it is safe to acknowledge the write this node staged at
    /// `seq` while it was primary in `epoch`. Quorum commit alone is not
    /// enough: if the node was deposed after staging, a new primary may
    /// have committed a *different* record at the same sequence — the
    /// client's bytes were discarded and must be retried, not acked. A
    /// primary's own log can only be truncated by deposition, so "still
    /// primary in the same epoch" guarantees the committed record at
    /// `seq` is the one the client staged.
    pub fn ack_safe(&self, seq: u64, epoch: u64) -> bool {
        self.role == Role::Primary && self.epoch == epoch && self.is_committed(seq)
    }

    /// Durably record the current `(epoch, last_folded_epoch)` pair.
    /// Every call site completes this *before* releasing a frame or
    /// reply that acts on the new value — the Raft persistence rule for
    /// `currentTerm`/`votedFor`.
    fn persist_meta(&self) -> Result<(), ServeError> {
        ElectionMeta {
            epoch: self.epoch,
            last_folded_epoch: self.last_folded_epoch,
        }
        .save(&self.vfs, &self.meta_path)
    }

    fn election_timeout(&self) -> u64 {
        // deterministic node-id stagger: lower ids campaign first, so
        // concurrent elections are the exception, not the rule
        self.cfg.heartbeat_timeout + 2 * u64::from(self.cfg.node_id)
    }

    // ---- client path ---------------------------------------------------

    /// Accept a client chunk: validate, assign the next sequence number,
    /// stage it durably, and return the sequence. The chunk is *not yet
    /// committed* — poll [`is_committed`](Self::is_committed) (the
    /// commit advances as acks arrive) before acknowledging the client.
    pub fn client_ingest(&mut self, claims: &[ChunkClaim]) -> Result<u64, ServeError> {
        if self.role != Role::Primary {
            return Err(ServeError::NotPrimary {
                hint: self.leader_hint(),
            });
        }
        if claims.is_empty() {
            return Err(ServeError::InvalidChunk {
                source: None,
                reason: "empty chunk".into(),
            });
        }
        validate_claims(self.core.schema(), claims)
            .map_err(|(source, reason)| ServeError::InvalidChunk { source, reason })?;
        let seq = self.durable();
        let entry = Staged {
            seq,
            epoch: self.epoch,
            payload: encode_chunk(seq, claims),
        };
        self.staging
            .append(&staging_record(&entry))
            .map_err(|e| self.depose_if_degraded(e))?;
        self.push_retention(entry.clone());
        self.staged.push_back(entry);
        self.synced = seq + 1;
        self.advance_commit()
            .map_err(|e| self.depose_if_degraded(e))?;
        Ok(seq)
    }

    // ---- time ----------------------------------------------------------

    /// Advance logical time to `now` and return the frames to send.
    pub fn tick(&mut self, now: u64) -> Result<Vec<(u32, Request)>, ServeError> {
        let mut out = Vec::new();
        if self.cfg.scrub_every > 0 && now.saturating_sub(self.last_scrub) >= self.cfg.scrub_every {
            self.last_scrub = now;
            // Scrub failures are advisory (the pass re-runs next interval),
            // but a dying disk discovered here must still depose a primary.
            if let Err(e) = self.scrub_and_repair() {
                let _ = self.depose_if_degraded(e);
            }
        }
        // Gray analogue of `depose_if_degraded`: a primary whose disk
        // still answers but has turned chronically slow would drag every
        // quorum ack behind its own fsyncs. Step aside so a healthy
        // replica wins the next election (`start_election` refuses to
        // campaign while slow, so this node cannot immediately win it
        // back).
        if self.role == Role::Primary && self.vfs.is_slow() {
            self.step_down(None);
        }
        match self.role {
            Role::Primary => {
                for p in std::mem::take(&mut self.promote_pending) {
                    out.push((
                        p,
                        Request::Promote {
                            token: self.cfg.cluster_key,
                            epoch: self.epoch,
                            node: self.cfg.node_id,
                            head: self.durable(),
                        },
                    ));
                }
                if now.saturating_sub(self.last_push) >= self.cfg.heartbeat_every {
                    self.last_push = now;
                    for &p in &self.cfg.peers {
                        // the oldest unanswered frame per peer anchors
                        // its latency sample; re-sends don't reset it,
                        // so a straggler's score reflects how long its
                        // *first* chance to reply has been outstanding
                        self.sent_at.entry(p).or_insert(now);
                        let from = *self.next_send.get(&p).unwrap_or(&self.commit);
                        let recs = self.retained_from(from, self.cfg.replicate_window);
                        if recs.is_empty() {
                            out.push((
                                p,
                                Request::Heartbeat {
                                    token: self.cfg.cluster_key,
                                    epoch: self.epoch,
                                    node: self.cfg.node_id,
                                    commit: self.commit,
                                    head: self.durable(),
                                },
                            ));
                        } else {
                            for s in recs {
                                out.push((
                                    p,
                                    Request::Replicate {
                                        token: self.cfg.cluster_key,
                                        epoch: self.epoch,
                                        node: self.cfg.node_id,
                                        seq: s.seq,
                                        commit: self.commit,
                                        record: s.payload,
                                    },
                                ));
                            }
                        }
                    }
                }
            }
            Role::Follower => {
                if self.needs_catchup {
                    if let Some(l) = self.leader_hint() {
                        let from = if self.repair_resync {
                            FULL_RESYNC
                        } else {
                            self.synced
                        };
                        out.push((
                            l,
                            Request::CatchUp {
                                token: self.cfg.cluster_key,
                                epoch: self.epoch,
                                from,
                            },
                        ));
                    }
                }
                if now.saturating_sub(self.last_heartbeat) > self.election_timeout() {
                    self.start_election(now, &mut out)?;
                }
            }
            Role::Candidate => {
                if now >= self.election_deadline {
                    self.start_election(now, &mut out)?;
                }
            }
        }
        Ok(out)
    }

    // ---- incoming frames -----------------------------------------------

    /// Process one replication frame from peer `from` at time `now`.
    /// Frames carrying the wrong cluster key are refused before any
    /// state is touched; non-replication frames get a typed protocol
    /// error.
    pub fn handle(&mut self, from: u32, req: &Request, now: u64) -> Response {
        match req {
            Request::Replicate { token, .. }
            | Request::Heartbeat { token, .. }
            | Request::CatchUp { token, .. }
            | Request::Promote { token, .. }
            | Request::SeqQuery { token, .. }
                if *token != self.cfg.cluster_key =>
            {
                return Response::from_error(&ServeError::Unauthenticated);
            }
            _ => {}
        }
        let result = match req {
            Request::Replicate {
                epoch,
                node,
                seq,
                commit,
                record,
                ..
            } => {
                debug_assert_eq!(*node, from, "frame relayed from the wrong peer");
                self.on_replicate(from, *epoch, *seq, *commit, record, now)
            }
            Request::Heartbeat {
                epoch,
                node,
                commit,
                head,
                ..
            } => {
                debug_assert_eq!(*node, from, "frame relayed from the wrong peer");
                self.on_heartbeat(from, *epoch, *commit, *head, now)
            }
            Request::CatchUp {
                epoch, from: seq, ..
            } => return self.on_catch_up(*epoch, *seq),
            Request::Promote {
                epoch, node, head, ..
            } => self.on_promote(*epoch, *node, *head, now),
            Request::SeqQuery { epoch, .. } => return self.on_seq_query(*epoch, now),
            _ => Err(ServeError::Protocol(
                "client frame routed to the replication handler".into(),
            )),
        };
        match result {
            Ok(()) => self.ack(),
            Err(e) => Response::from_error(&e),
        }
    }

    fn ack(&self) -> Response {
        // crh-lint: allow(ack-before-sync) — pure constructor: every handler that returns this ack has already fsynced its durable mutation (staging append or election-meta save)
        Response::ReplAck {
            node: self.cfg.node_id,
            epoch: self.epoch,
            durable: self.synced,
            last_epoch: self.last_epoch(),
        }
    }

    /// Accept `from` as the epoch-`epoch` leader, or refuse with
    /// `StaleEpoch`. Same-epoch primary/primary conflicts resolve to the
    /// lower node id.
    fn observe_leader(&mut self, from: u32, epoch: u64, now: u64) -> Result<(), ServeError> {
        if epoch < self.epoch
            || (epoch == self.epoch && self.role == Role::Primary && self.cfg.node_id < from)
        {
            return Err(ServeError::StaleEpoch {
                got: epoch,
                current: self.epoch,
            });
        }
        if epoch > self.epoch || self.leader != Some(from) || self.role != Role::Follower {
            let adopted = epoch > self.epoch;
            self.epoch = epoch;
            self.step_down(Some(from));
            // the verified prefix must be re-established per leader; the
            // folded prefix is committed and therefore always consistent
            self.synced = self.core.chunks_seen();
            if adopted {
                // durable before the ack leaves: a restart must never
                // regress the epoch and re-enable a vote below it
                self.persist_meta()?;
            }
        }
        self.last_heartbeat = now;
        Ok(())
    }

    fn step_down(&mut self, leader: Option<u32>) {
        self.role = Role::Follower;
        self.leader = leader;
        self.votes.clear();
        self.match_synced.clear();
        self.next_send.clear();
        self.promote_pending.clear();
        // drop in-flight latency anchors: a reply drifting in after a
        // later re-promotion must not be scored against this reign
        self.sent_at.clear();
    }

    /// A primary whose disk has latched sticky-bad can no longer make
    /// writes durable, so it must stop acking and get out of the way:
    /// self-depose so a healthy replica wins the next election. The error
    /// is passed through either way — the caller's write still failed.
    fn depose_if_degraded(&mut self, e: ServeError) -> ServeError {
        if matches!(e, ServeError::DiskDegraded { .. }) && self.role == Role::Primary {
            self.step_down(None);
        }
        e
    }

    /// Walk every durable artifact in this node's state directory and
    /// verify its CRCs ([`crate::scrub::scrub_dir`]); repair whatever is
    /// corrupt. Artifacts rebuildable from memory (election meta, the
    /// staging log, and — on a primary — the core's WAL/snapshots via a
    /// fresh checkpoint) are rewritten in place; anything a follower
    /// cannot rebuild locally is quarantined and flagged for a full
    /// snapshot re-sync from the quorum (read-repair). Runs on the tick
    /// cadence set by [`ReplicaConfig::scrub_every`]; also callable
    /// directly by tests and operators.
    pub fn scrub_and_repair(&mut self) -> Result<crate::scrub::ScrubReport, ServeError> {
        let report = crate::scrub::scrub_dir(&self.serve_dir, &self.vfs)?;
        let mut rewrite_meta = false;
        let mut rewrite_staging = false;
        let mut rewrite_core = false;
        for f in &report.findings {
            let name = f.path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            match name {
                "election.meta" => {
                    // no open handle: safe to quarantine, then rewrite
                    // from the authoritative in-memory election state
                    crate::scrub::quarantine(&self.vfs, &f.path)?;
                    rewrite_meta = true;
                }
                // the staging WAL has an open handle — quarantining
                // (renaming) it would redirect that handle to the
                // quarantine file; rebuild it in place instead
                "staging.wal" => rewrite_staging = true,
                // likewise the live ingest WAL is owned (and held open)
                // by the core; retiring it is the core's job — a fresh
                // checkpoint rotates it away
                "ingest.wal" => rewrite_core = true,
                "snapshot.crh" | "snapshot.prev.crh" | "ingest.prev.wal" => {
                    crate::scrub::quarantine(&self.vfs, &f.path)?;
                    rewrite_core = true;
                }
                _ => {} // already-quarantined debris, tmp files, unknowns
            }
        }
        if rewrite_meta {
            self.persist_meta()?;
        }
        if rewrite_staging {
            self.rebuild_staging()?;
        }
        if rewrite_core {
            if self.role == Role::Primary {
                // the primary's memory is authoritative: a fresh
                // checkpoint rewrites the snapshot and rotates the WAL,
                // retiring every corrupt core artifact
                self.core.snapshot_now()?;
            } else {
                // a follower's memory may trail the quorum — pull the
                // full folded state from the primary instead
                self.repair_resync = true;
                self.needs_catchup = true;
            }
        }
        Ok(report)
    }

    fn on_replicate(
        &mut self,
        from: u32,
        epoch: u64,
        seq: u64,
        commit: u64,
        record: &[u8],
        now: u64,
    ) -> Result<(), ServeError> {
        self.observe_leader(from, epoch, now)?;
        self.primary_head = self.primary_head.max(seq + 1);
        self.accept_record(epoch, seq, record)?;
        self.advance_follower_commit(commit)
    }

    fn on_heartbeat(
        &mut self,
        from: u32,
        epoch: u64,
        commit: u64,
        head: u64,
        now: u64,
    ) -> Result<(), ServeError> {
        self.observe_leader(from, epoch, now)?;
        self.primary_head = head;
        if head > self.durable() {
            self.needs_catchup = true;
        }
        self.advance_follower_commit(commit)
    }

    fn on_promote(&mut self, epoch: u64, node: u32, head: u64, now: u64) -> Result<(), ServeError> {
        self.observe_leader(node, epoch, now)?;
        self.primary_head = head;
        if head > self.durable() {
            self.needs_catchup = true;
        }
        Ok(())
    }

    fn on_seq_query(&mut self, epoch: u64, now: u64) -> Response {
        if self.vfs.is_slow() {
            // A slow-disk node sits elections out entirely: it neither
            // campaigns (`start_election`) nor *stands*. Granting with
            // its true rank would make it the winner of every tally it
            // ties (lower-id tie-break) — a winner that never claims the
            // reign, deadlocking the election. Refusing the vote is the
            // conservative direction: the candidate must then reach
            // quorum through fast members only, and any committed record
            // lives on at least one of those. (A sticky-dead disk lands
            // in the same refusal below when the vote write fails.)
            return Response::from_error(&ServeError::DiskDegraded { op: "vote grant" });
        }
        // grant at most one campaign per epoch, and none while the
        // current leader is still audible (pre-vote-style stability)
        let leader_live = self.role == Role::Primary
            || (self.leader.is_some()
                && now.saturating_sub(self.last_heartbeat) <= self.cfg.heartbeat_timeout);
        if epoch <= self.epoch || leader_live {
            return Response::from_error(&ServeError::StaleEpoch {
                got: epoch,
                current: self.epoch,
            });
        }
        self.epoch = epoch;
        self.step_down(None);
        // the grant IS the vote: it must hit disk before the reply, or a
        // crash-restart could grant again in the same epoch (two
        // primaries per epoch). On a failed write, refuse the vote — the
        // in-memory epoch stays bumped, which is only ever conservative.
        if let Err(e) = self.persist_meta() {
            return Response::from_error(&e);
        }
        Response::ReplAck {
            node: self.cfg.node_id,
            epoch: self.epoch,
            durable: self.durable(),
            last_epoch: self.last_epoch(),
        }
    }

    fn on_catch_up(&mut self, epoch: u64, from_seq: u64) -> Response {
        if self.role != Role::Primary {
            return Response::from_error(&ServeError::NotPrimary {
                hint: self.leader_hint(),
            });
        }
        if epoch != self.epoch {
            return Response::from_error(&ServeError::StaleEpoch {
                got: epoch,
                current: self.epoch,
            });
        }
        let base = self.retention.front().map_or(self.durable(), |s| s.seq);
        let (snapshot, from_seq) = if from_seq == FULL_RESYNC {
            // explicit read-repair request: the follower found local rot it
            // cannot rebuild, so ship the full folded state unconditionally
            (Some(self.core.checkpoint_bytes()), self.core.chunks_seen())
        } else if from_seq >= base {
            (None, from_seq)
        } else {
            // the request predates retention: ship the full folded state,
            // then every retained record past it
            (Some(self.core.checkpoint_bytes()), self.core.chunks_seen())
        };
        let records = self
            .retention
            .iter()
            .filter(|s| s.seq >= from_seq)
            .take(self.cfg.retention_cap)
            .map(|s| s.payload.clone())
            .collect();
        Response::CatchUpRecords {
            epoch: self.epoch,
            commit: self.commit,
            snapshot,
            records,
        }
    }

    // ---- replies to frames this node sent ------------------------------

    /// Feed back the response peer `responder` gave to a frame this node
    /// sent (via [`tick`](Self::tick)).
    pub fn on_reply(
        &mut self,
        responder: u32,
        resp: &Response,
        now: u64,
    ) -> Result<(), ServeError> {
        if let Some(t) = self.sent_at.remove(&responder) {
            self.peer_health
                .record(responder, now.saturating_sub(t), now);
        }
        match resp {
            // crh-lint: allow(ack-before-sync) — pattern-matches an incoming ack from a peer; nothing is constructed or sent here
            Response::ReplAck {
                node,
                epoch,
                durable,
                last_epoch,
            } => {
                debug_assert_eq!(*node, responder, "reply relayed from the wrong peer");
                // a vote grant echoes the *proposed* epoch — only an
                // epoch beyond what this node has put in play deposes it
                let in_play = if self.role == Role::Candidate {
                    self.epoch.max(self.election_epoch)
                } else {
                    self.epoch
                };
                if *epoch > in_play {
                    self.epoch = *epoch;
                    self.step_down(None);
                    self.persist_meta()?;
                    return Ok(());
                }
                match self.role {
                    Role::Primary => {
                        let m = self.match_synced.entry(responder).or_insert(0);
                        *m = (*m).max(*durable);
                        self.next_send.insert(responder, *durable);
                        self.advance_commit()?;
                    }
                    Role::Candidate => {
                        if *epoch == self.election_epoch {
                            self.votes.insert(responder, (*last_epoch, *durable));
                            self.maybe_win(now)?;
                        }
                    }
                    Role::Follower => {}
                }
            }
            Response::CatchUpRecords {
                epoch,
                commit,
                snapshot,
                records,
            } => {
                if *epoch != self.epoch || self.role != Role::Follower {
                    return Ok(());
                }
                if let Some(snap) = snapshot {
                    self.core.install_snapshot(snap)?;
                    self.staged.clear();
                    self.staging.truncate_all()?;
                    self.retention.clear();
                    self.synced = self.core.chunks_seen();
                    self.commit = self.core.chunks_seen();
                    self.last_folded_epoch = *epoch;
                    self.persist_meta()?;
                    // every durable artifact was just rewritten from the
                    // quorum's state: the read-repair is complete
                    self.repair_resync = false;
                }
                self.needs_catchup = false;
                for r in records {
                    let (seq, _) = decode_chunk(r)?;
                    self.accept_record(*epoch, seq, r)?;
                }
                self.advance_follower_commit(*commit)?;
            }
            Response::Error { code, .. }
                if *code == crate::error::code::STALE_EPOCH && self.role != Role::Follower =>
            {
                // a peer knows a newer epoch than ours; stop acting
                // on stale authority and wait to be taught
                self.step_down(None);
            }
            _ => {}
        }
        Ok(())
    }

    // ---- log maintenance -----------------------------------------------

    /// Integrate the record for `seq` (shipped under `epoch`) into the
    /// staged tail: duplicate deliveries are no-ops, gaps flag catch-up,
    /// and a conflicting stale tail is truncated in favour of the
    /// current primary's bytes.
    fn accept_record(&mut self, epoch: u64, seq: u64, payload: &[u8]) -> Result<(), ServeError> {
        if seq < self.synced {
            return Ok(()); // duplicate of a verified record
        }
        if seq > self.synced {
            self.needs_catchup = true;
            return Ok(());
        }
        let idx = (seq - self.core.chunks_seen()) as usize;
        if let Some(existing) = self.staged.get_mut(idx) {
            if existing.payload == payload {
                existing.epoch = epoch;
                self.synced = seq + 1;
                self.needs_catchup = false;
                return Ok(());
            }
            // stale tail from a deposed primary: truncate it (staging
            // WAL and catch-up retention included) before accepting the
            // authoritative record
            self.staged.truncate(idx);
            self.retention.retain(|s| s.seq < seq);
            self.rebuild_staging()?;
        }
        debug_assert_eq!(idx, self.staged.len());
        let entry = Staged {
            seq,
            epoch,
            payload: payload.to_vec(),
        };
        self.staging.append(&staging_record(&entry))?;
        self.push_retention(entry.clone());
        self.staged.push_back(entry);
        self.synced = seq + 1;
        self.needs_catchup = false;
        Ok(())
    }

    fn rebuild_staging(&mut self) -> Result<(), ServeError> {
        self.staging.truncate_all()?;
        for s in &self.staged {
            self.staging.append(&staging_record(s))?;
        }
        Ok(())
    }

    fn push_retention(&mut self, entry: Staged) {
        self.retention.push_back(entry);
        let folded = self.core.chunks_seen();
        while self.retention.len() > self.cfg.retention_cap
            && self.retention.front().is_some_and(|s| s.seq < folded)
        {
            self.retention.pop_front();
        }
    }

    /// Fold staged records into the core up to the commit bound. Only
    /// ever called with `commit <= synced`, so a fold is final.
    fn fold_to_commit(&mut self) -> Result<(), ServeError> {
        // The election rank this fold establishes must be durable
        // *before* the fold is: fold first and crash, and the node
        // restarts holding committed records from epoch E while claiming
        // an older last_epoch — a stale shorter log could then out-rank
        // it and win away quorum-acked writes. Claiming first is safe
        // because the records stay in the staging WAL until the rebuild
        // below, so `last_epoch()` still reports E either way.
        let will_fold =
            (self.commit.saturating_sub(self.core.chunks_seen()) as usize).min(self.staged.len());
        if let Some(tail) = will_fold.checked_sub(1).and_then(|i| self.staged.get(i)) {
            let target = tail.epoch;
            if target != self.last_folded_epoch {
                ElectionMeta {
                    epoch: self.epoch,
                    last_folded_epoch: target,
                }
                .save(&self.vfs, &self.meta_path)?;
            }
        }
        let mut folded = false;
        while self.core.chunks_seen() < self.commit {
            let Some(entry) = self.staged.front() else {
                break;
            };
            debug_assert_eq!(entry.seq, self.core.chunks_seen());
            match self.core.apply_replicated(&entry.payload)? {
                ApplyOutcome::Applied(_) | ApplyOutcome::AlreadyApplied => {}
                ApplyOutcome::Gap { .. } => break,
            }
            if let Some(entry) = self.staged.pop_front() {
                self.last_folded_epoch = entry.epoch;
            }
            folded = true;
        }
        if folded {
            self.rebuild_staging()?;
        }
        Ok(())
    }

    /// Primary: recompute the commit bound as the quorum-th largest
    /// verified-durable count (its own log counts as one vote).
    fn advance_commit(&mut self) -> Result<(), ServeError> {
        let mut counts: Vec<u64> = vec![self.durable()];
        for p in &self.cfg.peers {
            counts.push(*self.match_synced.get(p).unwrap_or(&0));
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let q = self.cfg.quorum.clamp(1, counts.len());
        let candidate = counts.get(q - 1).copied().unwrap_or(0).min(self.durable());
        if candidate > self.commit {
            self.commit = candidate;
        }
        self.fold_to_commit()
    }

    /// Follower: adopt the primary's commit bound, clamped to the
    /// verified prefix (never fold an unverified record).
    fn advance_follower_commit(&mut self, commit: u64) -> Result<(), ServeError> {
        let bounded = commit.min(self.synced);
        if bounded > self.commit {
            self.commit = bounded;
        }
        self.fold_to_commit()
    }

    // ---- elections -----------------------------------------------------

    fn start_election(
        &mut self,
        now: u64,
        out: &mut Vec<(u32, Request)>,
    ) -> Result<(), ServeError> {
        if self.vfs.is_sticky() || self.vfs.is_slow() {
            // A node on a dead disk cannot durably persist a vote or an
            // epoch, so it must never campaign: it stays a read-only
            // follower until the disk (i.e. the process) is replaced.
            // A *slow* disk is the gray version of the same hazard — a
            // primary that wins on it drags every quorum ack behind its
            // own fsyncs, so it sits elections out too.
            self.last_heartbeat = now;
            return Ok(());
        }
        self.role = Role::Candidate;
        self.leader = None;
        self.election_epoch = self.epoch.max(self.election_epoch) + 1;
        self.election_deadline = now + self.election_timeout();
        self.last_heartbeat = now;
        self.votes.clear();
        self.votes
            .insert(self.cfg.node_id, (self.last_epoch(), self.durable()));
        for &p in &self.cfg.peers {
            out.push((
                p,
                Request::SeqQuery {
                    token: self.cfg.cluster_key,
                    epoch: self.election_epoch,
                },
            ));
        }
        self.maybe_win(now)
    }

    fn maybe_win(&mut self, now: u64) -> Result<(), ServeError> {
        if self.role != Role::Candidate || self.votes.len() < self.cfg.quorum {
            return Ok(());
        }
        if elect(&self.votes) == Some(self.cfg.node_id) {
            self.become_primary(now)?;
        }
        Ok(())
    }

    fn become_primary(&mut self, now: u64) -> Result<(), ServeError> {
        self.epoch = self.election_epoch;
        self.role = Role::Primary;
        self.leader = Some(self.cfg.node_id);
        self.synced = self.durable();
        // the won epoch must be durable before the first frame of this
        // reign leaves the node
        self.persist_meta()?;
        // the winner's log is now the authoritative history; staged
        // records are re-shipped (and re-counted towards commit) under
        // the new epoch rather than folded outright, so commitment still
        // always flows through a quorum
        for s in &mut self.staged {
            s.epoch = self.epoch;
        }
        // the re-stamp must reach the staging WAL too, or a restart
        // would recover the tail under its pre-election epochs
        self.rebuild_staging()?;
        self.votes.clear();
        self.match_synced.clear();
        self.sent_at.clear();
        for &p in &self.cfg.peers {
            self.next_send.insert(p, self.commit);
        }
        self.promote_pending = self.cfg.peers.clone();
        self.needs_catchup = false;
        self.last_push = now;
        self.advance_commit()
    }

    fn retained_from(&self, from: u64, cap: usize) -> Vec<Staged> {
        self.retention
            .iter()
            .filter(|s| s.seq >= from)
            .take(cap)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crh_core::schema::Schema;
    use crh_core::value::Value;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_continuous("temperature");
        s.add_continuous("humidity");
        s
    }

    fn dir(tag: &str, node: u32) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("crh_repl_{tag}_{node}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn chunk(step: u64) -> Vec<ChunkClaim> {
        (0..3u32)
            .map(|s| ChunkClaim {
                object: (step % 5) as u32,
                property: (s % 2),
                source: s,
                value: Value::Num(10.0 + step as f64 + f64::from(s) * 0.25),
            })
            .collect()
    }

    fn node(tag: &str, id: u32, all: &[u32]) -> ReplicaNode {
        let d = dir(tag, id);
        ReplicaNode::open(
            ReplicaConfig::new(id, all),
            ServeConfig::new(schema(), 0.5, d),
        )
        .unwrap()
        .0
    }

    #[test]
    fn standalone_quorum_of_one_commits_immediately() {
        let mut n = node("solo", 0, &[0]);
        // no peers: a single open() follower must still self-promote
        let frames = n.tick(100).unwrap();
        assert!(frames.is_empty(), "no peers to talk to: {frames:?}");
        assert_eq!(n.role(), Role::Primary);
        let seq = n.client_ingest(&chunk(0)).unwrap();
        assert!(n.is_committed(seq));
        assert_eq!(n.core().chunks_seen(), 1);
    }

    #[test]
    fn follower_rejects_client_writes_with_leader_hint() {
        let mut f = node("hint", 2, &[0, 1, 2]);
        let resp = f.handle(
            0,
            &Request::Heartbeat {
                token: 0,
                epoch: 3,
                node: 0,
                commit: 0,
                head: 0,
            },
            1,
        );
        assert!(
            matches!(resp, Response::ReplAck { epoch: 3, .. }),
            "{resp:?}"
        );
        let err = f.client_ingest(&chunk(0)).unwrap_err();
        assert!(
            matches!(err, ServeError::NotPrimary { hint: Some(0) }),
            "{err}"
        );
    }

    #[test]
    fn replicate_then_commit_folds_on_the_follower() {
        let mut p = node("ship_p", 0, &[0, 1]);
        let mut f = node("ship_f", 1, &[0, 1]);
        // election timeout → self-campaign, probing the peer
        let frames = p.tick(100).unwrap();
        let q = frames
            .iter()
            .find(|(_, r)| matches!(r, Request::SeqQuery { .. }));
        let (_, query) = q.expect("candidate probes its peer");
        let vote = f.handle(0, query, 100);
        p.on_reply(1, &vote, 100).unwrap();
        assert_eq!(p.role(), Role::Primary);

        let seq = p.client_ingest(&chunk(0)).unwrap();
        assert!(!p.is_committed(seq), "quorum of 2 needs the follower");

        // one push/ack round replicates; a second propagates the commit
        for now in 101..104 {
            for (dest, req) in p.tick(now).unwrap() {
                assert_eq!(dest, 1);
                let resp = f.handle(0, &req, now);
                p.on_reply(1, &resp, now).unwrap();
            }
        }
        assert!(p.is_committed(seq));
        assert_eq!(p.core().chunks_seen(), 1);
        assert_eq!(f.core().chunks_seen(), 1);
        assert_eq!(p.state_digest(), f.state_digest());
    }

    #[test]
    fn stale_epoch_frames_are_rejected() {
        let mut f = node("stale", 1, &[0, 1, 2]);
        f.handle(
            0,
            &Request::Heartbeat {
                token: 0,
                epoch: 5,
                node: 0,
                commit: 0,
                head: 0,
            },
            1,
        );
        let resp = f.handle(
            2,
            &Request::Replicate {
                token: 0,
                epoch: 4,
                node: 2,
                seq: 0,
                commit: 0,
                record: encode_chunk(0, &chunk(0)),
            },
            2,
        );
        match resp {
            Response::Error { code, .. } => {
                assert_eq!(code, crate::error::code::STALE_EPOCH);
            }
            other => panic!("expected stale-epoch error, got {other:?}"),
        }
    }

    #[test]
    fn seq_query_grants_at_most_once_per_epoch() {
        let mut f = node("grant", 2, &[0, 1, 2]);
        // leader long silent (never heard one), so grants are allowed
        let first = f.handle(0, &Request::SeqQuery { token: 0, epoch: 7 }, 50);
        assert!(matches!(first, Response::ReplAck { .. }), "{first:?}");
        let second = f.handle(1, &Request::SeqQuery { token: 0, epoch: 7 }, 50);
        assert!(
            matches!(second, Response::Error { code, .. }
                if code == crate::error::code::STALE_EPOCH),
            "{second:?}"
        );
    }

    #[test]
    fn staged_tail_survives_restart() {
        let all = [0u32, 1];
        let d = dir("restage", 1);
        let serve = ServeConfig::new(schema(), 0.5, &d);
        {
            let (mut f, _) = ReplicaNode::open(ReplicaConfig::new(1, &all), serve.clone()).unwrap();
            // two records arrive but only the first commits
            for seq in 0..2 {
                let r = Request::Replicate {
                    token: 0,
                    epoch: 1,
                    node: 0,
                    seq,
                    commit: 1,
                    record: encode_chunk(seq, &chunk(seq)),
                };
                f.handle(0, &r, seq + 1);
            }
            assert_eq!(f.core().chunks_seen(), 1);
            assert_eq!(f.durable(), 2);
        }
        let (f, rec) = ReplicaNode::open(ReplicaConfig::new(1, &all), serve).unwrap();
        assert_eq!(rec.staged_records, 1, "the unfolded record came back");
        assert_eq!(f.durable(), 2);
        assert_eq!(f.core().chunks_seen(), 1);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn conflicting_stale_tail_is_truncated() {
        let mut f = node("trunc", 1, &[0, 1, 2]);
        // old primary (epoch 1) stages a record that never commits
        let stale = encode_chunk(0, &chunk(7));
        f.handle(
            0,
            &Request::Replicate {
                token: 0,
                epoch: 1,
                node: 0,
                seq: 0,
                commit: 0,
                record: stale.clone(),
            },
            1,
        );
        assert_eq!(f.durable(), 1);
        // new primary (epoch 2) ships different bytes for seq 0
        let fresh = encode_chunk(0, &chunk(8));
        assert_ne!(stale, fresh);
        let resp = f.handle(
            2,
            &Request::Replicate {
                token: 0,
                epoch: 2,
                node: 2,
                seq: 0,
                commit: 1,
                record: fresh.clone(),
            },
            2,
        );
        assert!(
            matches!(resp, Response::ReplAck { durable: 1, .. }),
            "{resp:?}"
        );
        assert_eq!(f.core().chunks_seen(), 1, "authoritative record folded");
        // the folded bytes are the new primary's, not the stale ones
        let mut solo = node("trunc_ref", 9, &[9]);
        solo.tick(100).unwrap();
        solo.client_ingest(&chunk(8)).unwrap();
        assert_eq!(f.state_digest(), solo.state_digest());
    }

    #[test]
    fn vote_grant_survives_restart() {
        let all = [0u32, 1, 2];
        let d = dir("regrant", 2);
        let serve = ServeConfig::new(schema(), 0.5, &d);
        {
            let (mut f, _) = ReplicaNode::open(ReplicaConfig::new(2, &all), serve.clone()).unwrap();
            let first = f.handle(0, &Request::SeqQuery { token: 0, epoch: 7 }, 50);
            assert!(
                matches!(first, Response::ReplAck { epoch: 7, .. }),
                "{first:?}"
            );
        } // crash: the node drops without a clean shutdown
        let (mut f, _) = ReplicaNode::open(ReplicaConfig::new(2, &all), serve).unwrap();
        assert_eq!(f.epoch(), 7, "granted epoch survived the restart");
        // a rival campaigning in the same epoch must NOT get a second
        // grant — that is exactly the two-primaries-per-epoch hazard
        let second = f.handle(1, &Request::SeqQuery { token: 0, epoch: 7 }, 51);
        assert!(
            matches!(second, Response::Error { code, .. }
                if code == crate::error::code::STALE_EPOCH),
            "{second:?}"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn folded_epoch_survives_restart_for_election_rank() {
        let all = [0u32, 1];
        let d = dir("rank", 1);
        let serve = ServeConfig::new(schema(), 0.5, &d);
        {
            let (mut f, _) = ReplicaNode::open(ReplicaConfig::new(1, &all), serve.clone()).unwrap();
            // an epoch-3 primary ships and commits one record; the
            // follower folds it (nothing left staged)
            let r = Request::Replicate {
                token: 0,
                epoch: 3,
                node: 0,
                seq: 0,
                commit: 1,
                record: encode_chunk(0, &chunk(0)),
            };
            f.handle(0, &r, 1);
            assert_eq!(f.core().chunks_seen(), 1);
            assert_eq!(f.durable(), 1);
            assert_eq!(f.last_epoch(), 3);
        } // crash
        let (f, _) = ReplicaNode::open(ReplicaConfig::new(1, &all), serve).unwrap();
        assert_eq!(
            f.last_epoch(),
            3,
            "election rank must reflect the folded record's epoch, not zero — \
             otherwise a stale shorter log at a higher epoch out-ranks it"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn ack_safe_only_while_primary_in_the_same_epoch() {
        let mut p = node("acksafe", 0, &[0]);
        p.tick(100).unwrap(); // self-promote (quorum of one)
        let epoch = p.epoch();
        let seq = p.client_ingest(&chunk(0)).unwrap();
        assert!(p.is_committed(seq));
        assert!(p.ack_safe(seq, epoch));
        assert!(!p.ack_safe(seq, epoch + 1), "wrong epoch must not ack");
        // a newer primary deposes this node: committed-or-not, the
        // staged write's fate is no longer this node's to vouch for
        p.handle(
            1,
            &Request::Heartbeat {
                token: 0,
                epoch: epoch + 1,
                node: 1,
                commit: 0,
                head: 0,
            },
            101,
        );
        assert_eq!(p.role(), Role::Follower);
        assert!(!p.ack_safe(seq, epoch), "deposed node must not ack");
    }

    #[test]
    fn wrong_cluster_key_is_rejected_before_any_state_change() {
        let d = dir("auth", 1);
        let (mut f, _) = ReplicaNode::open(
            ReplicaConfig::new(1, &[0, 1, 2]).cluster_key(0xDEAD_BEEF),
            ServeConfig::new(schema(), 0.5, d),
        )
        .unwrap();
        let forged = Request::Heartbeat {
            token: 0,
            epoch: 9,
            node: 0,
            commit: 0,
            head: 0,
        };
        let resp = f.handle(0, &forged, 1);
        assert!(
            matches!(resp, Response::Error { code, .. }
                if code == crate::error::code::UNAUTHENTICATED),
            "{resp:?}"
        );
        assert_eq!(f.epoch(), 0, "forged frame must not move the epoch");
        let genuine = Request::Heartbeat {
            token: 0xDEAD_BEEF,
            epoch: 9,
            node: 0,
            commit: 0,
            head: 0,
        };
        let resp = f.handle(0, &genuine, 2);
        assert!(
            matches!(resp, Response::ReplAck { epoch: 9, .. }),
            "{resp:?}"
        );
    }

    #[test]
    fn corrupt_election_meta_refuses_to_open() {
        let all = [0u32, 1];
        let d = dir("metacorrupt", 1);
        let serve = ServeConfig::new(schema(), 0.5, &d);
        {
            let (mut f, _) = ReplicaNode::open(ReplicaConfig::new(1, &all), serve.clone()).unwrap();
            f.handle(0, &Request::SeqQuery { token: 0, epoch: 4 }, 50);
        }
        let meta = d.join("election.meta");
        let mut bytes = std::fs::read(&meta).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        std::fs::write(&meta, &bytes).unwrap();
        let err = ReplicaNode::open(ReplicaConfig::new(1, &all), serve).unwrap_err();
        assert!(
            matches!(err, ServeError::WalCorrupt { .. }),
            "guessing an epoch can double-vote: {err}"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn catch_up_beyond_retention_ships_a_snapshot() {
        let mut p = node("snapcat", 0, &[0, 1]);
        // force tiny retention so early records age out
        p.cfg.retention_cap = 2;
        p.cfg.quorum = 1; // commit immediately for this test
        p.tick(100).unwrap();
        assert_eq!(p.role(), Role::Primary);
        for step in 0..6 {
            p.client_ingest(&chunk(step)).unwrap();
        }
        let resp = p.handle(
            1,
            &Request::CatchUp {
                token: 0,
                epoch: p.epoch(),
                from: 0,
            },
            101,
        );
        match resp {
            Response::CatchUpRecords { snapshot, .. } => {
                assert!(snapshot.is_some(), "request predates retention");
            }
            other => panic!("expected catch-up payload, got {other:?}"),
        }
    }
}
