//! The shard router: client-side scatter-gather over N shard groups.
//!
//! A [`ShardRouter`] owns one [`ClusterClient`] per shard group, so
//! every per-shard call inherits the cluster client's whole robustness
//! ladder — transparent member failover, structured `NOT_PRIMARY`
//! redirect following, capped-jittered retries, and the
//! [`RetriesExhausted`](ServeError::RetriesExhausted) attempt log. On
//! top of that it adds the routing concerns: claims are partitioned by
//! the shared [`ShardMap`], shard-checked frames catch misdeliveries
//! (`WRONG_SHARD`) and pre-cutover route tables (`STALE_SHARD_MAP`) as
//! typed refusals, and a stale router heals itself by re-fetching the
//! route table and re-routing.
//!
//! Reads come in two shapes, both honoring the *degraded-read
//! contract*:
//!
//! - **scatter-gather** ([`scatter_status`](ShardRouter::scatter_status),
//!   [`scatter_weights`](ShardRouter::scatter_weights)) returns a typed
//!   [`Sharded`] carrying whatever the reachable groups answered plus
//!   the `missing_shards` list — never an all-or-nothing error;
//! - **strict single-shard** ([`truth`](ShardRouter::truth)) converts an
//!   unreachable owning group into a typed
//!   [`ServeError::Degraded`] naming the shard.
//!
//! Every per-shard call is deadline-bounded by the per-group client's
//! socket timeout × retry budget, so a dead group delays a scatter by a
//! bounded amount instead of hanging it. Reads additionally *hedge*
//! against gray failures: the first attempt runs under a tight timeout
//! derived from that member's own p95, and a straggling response is
//! abandoned in favour of another member ([`hedge_count`] tallies the
//! wins), so one slow replica bounds a scatter's tail, not its whole
//! latency distribution.
//!
//! [`hedge_count`]: ShardRouter::hedge_count

use std::collections::BTreeMap;
use std::time::Duration;

use crh_core::value::Truth;

use crate::client::{ClusterClient, DaemonStatus, RetryPolicy};
use crate::core::ChunkClaim;
use crate::error::{code, ServeError};
use crate::proto::{Request, Response};
use crate::shard::{ShardMap, Sharded};

/// Stale-map / wrong-shard refreshes one logical operation may spend
/// before giving up (each refresh re-fetches the route table, so two
/// covers any single concurrent split).
const MAX_REFRESHES: u32 = 2;

/// The member addresses of one shard group.
#[derive(Debug, Clone)]
pub struct ShardGroup {
    /// The shard this group serves.
    pub shard: u32,
    /// `(node_id, address)` for every member; order is the failover
    /// rotation order.
    pub members: Vec<(u32, String)>,
}

/// One shard's acknowledgement of its slice of an ingested chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAck {
    /// The shard that folded the sub-chunk.
    pub shard: u32,
    /// The sequence the shard's primary assigned.
    pub seq: u64,
    /// The shard's committed chunk count after the fold.
    pub committed: u64,
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::Protocol(format!("unexpected response variant: {resp:?}"))
}

/// Whether `e` means the router's route table disagrees with the
/// member's (so a refresh + re-route may fix it).
fn is_routing_error(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::StaleShardMap { .. }
            | ServeError::WrongShard { .. }
            | ServeError::Remote {
                code: code::STALE_SHARD_MAP | code::WRONG_SHARD,
                ..
            }
    )
}

/// A router over a sharded topology.
#[derive(Debug)]
pub struct ShardRouter {
    map: ShardMap,
    clients: BTreeMap<u32, ClusterClient>,
    timeout: Duration,
    policy: RetryPolicy,
    /// Last node observed acting as each shard's primary. Purely an
    /// optimization: a write starts at the cached member instead of
    /// re-walking the failover rotation (and re-eating a `NOT_PRIMARY`
    /// redirect) on every chunk. Entries are invalidated whenever a
    /// shard's call fails or its member set is replaced — correctness
    /// never depends on the cache, only first-attempt latency does.
    /// A cached member its group's health map has quarantined is dropped
    /// rather than preferred — a slow primary hint is worse than none.
    primaries: BTreeMap<u32, u32>,
    /// How many reads abandoned a straggling first attempt and were
    /// re-issued to another member (per-group hedge wins, summed).
    hedges: u64,
}

impl ShardRouter {
    /// A router with an explicit initial map (e.g. the deployment's
    /// known topology). Every shard the map names must have a registered
    /// group; extra groups (pre-registered split targets) are fine.
    pub fn new(
        map: ShardMap,
        groups: Vec<ShardGroup>,
        timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<Self, ServeError> {
        let clients = Self::build_clients(groups, timeout, &policy)?;
        let missing: Vec<u32> = map
            .shard_ids()
            .into_iter()
            .filter(|s| !clients.contains_key(s))
            .collect();
        if !missing.is_empty() {
            return Err(ServeError::Protocol(format!(
                "shard map names shard(s) {missing:?} with no registered member addresses"
            )));
        }
        Ok(Self {
            map,
            clients,
            timeout,
            policy,
            primaries: BTreeMap::new(),
            hedges: 0,
        })
    }

    /// A router that learns the map from the topology itself: it asks
    /// the registered groups for their route tables and adopts the
    /// newest one. Needs at least one reachable member.
    pub fn connect(
        groups: Vec<ShardGroup>,
        timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<Self, ServeError> {
        let clients = Self::build_clients(groups, timeout, &policy)?;
        let mut router = Self {
            map: ShardMap::uniform(1)?,
            clients,
            timeout,
            policy,
            primaries: BTreeMap::new(),
            hedges: 0,
        };
        router.refresh_route_table()?;
        Ok(router)
    }

    fn build_clients(
        groups: Vec<ShardGroup>,
        timeout: Duration,
        policy: &RetryPolicy,
    ) -> Result<BTreeMap<u32, ClusterClient>, ServeError> {
        let mut clients = BTreeMap::new();
        for g in groups {
            if g.members.is_empty() {
                return Err(ServeError::Protocol(format!(
                    "shard {} registered with no member addresses",
                    g.shard
                )));
            }
            // decorrelate the per-group retry jitter so a router fanning
            // out to many groups does not synchronize its backoffs
            let policy = RetryPolicy {
                seed: policy.seed ^ (u64::from(g.shard) << 32 | 0x51A2),
                ..policy.clone()
            };
            clients.insert(g.shard, ClusterClient::new(g.members, timeout, policy));
        }
        if clients.is_empty() {
            return Err(ServeError::Protocol(
                "a shard router needs at least one group".into(),
            ));
        }
        Ok(clients)
    }

    /// The route table currently steering this router.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Register (or replace) one group's member addresses — required
    /// before a refresh can adopt a map naming a newly-split shard.
    pub fn add_group(&mut self, group: ShardGroup) -> Result<(), ServeError> {
        if group.members.is_empty() {
            return Err(ServeError::Protocol(format!(
                "shard {} registered with no member addresses",
                group.shard
            )));
        }
        let policy = RetryPolicy {
            seed: self.policy.seed ^ (u64::from(group.shard) << 32 | 0x51A2),
            ..self.policy.clone()
        };
        // the cached primary belonged to the replaced member set
        self.primaries.remove(&group.shard);
        self.clients.insert(
            group.shard,
            ClusterClient::new(group.members, self.timeout, policy),
        );
        Ok(())
    }

    /// The node this router last observed acting as `shard`'s primary
    /// (a hint, not a guarantee — the cache lags elections).
    pub fn cached_primary(&self, shard: u32) -> Option<u32> {
        self.primaries.get(&shard).copied()
    }

    /// How many reads so far abandoned a straggling first attempt and
    /// won by re-issuing to another member.
    pub fn hedge_count(&self) -> u64 {
        self.hedges
    }

    /// Re-fetch the route table from the registered groups and adopt the
    /// newest version (never regressing to an older one). Returns the
    /// version now in effect.
    pub fn refresh_route_table(&mut self) -> Result<u64, ServeError> {
        let mut best: Option<ShardMap> = None;
        let mut log = Vec::new();
        let shards: Vec<u32> = self.clients.keys().copied().collect();
        let attempts = shards.len() as u32;
        for shard in shards {
            let Some(c) = self.clients.get_mut(&shard) else {
                continue;
            };
            match c.read(&Request::RouteTable) {
                Ok((
                    Response::RouteTable {
                        version, ranges, ..
                    },
                    _lag,
                )) => match ShardMap::from_ranges(version, ranges) {
                    Ok(m) => {
                        if best.as_ref().is_none_or(|b| m.version > b.version) {
                            best = Some(m);
                        }
                    }
                    Err(e) => log.push(format!("shard {shard}: bad route table: {e}")),
                },
                Ok((other, _)) => log.push(format!("shard {shard}: {}", unexpected(&other))),
                Err(e) => log.push(format!("shard {shard}: {e}")),
            }
        }
        let Some(m) = best else {
            return Err(ServeError::RetriesExhausted { attempts, log });
        };
        if m.version < self.map.version {
            return Ok(self.map.version);
        }
        let missing: Vec<u32> = m
            .shard_ids()
            .into_iter()
            .filter(|s| !self.clients.contains_key(s))
            .collect();
        if !missing.is_empty() {
            return Err(ServeError::Protocol(format!(
                "route table v{} names shard(s) {missing:?} with no registered member \
                 addresses; add_group() them first",
                m.version
            )));
        }
        self.map = m;
        Ok(self.map.version)
    }

    fn client(&mut self, shard: u32) -> Result<&mut ClusterClient, ServeError> {
        self.clients.get_mut(&shard).ok_or(ServeError::Degraded {
            missing_shards: vec![shard],
        })
    }

    /// Fold one chunk: claims are partitioned by owning shard and each
    /// sub-chunk rides a shard-checked ingest to its group's primary.
    /// Writes are strict (no degraded mode): the first shard that cannot
    /// accept its slice fails the call, with any already-acknowledged
    /// sub-chunks listed in the returned acks being genuinely durable.
    /// A `STALE_SHARD_MAP`/`WRONG_SHARD` refusal triggers a route-table
    /// refresh and a re-route of the refused claims.
    pub fn ingest(&mut self, claims: Vec<ChunkClaim>) -> Result<Vec<ShardAck>, ServeError> {
        let mut acks = Vec::new();
        let mut pending = claims;
        let mut refreshes = 0u32;
        while !pending.is_empty() {
            let mut routed: BTreeMap<u32, Vec<ChunkClaim>> = BTreeMap::new();
            for c in pending.drain(..) {
                routed
                    .entry(self.map.shard_of(c.object))
                    .or_default()
                    .push(c);
            }
            let mut requeue = Vec::new();
            for (shard, sub) in routed {
                let req = Request::ShardIngest {
                    shard,
                    map_version: self.map.version,
                    claims: sub.clone(),
                };
                let cached = self.primaries.get(&shard).copied();
                let client = self.client(shard)?;
                let mut quarantined_hint = false;
                if let Some(p) = cached {
                    // a quarantined cached primary is a known straggler:
                    // starting there would serialize the write behind it
                    if client.health().is_quarantined(p) {
                        quarantined_hint = true;
                    } else {
                        client.prefer(p);
                    }
                }
                let result = client.call(&req);
                let served = client.last_served();
                if quarantined_hint {
                    self.primaries.remove(&shard);
                }
                match result {
                    Ok(Response::Ack { seq, chunks_seen }) => {
                        if let Some(n) = served {
                            self.primaries.insert(shard, n);
                        }
                        acks.push(ShardAck {
                            shard,
                            seq,
                            committed: chunks_seen,
                        });
                    }
                    Ok(other) => return Err(unexpected(&other)),
                    Err(e) if is_routing_error(&e) && refreshes < MAX_REFRESHES => {
                        self.primaries.remove(&shard);
                        refreshes += 1;
                        self.refresh_route_table()?;
                        requeue.extend(sub);
                    }
                    Err(e) => {
                        self.primaries.remove(&shard);
                        return Err(e);
                    }
                }
            }
            pending = requeue;
        }
        Ok(acks)
    }

    /// Read one cell's truth from its owning shard, with the answering
    /// member's staleness bound. The strict single-shard form of the
    /// degraded-read contract: an owning group that exhausts the retry
    /// budget surfaces as a typed [`ServeError::Degraded`] naming the
    /// shard, bounded by the per-group deadline — never a hang.
    pub fn truth(
        &mut self,
        object: u32,
        property: u32,
    ) -> Result<(Option<Truth>, u64), ServeError> {
        for round in 0..=MAX_REFRESHES {
            let shard = self.map.shard_of(object);
            let req = Request::ShardTruth {
                shard,
                map_version: self.map.version,
                object,
                property,
            };
            match self.client(shard)?.read_hedged(&req) {
                Ok((Response::Truth(t), lag, hedged)) => {
                    self.hedges += u64::from(hedged);
                    return Ok((t, lag));
                }
                Ok((other, ..)) => return Err(unexpected(&other)),
                Err(e) if is_routing_error(&e) && round < MAX_REFRESHES => {
                    self.refresh_route_table()?;
                }
                Err(ServeError::RetriesExhausted { .. }) => {
                    return Err(ServeError::Degraded {
                        missing_shards: vec![shard],
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Err(ServeError::Protocol(
            "route table kept changing mid-read".into(),
        ))
    }

    /// Scatter-gather every group's operational status. Groups that
    /// cannot answer within their deadline land in `missing_shards`
    /// instead of failing the read — the scatter-gather form of the
    /// degraded-read contract.
    pub fn scatter_status(&mut self) -> Sharded<Vec<(u32, DaemonStatus, u64)>> {
        let mut value = Vec::new();
        let mut missing = Vec::new();
        for shard in self.map.shard_ids() {
            match self.clients.get_mut(&shard).map(|c| c.status_hedged()) {
                Some(Ok((status, lag, hedged))) => {
                    self.hedges += u64::from(hedged);
                    value.push((shard, status, lag));
                }
                Some(Err(_)) | None => missing.push(shard),
            }
        }
        Sharded {
            value,
            missing_shards: missing,
        }
    }

    /// Scatter-gather every group's source weights (each group weighs
    /// its own entry slice). Same partial-failure semantics as
    /// [`scatter_status`](Self::scatter_status).
    pub fn scatter_weights(&mut self) -> Sharded<Vec<(u32, Vec<f64>, u64)>> {
        let mut value = Vec::new();
        let mut missing = Vec::new();
        for shard in self.map.shard_ids() {
            match self.clients.get_mut(&shard).map(|c| c.weights_hedged()) {
                Some(Ok((w, lag, hedged))) => {
                    self.hedges += u64::from(hedged);
                    value.push((shard, w, lag));
                }
                Some(Err(_)) | None => missing.push(shard),
            }
        }
        Sharded {
            value,
            missing_shards: missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_refuses_incomplete_topologies() {
        let map = ShardMap::uniform(2).unwrap();
        // shard 1 has no addresses
        let err = ShardRouter::new(
            map.clone(),
            vec![ShardGroup {
                shard: 0,
                members: vec![(0, "127.0.0.1:1".into())],
            }],
            Duration::from_millis(50),
            RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("[1]"), "{err}");
        // a group with no members is refused
        let err = ShardRouter::new(
            map,
            vec![
                ShardGroup {
                    shard: 0,
                    members: vec![(0, "127.0.0.1:1".into())],
                },
                ShardGroup {
                    shard: 1,
                    members: vec![],
                },
            ],
            Duration::from_millis(50),
            RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("no member addresses"), "{err}");
    }

    #[test]
    fn routing_errors_are_recognized() {
        assert!(is_routing_error(&ServeError::StaleShardMap {
            got: 0,
            current: 1
        }));
        assert!(is_routing_error(&ServeError::WrongShard {
            shard: 1,
            at: 0
        }));
        assert!(is_routing_error(&ServeError::Remote {
            code: code::WRONG_SHARD,
            message: String::new()
        }));
        assert!(!is_routing_error(&ServeError::DeadlineExceeded));
    }

    #[test]
    fn primary_cache_is_invalidated_on_failure_and_group_replacement() {
        let map = ShardMap::uniform(1).unwrap();
        let groups = vec![ShardGroup {
            shard: 0,
            // nothing listens here: every call fails
            members: vec![(0, "127.0.0.1:1".into()), (1, "127.0.0.1:2".into())],
        }];
        let policy = RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 3,
        };
        let mut r =
            ShardRouter::new(map, groups.clone(), Duration::from_millis(50), policy).unwrap();
        assert_eq!(r.cached_primary(0), None);
        // pretend an earlier write learned node 1 is the primary
        r.primaries.insert(0, 1);
        assert_eq!(r.cached_primary(0), Some(1));
        // a failed write must drop the stale hint
        let err = r.ingest(vec![ChunkClaim::num(7, 0, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, ServeError::RetriesExhausted { .. }), "{err}");
        assert_eq!(r.cached_primary(0), None);
        // replacing the member set must drop any hint for that shard too
        r.primaries.insert(0, 1);
        r.add_group(groups.into_iter().next().unwrap()).unwrap();
        assert_eq!(r.cached_primary(0), None);
    }

    #[test]
    fn unreachable_groups_degrade_instead_of_failing() {
        // nothing listens on these ports: every group is down
        let map = ShardMap::uniform(2).unwrap();
        let groups = vec![
            ShardGroup {
                shard: 0,
                members: vec![(0, "127.0.0.1:1".into())],
            },
            ShardGroup {
                shard: 1,
                members: vec![(0, "127.0.0.1:2".into())],
            },
        ];
        let policy = RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 3,
        };
        let mut r = ShardRouter::new(map, groups, Duration::from_millis(50), policy).unwrap();
        let s = r.scatter_status();
        assert!(s.value.is_empty());
        assert_eq!(s.missing_shards, vec![0, 1]);
        assert!(s.is_degraded());
        // strict single-shard read: typed Degraded naming the owner
        match r.truth(7, 0) {
            Err(ServeError::Degraded { missing_shards }) => {
                assert_eq!(missing_shards.len(), 1);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
    }
}
