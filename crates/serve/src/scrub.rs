//! Background scrubbing: proactive CRC verification of every durable
//! artifact in a node's state directory.
//!
//! Crash recovery only validates the artifacts it happens to read; a
//! bit that rots in a snapshot generation nobody has opened since last
//! month stays silent until the worst possible moment — the restart
//! that needs it. [`scrub_dir`] walks the state directory on demand and
//! re-checks every CRC (WAL records, snapshot frames, election
//! metadata), returning a typed [`ScrubReport`] of what it found.
//!
//! The scrubber only *detects*; repair policy lives in
//! [`ReplicaNode::scrub_and_repair`](crate::replicate::ReplicaNode::scrub_and_repair),
//! which knows which artifacts can be rebuilt from memory, which must
//! be re-synced from the quorum, and — critically — which files have
//! open handles and therefore must not be renamed out from under their
//! owner. [`quarantine`] is the detect-side helper that parks a corrupt
//! file at `<name>.corrupt` so the repair path can lay down a clean
//! replacement without destroying the evidence.

use std::path::{Path, PathBuf};

use crate::core::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use crate::error::ServeError;
use crate::vfs::Vfs;
use crh_core::persist::decode_frame;

/// One corrupt (or torn) artifact found by a scrub pass.
#[derive(Debug, Clone)]
pub struct ScrubFinding {
    /// The artifact that failed verification.
    pub path: PathBuf,
    /// Human-readable description of what failed (CRC mismatch, torn
    /// tail, bad magic, ...).
    pub reason: String,
}

/// Outcome of one [`scrub_dir`] pass.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Number of artifacts whose integrity was actually verified.
    pub files_checked: usize,
    /// Every artifact that failed verification.
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// True when every checked artifact verified clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Verify the CRCs of every recognized durable artifact directly under
/// `dir`, reading through `vfs` (so an injected fault plan exercises
/// the scrubber too). Recognized artifacts:
///
/// - `*.wal` — record-by-record CRC scan; a mid-log mismatch or a torn
///   tail is a finding (a torn tail is survivable at recovery, but a
///   scrub-time tear means bytes already rotted at rest),
/// - `*.crh` — snapshot frame (magic + version + length + CRC),
/// - `election.meta` — election-state frame.
///
/// Quarantined debris (`*.corrupt`), atomic-write temporaries (`*.tmp`)
/// and unrecognized names are skipped, not findings. A missing `dir`
/// yields an empty, clean report.
pub fn scrub_dir(dir: &Path, vfs: &Vfs) -> Result<ScrubReport, ServeError> {
    let mut report = ScrubReport::default();
    for path in vfs.read_dir_files(dir)? {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".corrupt") || name.ends_with(".tmp") {
            continue;
        }
        let verdict: Option<String> = if name.ends_with(".wal") {
            let bytes = vfs.read(&path)?;
            match crate::wal::scan(&bytes) {
                Err(e) => Some(e.to_string()),
                Ok(s) if s.torn > 0 => Some(format!("torn tail: {} trailing bytes", s.torn)),
                Ok(_) => None,
            }
        } else if name.ends_with(".crh") {
            let bytes = vfs.read(&path)?;
            match decode_frame(&bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION) {
                Err(e) => Some(e.to_string()),
                Ok(_) => None,
            }
        } else if name == "election.meta" {
            let bytes = vfs.read(&path)?;
            match crate::replicate::verify_election_meta(&bytes) {
                Err(e) => Some(e.to_string()),
                Ok(()) => None,
            }
        } else {
            continue;
        };
        report.files_checked += 1;
        if let Some(reason) = verdict {
            report.findings.push(ScrubFinding { path, reason });
        }
    }
    Ok(report)
}

/// Rename a corrupt artifact to `<name>.corrupt`, preserving the bytes
/// for post-mortem while freeing the canonical path for a clean
/// rewrite. Never call this on a file something still holds open — the
/// open handle would follow the rename. Returns the quarantine path.
pub fn quarantine(vfs: &Vfs, path: &Path) -> Result<PathBuf, ServeError> {
    let mut name = path.as_os_str().to_os_string();
    name.push(".corrupt");
    let dest = PathBuf::from(name);
    vfs.rename(path, &dest)?;
    vfs.sync_parent_dir(path)?;
    Ok(dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Wal;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("crh-scrub-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clean_dir_reports_clean() {
        let d = dir("clean");
        let vfs = Vfs::passthrough();
        let (mut wal, _) = Wal::open(d.join("ingest.wal"), &vfs).unwrap();
        wal.append(b"record one").unwrap();
        let report = scrub_dir(&d, &vfs).unwrap();
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert_eq!(report.files_checked, 1);
    }

    #[test]
    fn missing_dir_is_clean() {
        let d = dir("missing").join("never-created");
        let report = scrub_dir(&d, &Vfs::passthrough()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.files_checked, 0);
    }

    #[test]
    fn bit_flip_in_wal_is_found() {
        let d = dir("rot");
        let vfs = Vfs::passthrough();
        let p = d.join("ingest.wal");
        let (mut wal, _) = Wal::open(&p, &vfs).unwrap();
        wal.append(b"this record will rot").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() - 4; // inside the record payload
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let report = scrub_dir(&d, &vfs).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].path, p);
    }

    #[test]
    fn corrupt_snapshot_is_found_and_quarantine_frees_the_path() {
        let d = dir("snap");
        let vfs = Vfs::passthrough();
        let p = d.join("snapshot.crh");
        std::fs::write(&p, b"CRHVnot-actually-a-frame").unwrap();
        let report = scrub_dir(&d, &vfs).unwrap();
        assert_eq!(report.findings.len(), 1);
        let parked = quarantine(&vfs, &p).unwrap();
        assert!(!p.exists());
        assert!(parked.exists());
        assert!(parked.to_string_lossy().ends_with("snapshot.crh.corrupt"));
        // debris is skipped on the next pass
        let report = scrub_dir(&d, &vfs).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.files_checked, 0);
    }

    #[test]
    fn tmp_files_and_unknown_names_are_skipped() {
        let d = dir("skip");
        std::fs::write(d.join("snapshot.crh.tmp"), b"half-written").unwrap();
        std::fs::write(d.join("notes.txt"), b"operator scribbles").unwrap();
        let report = scrub_dir(&d, &Vfs::passthrough()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.files_checked, 0);
    }
}
