//! The TCP daemon: bounded ingest pipeline in front of a [`ServeCore`].
//!
//! Threading model, chosen for bounded memory and no lock inversions:
//!
//! - one **accept loop** (non-blocking poll so shutdown is prompt),
//!   refusing connections beyond `max_connections` with a typed
//!   `Overloaded` reply instead of letting them queue invisibly;
//! - one **connection thread** per client with read/write timeouts, so a
//!   stalled or vanished peer is dropped instead of pinning a thread
//!   forever;
//! - one **fold worker** draining a [`BoundedQueue`] of ingest jobs.
//!   Connection threads never fold; they enqueue and wait on a reply
//!   channel with a deadline. A full queue rejects immediately
//!   ([`ServeError::Overloaded`]), a slow fold turns into
//!   [`ServeError::DeadlineExceeded`] for the waiting client while the
//!   fold itself still completes and stays durable.
//!
//! Queries (weights/truth/status) take the core lock directly — they are
//! cheap reads. A batch solve copies the weights under the lock, then
//! runs unlocked on the connection thread under a [`CancelToken`]
//! deadline, so a long solve never blocks ingest.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crh_core::cancel::CancelToken;
use crh_core::schema::Schema;

use crate::core::{claims_from_csv, solve_claims, ChunkClaim, IngestReceipt, ServeCore};
use crate::error::ServeError;
use crate::proto::{read_frame, write_frame, Request, Response};
use crate::queue::BoundedQueue;

/// Tuning for the network front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Ingest jobs buffered between connection threads and the fold
    /// worker; beyond this, pushes fail with `Overloaded`.
    pub queue_capacity: usize,
    /// How long a connection thread waits for its ingest to fold before
    /// answering `DeadlineExceeded`.
    pub ingest_deadline: Duration,
    /// Per-connection socket read/write timeout; a peer silent for this
    /// long is dropped.
    pub io_timeout: Duration,
    /// Wall-clock budget for a batch solve.
    pub solve_deadline: Duration,
    /// Concurrent client connections; beyond this, connections get an
    /// immediate `Overloaded` reply and are closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            ingest_deadline: Duration::from_secs(2),
            io_timeout: Duration::from_secs(2),
            solve_deadline: Duration::from_secs(5),
            max_connections: 32,
        }
    }
}

struct IngestJob {
    claims: Vec<ChunkClaim>,
    reply: mpsc::SyncSender<Result<IngestReceipt, ServeError>>,
}

struct Shared {
    core: Mutex<ServeCore>,
    queue: BoundedQueue<IngestJob>,
    schema: Schema,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    connections: AtomicUsize,
}

/// A running daemon; dropping the handle shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    worker_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving `core`.
    pub fn start(core: ServeCore, cfg: ServerConfig, addr: &str) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let schema = core.schema().clone();
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            queue: BoundedQueue::new(cfg.queue_capacity),
            schema,
            cfg,
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });

        let worker_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || fold_worker(&shared))
        };
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Self {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
            worker_thread: Some(worker_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Signal shutdown, join the daemon threads, and take a final
    /// snapshot so the next [`ServeCore::open`] starts from a clean disk.
    pub fn shutdown(mut self) {
        self.stop();
        // best-effort final snapshot; a poisoned (chaos) core refuses
        self.shared.core.lock().unwrap().snapshot_now().ok();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
        if let Some(t) = self.worker_thread.take() {
            t.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let active = shared.connections.load(Ordering::SeqCst);
                if active >= shared.cfg.max_connections {
                    refuse_connection(stream, shared);
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    serve_connection(stream, &shared);
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn refuse_connection(mut stream: TcpStream, shared: &Shared) {
    let err = ServeError::Overloaded {
        capacity: shared.cfg.max_connections,
    };
    stream.set_write_timeout(Some(shared.cfg.io_timeout)).ok();
    let payload = Response::from_error(&err).encode();
    write_frame(&mut stream, &payload).ok();
    stream.flush().ok();
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    if stream
        .set_read_timeout(Some(shared.cfg.io_timeout))
        .and(stream.set_write_timeout(Some(shared.cfg.io_timeout)))
        .is_err()
    {
        return;
    }
    stream.set_nodelay(true).ok();
    while !shared.shutdown.load(Ordering::SeqCst) {
        // The io timeout is for peers stalled *mid-frame*; a connection
        // idling between requests is legitimate. Wait for the first byte
        // of the next frame separately, so an idle timeout just loops
        // (re-checking shutdown) while a mid-frame stall drops the peer.
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        let payload = match read_frame(&mut (&first[..]).chain(&mut stream)) {
            Ok(p) => p,
            // mid-frame timeout, disconnect, or garbage framing: drop the peer
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => handle_request(req, shared),
            Err(e) => Response::from_error(&e),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

fn handle_request(req: Request, shared: &Arc<Shared>) -> Response {
    match req {
        Request::Ingest(claims) => ingest_via_queue(claims, shared),
        Request::IngestCsv(text) => match claims_from_csv(&shared.schema, &text) {
            Ok(claims) => ingest_via_queue(claims, shared),
            Err(e) => Response::from_error(&e),
        },
        Request::Weights => {
            let core = shared.core.lock().unwrap();
            Response::Weights(core.weights().to_vec())
        }
        Request::Truth { object, property } => {
            let core = shared.core.lock().unwrap();
            Response::Truth(core.truth(object, property))
        }
        Request::Status => {
            let status = shared.core.lock().unwrap().status();
            Response::Status {
                chunks_seen: status.chunks_seen,
                wal_records: status.wal_records,
                cached_truths: status.cached_truths,
                queue_depth: shared.queue.depth() as u64,
                quarantined: status.quarantined,
            }
        }
        Request::Solve {
            tol,
            max_iters,
            claims,
        } => {
            // copy the weights under the lock, solve without it
            let seed = shared.core.lock().unwrap().weights().to_vec();
            let cancel = CancelToken::with_deadline(shared.cfg.solve_deadline);
            match solve_claims(
                &shared.schema,
                &claims,
                &seed,
                tol,
                max_iters as usize,
                &cancel,
            ) {
                Ok(out) => Response::Solved {
                    weights: out.weights,
                    objective: out.objective,
                    iterations: out.iterations,
                },
                Err(e) => Response::from_error(&e),
            }
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
            let chunks_seen = {
                let mut core = shared.core.lock().unwrap();
                core.snapshot_now().ok();
                core.chunks_seen()
            };
            Response::Ack {
                seq: chunks_seen.saturating_sub(1),
                chunks_seen,
            }
        }
    }
}

fn ingest_via_queue(claims: Vec<ChunkClaim>, shared: &Arc<Shared>) -> Response {
    let (tx, rx) = mpsc::sync_channel(1);
    let job = IngestJob { claims, reply: tx };
    if let Err(e) = shared.queue.try_push(job) {
        return Response::from_error(&e);
    }
    match rx.recv_timeout(shared.cfg.ingest_deadline) {
        Ok(Ok(receipt)) => Response::Ack {
            seq: receipt.seq,
            chunks_seen: receipt.chunks_seen,
        },
        Ok(Err(e)) => Response::from_error(&e),
        // the fold may still land durably; the client learns the outcome
        // from a later Status, exactly like a lost ack after a crash
        Err(_) => Response::from_error(&ServeError::DeadlineExceeded),
    }
}

fn fold_worker(shared: &Arc<Shared>) {
    loop {
        match shared.queue.pop_timeout(Duration::from_millis(50)) {
            Ok(Some(job)) => {
                let result = shared.core.lock().unwrap().ingest(&job.claims);
                // the client may have timed out and gone; that's fine
                job.reply.try_send(result).ok();
            }
            Ok(None) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return, // closed and drained
        }
    }
}
