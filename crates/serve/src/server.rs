//! The TCP daemon: bounded ingest pipeline in front of a [`ServeCore`].
//!
//! Threading model, chosen for bounded memory and no lock inversions:
//!
//! - one **accept loop** (non-blocking poll so shutdown is prompt),
//!   refusing connections beyond `max_connections` with a typed
//!   `Overloaded` reply instead of letting them queue invisibly;
//! - one **connection thread** per client with read/write timeouts, so a
//!   stalled or vanished peer is dropped instead of pinning a thread
//!   forever;
//! - one **fold worker** draining a [`BoundedQueue`] of ingest jobs.
//!   Connection threads never fold; they enqueue and wait on a reply
//!   channel with a deadline. A full queue rejects immediately
//!   ([`ServeError::Overloaded`]), a slow fold turns into
//!   [`ServeError::DeadlineExceeded`] for the waiting client while the
//!   fold itself still completes and stays durable.
//!
//! Queries (weights/truth/status) take the core lock directly — they are
//! cheap reads. A batch solve copies the weights under the lock, then
//! runs unlocked on the connection thread under a [`CancelToken`]
//! deadline, so a long solve never blocks ingest.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crh_core::cancel::CancelToken;
use crh_core::schema::Schema;

use crate::client::Client;
use crate::core::ServeConfig;
use crate::core::{claims_from_csv, solve_claims, ChunkClaim, IngestReceipt, ServeCore};
use crate::error::ServeError;
use crate::proto::{read_frame, write_frame, Request, Response};
use crate::queue::BoundedQueue;
use crate::replicate::{ReplicaConfig, ReplicaNode, Role};
use crate::shard::{ShardMap, ShardMapStore, ShardRange};

/// Tuning for the network front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Ingest jobs buffered between connection threads and the fold
    /// worker; beyond this, pushes fail with `Overloaded`.
    pub queue_capacity: usize,
    /// How long a connection thread waits for its ingest to fold before
    /// answering `DeadlineExceeded`.
    pub ingest_deadline: Duration,
    /// Per-connection socket read/write timeout; a peer silent for this
    /// long is dropped.
    pub io_timeout: Duration,
    /// Wall-clock budget for a batch solve.
    pub solve_deadline: Duration,
    /// Concurrent client connections; beyond this, connections get an
    /// immediate `Overloaded` reply and are closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            ingest_deadline: Duration::from_secs(2),
            io_timeout: Duration::from_secs(2),
            solve_deadline: Duration::from_secs(5),
            max_connections: 32,
        }
    }
}

struct IngestJob {
    claims: Vec<ChunkClaim>,
    reply: mpsc::SyncSender<Result<IngestReceipt, ServeError>>,
}

struct Shared {
    core: Mutex<ServeCore>,
    queue: BoundedQueue<IngestJob>,
    schema: Schema,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    connections: AtomicUsize,
}

impl Shared {
    /// Lock the core, recovering from mutex poisoning. A poisoned mutex
    /// means some handler thread panicked; the daemon is crash-only —
    /// durable state is WAL-first and [`ServeCore`] carries its own
    /// application-level `poisoned` flag for injected crashes — so
    /// recovering the guard and letting the core's own refusal logic
    /// answer is strictly better than cascading the panic to every
    /// connection.
    fn core(&self) -> MutexGuard<'_, ServeCore> {
        // crh-lint: allow(unbounded-wait-in-serve) — in-process mutex; holders do bounded fold/solve work with their own deadlines, never peer I/O under the guard
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running daemon; dropping the handle shuts it down.
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    worker_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving `core`.
    pub fn start(core: ServeCore, cfg: ServerConfig, addr: &str) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let schema = core.schema().clone();
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            queue: BoundedQueue::new(cfg.queue_capacity),
            schema,
            cfg,
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });

        let worker_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || fold_worker(&shared))
        };
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Self {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
            worker_thread: Some(worker_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Signal shutdown, join the daemon threads, and take a final
    /// snapshot so the next [`ServeCore::open`] starts from a clean disk.
    pub fn shutdown(mut self) {
        self.stop();
        // best-effort final snapshot; a poisoned (chaos) core refuses
        // crh-lint: allow(blocking-under-lock) — shutdown quiescence: workers are joined, nothing else contends for `core`
        self.shared.core().snapshot_now().ok();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(t) = self.accept_thread.take() {
            // crh-lint: allow(unbounded-wait-in-serve) — shutdown join; the flag is set and the queue closed, so the loop exits on its next bounded accept/recv tick
            t.join().ok();
        }
        if let Some(t) = self.worker_thread.take() {
            // crh-lint: allow(unbounded-wait-in-serve) — shutdown join; the closed queue wakes the worker immediately
            t.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The pieces of server state the accept/connection machinery needs;
/// implemented by both the standalone [`Shared`] core and the
/// replicated [`HaShared`] node so they share one front-end.
trait FrontEnd: Send + Sync + 'static {
    fn server_cfg(&self) -> &ServerConfig;
    fn is_shutdown(&self) -> bool;
    fn connection_count(&self) -> &AtomicUsize;
    fn handle(self: &Arc<Self>, req: Request) -> Response;
}

impl FrontEnd for Shared {
    fn server_cfg(&self) -> &ServerConfig {
        &self.cfg
    }
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
    fn connection_count(&self) -> &AtomicUsize {
        &self.connections
    }
    fn handle(self: &Arc<Self>, req: Request) -> Response {
        handle_request(req, self)
    }
}

fn accept_loop<F: FrontEnd>(listener: &TcpListener, shared: &Arc<F>) {
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                let active = shared.connection_count().load(Ordering::SeqCst);
                if active >= shared.server_cfg().max_connections {
                    refuse_connection(stream, shared.server_cfg());
                    continue;
                }
                shared.connection_count().fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    serve_connection(stream, &shared);
                    shared.connection_count().fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn refuse_connection(mut stream: TcpStream, cfg: &ServerConfig) {
    let err = ServeError::Overloaded {
        capacity: cfg.max_connections,
    };
    stream.set_write_timeout(Some(cfg.io_timeout)).ok();
    let payload = Response::from_error(&err).encode();
    write_frame(&mut stream, &payload).ok();
    stream.flush().ok();
}

fn serve_connection<F: FrontEnd>(mut stream: TcpStream, shared: &Arc<F>) {
    let io_timeout = shared.server_cfg().io_timeout;
    if stream
        .set_read_timeout(Some(io_timeout))
        .and(stream.set_write_timeout(Some(io_timeout)))
        .is_err()
    {
        return;
    }
    stream.set_nodelay(true).ok();
    while !shared.is_shutdown() {
        // The io timeout is for peers stalled *mid-frame*; a connection
        // idling between requests is legitimate. Wait for the first byte
        // of the next frame separately, so an idle timeout just loops
        // (re-checking shutdown) while a mid-frame stall drops the peer.
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        let payload = match read_frame(&mut first.as_slice().chain(&mut stream)) {
            Ok(p) => p,
            // mid-frame timeout, disconnect, or garbage framing: drop the peer
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => shared.handle(req),
            Err(e) => Response::from_error(&e),
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Strip the deadline envelope off a request, yielding the inner request
/// and the client's remaining budget. A zero budget is refused *before
/// any work* with a typed [`ServeError::DeadlineExceeded`] — the client
/// has already given up, so staging, queueing, or solving on its behalf
/// would be wasted (and, for a write, would surprise it with durable
/// state it believes was refused).
fn unwrap_deadline(req: Request) -> Result<(Request, Option<Duration>), ServeError> {
    match req {
        Request::WithDeadline { budget_ms, inner } => {
            if budget_ms == 0 {
                Err(ServeError::DeadlineExceeded)
            } else {
                Ok((*inner, Some(Duration::from_millis(budget_ms))))
            }
        }
        other => Ok((other, None)),
    }
}

/// A hop never waits longer than its own configured bound *or* the
/// client's remaining budget, whichever is smaller: deadline propagation
/// turns one client timeout into a chain of shrinking server-side waits
/// instead of a pile-up of orphaned work.
fn clamp_wait(bound: Duration, budget: Option<Duration>) -> Duration {
    budget.map_or(bound, |b| b.min(bound))
}

fn handle_request(req: Request, shared: &Arc<Shared>) -> Response {
    let (req, budget) = match unwrap_deadline(req) {
        Ok(x) => x,
        Err(e) => return Response::from_error(&e),
    };
    match req {
        Request::Ingest(claims) => ingest_via_queue(claims, shared, budget),
        Request::IngestCsv(text) => match claims_from_csv(&shared.schema, &text) {
            Ok(claims) => ingest_via_queue(claims, shared, budget),
            Err(e) => Response::from_error(&e),
        },
        Request::Weights => {
            let core = shared.core();
            Response::Weights(core.weights().to_vec())
        }
        Request::Truth { object, property } => {
            let core = shared.core();
            Response::Truth(core.truth(object, property))
        }
        Request::Status => {
            let status = shared.core().status();
            Response::Status {
                chunks_seen: status.chunks_seen,
                wal_records: status.wal_records,
                cached_truths: status.cached_truths,
                queue_depth: shared.queue.depth() as u64,
                quarantined: status.quarantined,
            }
        }
        Request::Solve {
            tol,
            max_iters,
            claims,
        } => {
            // copy the weights under the lock, solve without it
            let (seed, threads) = {
                let core = shared.core();
                (core.weights().to_vec(), core.solve_threads())
            };
            let cancel = CancelToken::with_deadline(clamp_wait(shared.cfg.solve_deadline, budget));
            match solve_claims(
                &shared.schema,
                &claims,
                &seed,
                tol,
                max_iters as usize,
                threads,
                &cancel,
            ) {
                Ok(out) => Response::Solved {
                    weights: out.weights,
                    objective: out.objective,
                    iterations: out.iterations,
                },
                Err(e) => Response::from_error(&e),
            }
        }
        Request::Replicate { .. }
        | Request::Heartbeat { .. }
        | Request::CatchUp { .. }
        | Request::Promote { .. }
        | Request::SeqQuery { .. } => Response::from_error(&ServeError::Protocol(
            "replication frame sent to a standalone daemon".into(),
        )),
        Request::RouteTable
        | Request::ShardIngest { .. }
        | Request::ShardTruth { .. }
        | Request::SplitStage { .. }
        | Request::SplitCutover { .. } => Response::from_error(&ServeError::Protocol(
            "shard frame sent to a standalone daemon".into(),
        )),
        Request::Probe { nonce } => Response::ProbeAck { nonce },
        // decode refuses nested wrappers and unwrap_deadline stripped the
        // outer one, but the type still admits it — answer, don't panic
        Request::WithDeadline { .. } => {
            Response::from_error(&ServeError::Protocol("nested deadline wrapper".into()))
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
            let chunks_seen = {
                let mut core = shared.core();
                // crh-lint: allow(blocking-under-lock) — the final snapshot must be atomic with the chunks_seen read it acks; the queue is closed, so folds have drained
                core.snapshot_now().ok();
                core.chunks_seen()
            };
            Response::Ack {
                seq: chunks_seen.saturating_sub(1),
                chunks_seen,
            }
        }
    }
}

fn ingest_via_queue(
    claims: Vec<ChunkClaim>,
    shared: &Arc<Shared>,
    budget: Option<Duration>,
) -> Response {
    let (tx, rx) = mpsc::sync_channel(1);
    let job = IngestJob { claims, reply: tx };
    if let Err(e) = shared.queue.try_push(job) {
        return Response::from_error(&e);
    }
    match rx.recv_timeout(clamp_wait(shared.cfg.ingest_deadline, budget)) {
        Ok(Ok(receipt)) => Response::Ack {
            seq: receipt.seq,
            chunks_seen: receipt.chunks_seen,
        },
        Ok(Err(e)) => Response::from_error(&e),
        // the fold may still land durably; the client learns the outcome
        // from a later Status, exactly like a lost ack after a crash
        Err(_) => Response::from_error(&ServeError::DeadlineExceeded),
    }
}

fn fold_worker(shared: &Arc<Shared>) {
    loop {
        match shared.queue.pop_timeout(Duration::from_millis(50)) {
            Ok(Some(job)) => {
                // crh-lint: allow(blocking-under-lock) — the durability contract: the WAL append + fsync under `core` is what serializes folds (DESIGN.md §2); hedged reads bound the read-path cost
                let result = shared.core().ingest(&job.claims);
                // the client may have timed out and gone; that's fine
                job.reply.try_send(result).ok();
            }
            Ok(None) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return, // closed and drained
        }
    }
}

// ---------------------------------------------------------------------
// Replicated daemon
// ---------------------------------------------------------------------

/// Tuning for one member of a replicated cluster.
#[derive(Debug, Clone)]
pub struct HaConfig {
    /// Front-end knobs shared with the standalone server.
    pub server: ServerConfig,
    /// Wall-clock duration of one logical replication tick (heartbeats,
    /// election timeouts, and retention pushes are all counted in ticks).
    pub tick: Duration,
    /// `(node_id, address)` of every *other* member.
    pub peer_addrs: Vec<(u32, String)>,
    /// How long an ingest waits for the commit quorum before answering
    /// [`ServeError::NotReplicated`].
    pub commit_wait: Duration,
    /// This member's shard identity in a sharded topology: the shard it
    /// serves plus the bootstrap route table, adopted (and durably
    /// persisted) only while the member's shard-map store is still
    /// empty — after the first cutover the store wins. `None` runs an
    /// unsharded cluster that refuses shard frames with a typed error.
    pub shard: Option<(u32, ShardMap)>,
}

impl Default for HaConfig {
    fn default() -> Self {
        Self {
            server: ServerConfig::default(),
            tick: Duration::from_millis(20),
            peer_addrs: Vec::new(),
            commit_wait: Duration::from_secs(2),
            shard: None,
        }
    }
}

/// A sharded member's routing state: its shard id plus the route table
/// it enforces, backed by the durable per-member map store (the atomic
/// cutover record of the split protocol).
struct ShardState {
    shard: u32,
    map: Mutex<ShardMap>,
    store: ShardMapStore,
}

struct HaShared {
    node: Mutex<ReplicaNode>,
    schema: Schema,
    cfg: HaConfig,
    shutdown: AtomicBool,
    connections: AtomicUsize,
    /// Logical replication time, advanced only by the ticker thread.
    ticks: AtomicU64,
    /// Present iff this member serves a shard of a sharded topology.
    shard: Option<ShardState>,
}

impl HaShared {
    /// Lock the replica node, recovering from mutex poisoning — same
    /// rationale as [`Shared::core`]: the node's durable state (WAL +
    /// election meta) is fsynced before any ack, so a panicked handler
    /// thread leaves nothing worth protecting behind the poison bit.
    fn node(&self) -> MutexGuard<'_, ReplicaNode> {
        // crh-lint: allow(unbounded-wait-in-serve) — in-process mutex; replication waits under the guard are themselves deadline-clamped, so holders are bounded
        self.node.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn shard_state(&self) -> Result<&ShardState, ServeError> {
        self.shard
            .as_ref()
            .ok_or_else(|| ServeError::Protocol("shard frame sent to an unsharded member".into()))
    }

    /// Gate a shard-checked frame: it must name this member's shard,
    /// carry the current map version, and (for writes) every claim must
    /// route here under that map — each violation is a distinct typed
    /// refusal the router can act on.
    fn check_shard(
        &self,
        shard: u32,
        map_version: u64,
        objects: impl IntoIterator<Item = u32>,
    ) -> Result<(), ServeError> {
        let st = self.shard_state()?;
        if shard != st.shard {
            return Err(ServeError::WrongShard {
                shard,
                at: st.shard,
            });
        }
        // crh-lint: allow(unbounded-wait-in-serve) — in-process mutex over the route table; holders only read/swap a small struct
        let map = st.map.lock().unwrap_or_else(PoisonError::into_inner);
        if map_version != map.version {
            return Err(ServeError::StaleShardMap {
                got: map_version,
                current: map.version,
            });
        }
        for object in objects {
            let owner = map.shard_of(object);
            if owner != st.shard {
                return Err(ServeError::WrongShard {
                    shard: owner,
                    at: st.shard,
                });
            }
        }
        Ok(())
    }

    fn route_table(&self) -> Response {
        match self.shard_state() {
            Ok(st) => {
                // crh-lint: allow(unbounded-wait-in-serve) — in-process mutex over the route table; holders only read/swap a small struct
                let map = st.map.lock().unwrap_or_else(PoisonError::into_inner);
                Response::RouteTable {
                    version: map.version,
                    shard: st.shard,
                    ranges: map.ranges().to_vec(),
                }
            }
            Err(e) => Response::from_error(&e),
        }
    }

    /// Seed this (virgin) member with the donor's committed state for a
    /// split. Shard- and cluster-key-checked; the node itself refuses
    /// once it holds any state.
    fn split_stage(
        &self,
        token: u64,
        shard: u32,
        snapshot: Option<&[u8]>,
        records: &[Vec<u8>],
    ) -> Response {
        let st = match self.shard_state() {
            Ok(st) => st,
            Err(e) => return Response::from_error(&e),
        };
        let mut node = self.node();
        if token != node.cluster_key() {
            return Response::from_error(&ServeError::Protocol(
                "split-stage frame with a foreign cluster key".into(),
            ));
        }
        if shard != st.shard {
            return Response::from_error(&ServeError::WrongShard {
                shard,
                at: st.shard,
            });
        }
        // crh-lint: allow(blocking-under-lock) — split staging persists the seeded shard under `node` so a crash cannot observe a half-seeded child
        match node.seed_split(snapshot, records) {
            Ok(head) => Response::Ack {
                seq: head.saturating_sub(1),
                chunks_seen: head,
            },
            Err(e) => Response::from_error(&e),
        }
    }

    /// Adopt a new route table: validate it, refuse regressions and
    /// conflicting same-version tables, persist it through the durable
    /// store (*the* atomic cutover record — a crash before the rename
    /// recovers the old map, after it the new one), then serve under it.
    fn split_cutover(&self, token: u64, version: u64, ranges: Vec<ShardRange>) -> Response {
        let st = match self.shard_state() {
            Ok(st) => st,
            Err(e) => return Response::from_error(&e),
        };
        if token != self.node().cluster_key() {
            return Response::from_error(&ServeError::Protocol(
                "split-cutover frame with a foreign cluster key".into(),
            ));
        }
        let new_map = match ShardMap::from_ranges(version, ranges) {
            Ok(m) => m,
            Err(e) => return Response::from_error(&e),
        };
        if !new_map.shard_ids().contains(&st.shard) {
            return Response::from_error(&ServeError::Protocol(format!(
                "route table v{version} drops this member's shard {}",
                st.shard
            )));
        }
        // crh-lint: allow(unbounded-wait-in-serve) — in-process mutex over the route table; holders only read/swap a small struct
        let mut map = st.map.lock().unwrap_or_else(PoisonError::into_inner);
        if new_map.version < map.version {
            return Response::from_error(&ServeError::StaleShardMap {
                got: new_map.version,
                current: map.version,
            });
        }
        if new_map.version == map.version {
            if new_map.ranges() == map.ranges() {
                // idempotent retry of an already-adopted cutover
                return Response::Ack {
                    seq: map.version,
                    chunks_seen: map.version,
                };
            }
            return Response::from_error(&ServeError::Protocol(format!(
                "conflicting route table at version {version}"
            )));
        }
        // crh-lint: allow(blocking-under-lock) — persisting the route table under `map` is the cutover's linearization point; racing it would let readers see a map the disk doesn't
        if let Err(e) = st.store.save(&new_map) {
            return Response::from_error(&e);
        }
        *map = new_map;
        Response::Ack {
            seq: version,
            chunks_seen: version,
        }
    }
}

/// One member of a replicated `crh-serve` cluster: a [`ReplicaNode`]
/// state machine behind the same TCP front-end as the standalone
/// [`Server`], plus a ticker thread that drives replication.
///
/// Threading model:
///
/// - connection threads (shared with [`Server`]) decode frames and call
///   into the node under its mutex — client writes stage and then *poll*
///   for quorum commit, replication frames are answered synchronously;
/// - one **ticker** thread advances logical time every
///   [`HaConfig::tick`] and collects the frames the node wants to send
///   under the lock, then hands each frame to a bounded per-peer queue
///   with a non-blocking push;
/// - one **peer sender** thread per peer owns that peer's persistent
///   [`Client`] connection, drains its queue, ships frames, and feeds
///   each reply back into the node. A stalled or black-holing peer
///   therefore delays only its own queue — never heartbeats to the
///   other peers, the tick cadence, or local reads and writes — so one
///   bad peer cannot cause cluster-wide spurious failovers. A full
///   queue simply drops the frame: the protocol retransmits from the
///   follower's acked position on every heartbeat interval, so a drop
///   costs latency, never correctness.
pub struct HaServer {
    shared: Arc<HaShared>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    ticker_thread: Option<JoinHandle<()>>,
}

impl HaServer {
    /// Open the replica state in `serve` and start serving on `addr`.
    pub fn start(
        replica: ReplicaConfig,
        serve: ServeConfig,
        cfg: HaConfig,
        addr: &str,
    ) -> Result<Self, ServeError> {
        let shard_map_path = serve.dir.join("shard.map");
        let (node, _recovery) = ReplicaNode::open(replica, serve)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        // a sharded member recovers its route table from the durable
        // store; the bootstrap map only seeds a store that is still
        // empty (first boot, or a virgin split target)
        let shard = match cfg.shard.clone() {
            Some((shard, bootstrap)) => {
                let store = ShardMapStore::new(shard_map_path);
                let map = match store.load()? {
                    Some(m) => m,
                    None => {
                        store.save(&bootstrap)?;
                        bootstrap
                    }
                };
                Some(ShardState {
                    shard,
                    map: Mutex::new(map),
                    store,
                })
            }
            None => None,
        };

        let schema = node.core().schema().clone();
        let shared = Arc::new(HaShared {
            node: Mutex::new(node),
            schema,
            cfg,
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            ticks: AtomicU64::new(0),
            shard,
        });

        let ticker_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || ticker(&shared))
        };
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };

        Ok(Self {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
            ticker_thread: Some(ticker_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// This member's current role.
    pub fn role(&self) -> Role {
        self.shared.node().role()
    }

    /// This member's current epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.node().epoch()
    }

    /// Chunks known quorum-committed here.
    pub fn commit(&self) -> u64 {
        self.shared.node().commit()
    }

    /// Digest of the folded state (replica-divergence checks).
    pub fn state_digest(&self) -> u64 {
        self.shared.node().state_digest()
    }

    /// Signal shutdown, join the daemon threads, and take a final
    /// snapshot so the next open starts from a clean disk.
    pub fn shutdown(mut self) {
        self.stop();
        // crh-lint: allow(blocking-under-lock) — shutdown quiescence: ticker and peer senders are joined, nothing else contends for `node`
        self.shared.node().snapshot_now().ok();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            // crh-lint: allow(unbounded-wait-in-serve) — shutdown join; the flag is set, the accept loop exits on its next bounded accept tick
            t.join().ok();
        }
        if let Some(t) = self.ticker_thread.take() {
            // crh-lint: allow(unbounded-wait-in-serve) — shutdown join; the ticker sleeps in bounded intervals and re-checks the flag
            t.join().ok();
        }
    }
}

impl Drop for HaServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl FrontEnd for HaShared {
    fn server_cfg(&self) -> &ServerConfig {
        &self.cfg.server
    }
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
    fn connection_count(&self) -> &AtomicUsize {
        &self.connections
    }
    fn handle(self: &Arc<Self>, req: Request) -> Response {
        let now = self.ticks.load(Ordering::SeqCst);
        let (req, budget) = match unwrap_deadline(req) {
            Ok(x) => x,
            Err(e) => return Response::from_error(&e),
        };
        match req {
            Request::Ingest(claims) => ingest_replicated(claims, self, budget),
            Request::IngestCsv(text) => match claims_from_csv(&self.schema, &text) {
                Ok(claims) => ingest_replicated(claims, self, budget),
                Err(e) => Response::from_error(&e),
            },
            Request::Weights | Request::Truth { .. } | Request::Status => {
                replicated_read(&req, self)
            }
            Request::Solve { .. } => replicated_solve(&req, self, budget),
            // the frame names its sender; CatchUp/SeqQuery are answered
            // over this connection, so the handler needs no sender id.
            // The node verifies the frame's cluster key before trusting
            // any of it, so a stray client cannot forge these.
            Request::Replicate { node, .. }
            | Request::Heartbeat { node, .. }
            // crh-lint: allow(blocking-under-lock) — the replicated fold's WAL fsync must be atomic with the replication state transition it acks
            | Request::Promote { node, .. } => self.node().handle(node, &req, now),
            // crh-lint: allow(blocking-under-lock) — catch-up replay folds durably under `node` for the same reason as Replicate
            Request::CatchUp { .. } | Request::SeqQuery { .. } => self.node().handle(0, &req, now),
            Request::RouteTable => self.route_table(),
            Request::ShardIngest {
                shard,
                map_version,
                claims,
            } => match self.check_shard(shard, map_version, claims.iter().map(|c| c.object)) {
                Ok(()) => ingest_replicated(claims, self, budget),
                Err(e) => Response::from_error(&e),
            },
            Request::ShardTruth {
                shard,
                map_version,
                object,
                property,
            } => match self.check_shard(shard, map_version, [object]) {
                Ok(()) => replicated_read(&Request::Truth { object, property }, self),
                Err(e) => Response::from_error(&e),
            },
            Request::SplitStage {
                token,
                shard,
                snapshot,
                records,
            } => self.split_stage(token, shard, snapshot.as_deref(), &records),
            Request::SplitCutover {
                token,
                version,
                ranges,
            } => self.split_cutover(token, version, ranges),
            Request::Probe { nonce } => Response::ProbeAck { nonce },
            // decode refuses nested wrappers and unwrap_deadline stripped
            // the outer one, but the type still admits it
            Request::WithDeadline { .. } => {
                Response::from_error(&ServeError::Protocol("nested deadline wrapper".into()))
            }
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                let mut node = self.node();
                // crh-lint: allow(blocking-under-lock) — shutdown snapshot atomic with the chunks_seen it acks, as in the single-node path
                node.snapshot_now().ok();
                let chunks_seen = node.core().chunks_seen();
                Response::Ack {
                    seq: chunks_seen.saturating_sub(1),
                    chunks_seen,
                }
            }
        }
    }
}

/// Stage a client chunk, then poll until the replication quorum commits
/// it (the ticker advances the commit as peer acks arrive) or the
/// commit-wait deadline passes.
///
/// The ack condition is [`ReplicaNode::ack_safe`], not bare
/// `is_committed`: if this node is deposed during the wait, its staged
/// record is truncated and the new primary may commit *different* bytes
/// at the same sequence — a commit bound passing `seq` then says nothing
/// about the client's write. Acking it would report a discarded write as
/// durable, so a deposed node answers `NotPrimary` instead and the
/// client retries against the new primary.
fn ingest_replicated(
    claims: Vec<ChunkClaim>,
    shared: &Arc<HaShared>,
    budget: Option<Duration>,
) -> Response {
    // the staged epoch is captured under the same lock as the staging
    // itself, so it names exactly the reign the record belongs to
    let (seq, epoch) = {
        let mut node = shared.node();
        // crh-lint: allow(blocking-under-lock) — staging the record durably under `node` is what makes the captured epoch name its reign; see the comment above
        match node.client_ingest(&claims) {
            Ok(seq) => (seq, node.epoch()),
            Err(e) => return Response::from_error(&e),
        }
    };
    // Once the record is staged durably, a budget that runs out mid-wait
    // keeps NotReplicated semantics (the write may still commit; the
    // client must not assume it was refused) — the budget only shortens
    // how long this hop is willing to wait for the quorum.
    let deadline = Instant::now() + clamp_wait(shared.cfg.commit_wait, budget);
    loop {
        {
            let node = shared.node();
            if node.ack_safe(seq, epoch) {
                return Response::Ack {
                    seq,
                    chunks_seen: node.commit(),
                };
            }
            if node.role() != Role::Primary || node.epoch() != epoch {
                return Response::from_error(&ServeError::NotPrimary {
                    hint: node.leader_hint(),
                });
            }
            if Instant::now() >= deadline || shared.is_shutdown() {
                // durable here, but the client must treat it as un-acked
                return Response::from_error(&ServeError::NotReplicated {
                    seq,
                    acked: node.ack_count(seq),
                    quorum: node.quorum(),
                });
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Serve a cheap read; a non-primary wraps the answer with its staleness
/// bound so the client knows how far behind the primary it may be.
fn replicated_read(req: &Request, shared: &Arc<HaShared>) -> Response {
    let node = shared.node();
    let inner = match req {
        Request::Weights => Response::Weights(node.core().weights().to_vec()),
        Request::Truth { object, property } => {
            Response::Truth(node.core().truth(*object, *property))
        }
        Request::Status => {
            let status = node.core().status();
            Response::Status {
                chunks_seen: status.chunks_seen,
                wal_records: status.wal_records,
                cached_truths: status.cached_truths,
                queue_depth: 0,
                quarantined: status.quarantined,
            }
        }
        // the dispatcher routes only the three read variants here; answer
        // a protocol error rather than panicking if that ever changes
        _ => {
            return Response::from_error(&ServeError::Protocol(
                "replicated_read called with a non-read request".into(),
            ))
        }
    };
    wrap_follower_read(&node, inner)
}

/// A batch solve copies the weight seed under the lock, solves without
/// it, and wraps the result with the staleness bound observed *at seed
/// time* (the seed is what the answer actually depends on).
fn replicated_solve(req: &Request, shared: &Arc<HaShared>, budget: Option<Duration>) -> Response {
    let Request::Solve {
        tol,
        max_iters,
        claims,
    } = req
    else {
        // the dispatcher routes only Solve here; answer a protocol error
        // rather than panicking if that ever changes
        return Response::from_error(&ServeError::Protocol(
            "replicated_solve called with a non-solve request".into(),
        ));
    };
    let (seed, threads, role, lag) = {
        let node = shared.node();
        (
            node.core().weights().to_vec(),
            node.core().solve_threads(),
            node.role(),
            node.lag(),
        )
    };
    let cancel = CancelToken::with_deadline(clamp_wait(shared.cfg.server.solve_deadline, budget));
    let inner = match solve_claims(
        &shared.schema,
        claims,
        &seed,
        *tol,
        *max_iters as usize,
        threads,
        &cancel,
    ) {
        Ok(out) => Response::Solved {
            weights: out.weights,
            objective: out.objective,
            iterations: out.iterations,
        },
        Err(e) => Response::from_error(&e),
    };
    if role == Role::Primary {
        inner
    } else {
        Response::FollowerRead {
            lag,
            inner: inner.encode(),
        }
    }
}

fn wrap_follower_read(node: &ReplicaNode, inner: Response) -> Response {
    if node.role() == Role::Primary {
        inner
    } else {
        Response::FollowerRead {
            lag: node.lag(),
            inner: inner.encode(),
        }
    }
}

/// Frames buffered per peer between the ticker and that peer's sender
/// thread. Sized to ride out a few slow ticks; overflow drops frames,
/// which the heartbeat-driven retransmit protocol absorbs.
const PEER_QUEUE_CAP: usize = 64;

/// The replication engine's clock: advance logical time every tick and
/// fan the frames the node emits out to the per-peer sender threads.
/// This thread never touches a socket, so no peer can stall it.
fn ticker(shared: &Arc<HaShared>) {
    let mut senders: std::collections::HashMap<u32, mpsc::SyncSender<(u64, Request)>> =
        std::collections::HashMap::new();
    let mut handles = Vec::new();
    for (dest, addr) in shared.cfg.peer_addrs.clone() {
        let (tx, rx) = mpsc::sync_channel::<(u64, Request)>(PEER_QUEUE_CAP);
        let shared = Arc::clone(shared);
        handles.push(std::thread::spawn(move || {
            peer_sender(&shared, dest, &addr, &rx);
        }));
        senders.insert(dest, tx);
    }
    while !shared.is_shutdown() {
        std::thread::sleep(shared.cfg.tick);
        let now = shared.ticks.fetch_add(1, Ordering::SeqCst) + 1;
        // a failed fold inside tick() leaves nothing to ship this round
        // crh-lint: allow(blocking-under-lock) — an election's term bump must be durable before any frame naming the term leaves this node
        let frames = shared.node().tick(now).unwrap_or_default();
        for (dest, req) in frames {
            if let Some(tx) = senders.get(&dest) {
                // non-blocking: a stalled peer's full queue drops the
                // frame; the next heartbeat interval re-ships from the
                // follower's acked position
                tx.try_send((now, req)).ok();
            }
        }
    }
    // closing the queues wakes the sender threads so they can exit
    drop(senders);
    for h in handles {
        // crh-lint: allow(unbounded-wait-in-serve) — shutdown join; the dropped queues wake each sender thread immediately
        h.join().ok();
    }
}

/// Own one peer's connection: drain its frame queue, ship each frame,
/// and feed the reply back into the node. Connection failures are
/// silence (exactly like the simulator's dropped frames); the thread
/// reconnects on the next frame.
fn peer_sender(shared: &Arc<HaShared>, dest: u32, addr: &str, rx: &mpsc::Receiver<(u64, Request)>) {
    let mut conn: Option<Client> = None;
    loop {
        let (now, req) = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(x) => x,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.is_shutdown() {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        if shared.is_shutdown() {
            return;
        }
        if conn.is_none() {
            conn = Client::connect(addr, shared.cfg.server.io_timeout).ok();
        }
        let Some(c) = conn.as_mut() else {
            continue; // dead peer: drop the frame, retry on the next one
        };
        match c.call_raw(&req) {
            Ok(resp) => {
                // crh-lint: allow(blocking-under-lock) — a quorum-ack commit advance folds durably under `node` before the leader acks clients
                shared.node().on_reply(dest, &resp, now).ok();
            }
            Err(_) => {
                // broken connection; reconnect for the next frame
                conn = None;
            }
        }
    }
}
