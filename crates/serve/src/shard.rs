//! Entry-sharded serving: the deterministic shard map, its durable
//! store, and a simulated sharded topology for chaos testing.
//!
//! Per-entity truth discovery is embarrassingly partitionable — no
//! iteration of CRH ever couples two objects except through source
//! weights, and each shard group estimates weights over its own slice —
//! so the horizontal scaling unit is an *entry range*: the 64-bit hash
//! space of object ids, cut into contiguous ranges, one quorum-replicated
//! group per range. The hash point is [`crh_mapreduce::key_hash`], the
//! same seam the MapReduce engine partitions reducers with, so a router,
//! every group member, and any offline replay all agree on placement
//! without coordination.
//!
//! The map itself is tiny, versioned, and durable ([`ShardMapStore`],
//! written with the same write-tmp → fsync → rename → dir-fsync
//! discipline as snapshots and election meta). A rebalance
//! ([`ShardedSim::split`]) stages the moved range onto virgin members via
//! the existing snapshot + catch-up protocol and only then writes the
//! next map version as the *atomic cutover record*: a crash at any stage
//! recovers to exactly the pre- or post-cutover topology, never between.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crh_core::persist::{crc32, Dec, Enc};
use crh_core::value::Truth;

use crate::core::{decode_chunk, ChunkClaim, ServeConfig, ServeCore};
use crate::error::ServeError;
use crate::failover::SimCluster;
use crate::faults::{ShardFaultPlan, SplitCrash};
use crate::proto::{Request, Response};
use crate::vfs::Vfs;

const MAP_MAGIC: [u8; 8] = *b"CRHSHMP1";

/// Steps the split coordinator waits for a reachable donor primary
/// before giving up (the map stays pre-cutover on that path).
const SPLIT_PRIMARY_BUDGET: u64 = 200;

/// The entry-space hash point for `object`: every placement decision —
/// router, shard member, recovery replay — derives from this one
/// function, via [`crh_mapreduce::key_hash`].
pub fn entry_point(object: u32) -> u64 {
    crh_mapreduce::key_hash(&object)
}

/// One contiguous slice of the 64-bit entry-hash space, owned by one
/// shard group. Bounds are inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// The owning shard group's id.
    pub shard: u32,
    /// First hash point in the range (inclusive).
    pub start: u64,
    /// Last hash point in the range (inclusive).
    pub end: u64,
}

/// A versioned, total, non-overlapping assignment of the entry-hash
/// space to shard groups. Construction validates totality (the ranges
/// are sorted, contiguous, and cover `[0, u64::MAX]`) so `shard_of` can
/// never fail to place an entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Monotone map version; every cutover increments it.
    pub version: u64,
    ranges: Vec<ShardRange>,
}

impl ShardMap {
    /// Version-0 map cutting the hash space into `n` near-equal ranges
    /// for shards `0..n`.
    pub fn uniform(n: u32) -> Result<Self, ServeError> {
        if n == 0 {
            return Err(ServeError::Protocol(
                "a shard map needs at least one shard".into(),
            ));
        }
        let width = u64::MAX / u64::from(n);
        let ranges = (0..n)
            .map(|s| ShardRange {
                shard: s,
                start: u64::from(s) * width,
                end: if s + 1 == n {
                    u64::MAX
                } else {
                    (u64::from(s) + 1) * width - 1
                },
            })
            .collect();
        Self::from_ranges(0, ranges)
    }

    /// Build a map from an explicit range table, refusing anything that
    /// is not a total, sorted, non-overlapping cover with unique owners.
    pub fn from_ranges(version: u64, ranges: Vec<ShardRange>) -> Result<Self, ServeError> {
        let bad = |msg: String| Err(ServeError::Protocol(format!("invalid shard map: {msg}")));
        let Some(first) = ranges.first() else {
            return bad("no ranges".into());
        };
        if first.start != 0 {
            return bad(format!("first range starts at {} not 0", first.start));
        }
        let mut seen = std::collections::BTreeSet::new();
        for (i, r) in ranges.iter().enumerate() {
            if r.start > r.end {
                return bad(format!("range {i} is empty ({} > {})", r.start, r.end));
            }
            if !seen.insert(r.shard) {
                return bad(format!("shard {} owns two ranges", r.shard));
            }
            if let Some(next) = ranges.get(i + 1) {
                if r.end == u64::MAX || next.start != r.end + 1 {
                    return bad(format!(
                        "gap or overlap between range {i} (ends {}) and {} (starts {})",
                        r.end,
                        i + 1,
                        next.start
                    ));
                }
            } else if r.end != u64::MAX {
                return bad(format!("last range ends at {} not u64::MAX", r.end));
            }
        }
        Ok(Self { version, ranges })
    }

    /// The range table, sorted by `start`.
    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// All shard ids, in range order.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.ranges.iter().map(|r| r.shard).collect()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The shard owning `object`. Total by construction.
    pub fn shard_of(&self, object: u32) -> u32 {
        let point = entry_point(object);
        let idx = self.ranges.partition_point(|r| r.start <= point);
        // construction guarantees coverage: idx >= 1 and the preceding
        // range contains the point
        match idx.checked_sub(1).and_then(|i| self.ranges.get(i)) {
            Some(r) => r.shard,
            None => 0,
        }
    }

    /// The next map version: `source`'s range `[s, e]` is cut at `at`
    /// into `[s, at-1]` (kept by `source`) and `[at, e]` (moved to the
    /// previously-unused `new_shard`). Pure — the caller commits the
    /// result through the durable store.
    pub fn split(&self, source: u32, new_shard: u32, at: u64) -> Result<Self, ServeError> {
        if self.ranges.iter().any(|r| r.shard == new_shard) {
            return Err(ServeError::Protocol(format!(
                "shard {new_shard} already owns a range"
            )));
        }
        let Some(src) = self.ranges.iter().find(|r| r.shard == source) else {
            return Err(ServeError::Protocol(format!(
                "split source shard {source} owns no range"
            )));
        };
        if at <= src.start || at > src.end {
            return Err(ServeError::Protocol(format!(
                "split point {at} outside source range ({}, {}]",
                src.start, src.end
            )));
        }
        let mut ranges = Vec::with_capacity(self.ranges.len() + 1);
        for r in &self.ranges {
            if r.shard == source {
                ranges.push(ShardRange {
                    shard: source,
                    start: r.start,
                    end: at - 1,
                });
                ranges.push(ShardRange {
                    shard: new_shard,
                    start: at,
                    end: r.end,
                });
            } else {
                ranges.push(*r);
            }
        }
        Self::from_ranges(self.version + 1, ranges)
    }

    /// Encode for the wire and the durable store.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.version);
        e.u32(self.ranges.len() as u32);
        for r in &self.ranges {
            e.u32(r.shard);
            e.u64(r.start);
            e.u64(r.end);
        }
        e.into_bytes()
    }

    /// Decode and re-validate (a corrupt or hand-built table is refused,
    /// not trusted).
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        let mut d = Dec::new(bytes);
        let version = d.u64()?;
        let n = d.u32()? as usize;
        let mut ranges = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            ranges.push(ShardRange {
                shard: d.u32()?,
                start: d.u64()?,
                end: d.u64()?,
            });
        }
        if !d.is_exhausted() {
            return Err(ServeError::Protocol("trailing bytes in shard map".into()));
        }
        Self::from_ranges(version, ranges)
    }
}

/// The durable home of a topology's current [`ShardMap`] — the file
/// whose atomic replacement *is* the split cutover record. Written with
/// the snapshot discipline (temp + fsync + rename + dir-fsync), so the
/// store always holds exactly one complete, CRC-verified map: the
/// pre-cutover one until the rename, the post-cutover one after.
#[derive(Debug, Clone)]
pub struct ShardMapStore {
    path: PathBuf,
    vfs: Vfs,
}

impl ShardMapStore {
    /// A store at `path` (the file need not exist yet) on a healthy
    /// passthrough disk.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self::with_vfs(path, Vfs::passthrough())
    }

    /// A store at `path` reading and writing through `vfs`, so a seeded
    /// [`crate::vfs::DiskFaultPlan`] reaches the cutover record too.
    pub fn with_vfs(path: impl Into<PathBuf>, vfs: Vfs) -> Self {
        Self {
            path: path.into(),
            vfs,
        }
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Load the current map; `None` when no cutover record was ever
    /// written. Corruption is a typed refusal — guessing a topology can
    /// route writes into the wrong group.
    pub fn load(&self) -> Result<Option<ShardMap>, ServeError> {
        if !self.vfs.exists(&self.path) {
            return Ok(None);
        }
        let bytes = self.vfs.read(&self.path)?;
        let corrupt = |reason| ServeError::WalCorrupt { offset: 0, reason };
        if bytes.len() < MAP_MAGIC.len() + 4 || !bytes.starts_with(&MAP_MAGIC) {
            return Err(corrupt("missing or wrong shard map header"));
        }
        let crc_at = MAP_MAGIC.len();
        let stored_crc = Dec::new(bytes.get(crc_at..).unwrap_or(&[])).u32()?;
        let payload = bytes.get(crc_at + 4..).unwrap_or(&[]);
        if crc32(payload) != stored_crc {
            return Err(corrupt("shard map CRC mismatch"));
        }
        Ok(Some(ShardMap::decode(payload)?))
    }

    /// Durably replace the stored map. Returns only after the rename and
    /// the directory fsync, so a torn write can never surface as a
    /// half-cutover topology.
    pub fn save(&self, map: &ShardMap) -> Result<(), ServeError> {
        if let Some(parent) = self.path.parent() {
            self.vfs.create_dir_all(parent)?;
        }
        let payload = map.encode();
        let mut bytes = Vec::with_capacity(MAP_MAGIC.len() + 4 + payload.len());
        bytes.extend_from_slice(&MAP_MAGIC);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        self.vfs.write_atomic(&self.path, &bytes)
    }
}

/// A scatter-gather result with partial-failure semantics: the gathered
/// per-shard values plus the shards that could not answer. An empty
/// `missing_shards` is a complete read; a non-empty one is the typed
/// *degraded* contract — callers that need totality call
/// [`require_all`](Self::require_all) and get a typed
/// [`ServeError::Degraded`] instead of a silent partial answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Sharded<T> {
    /// The gathered value (per-shard entries for the shards that did
    /// answer).
    pub value: T,
    /// Shard ids whose groups were unreachable, ascending.
    pub missing_shards: Vec<u32>,
}

impl<T> Sharded<T> {
    /// Whether any shard failed to answer.
    pub fn is_degraded(&self) -> bool {
        !self.missing_shards.is_empty()
    }

    /// The value iff the read was complete, else the typed degraded
    /// refusal.
    pub fn require_all(self) -> Result<T, ServeError> {
        if self.missing_shards.is_empty() {
            Ok(self.value)
        } else {
            Err(ServeError::Degraded {
                missing_shards: self.missing_shards,
            })
        }
    }
}

/// One planned rebalance: cut `source`'s range at `at`, moving the upper
/// part to the previously-unused `new_shard`.
#[derive(Debug, Clone, Copy)]
pub struct SplitSpec {
    /// The donor shard.
    pub source: u32,
    /// The new shard id (must not own a range yet).
    pub new_shard: u32,
    /// The cut point (first hash owned by `new_shard`).
    pub at: u64,
}

/// How a [`ShardedSim::split`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitOutcome {
    /// The cutover record is durable and the new group is open.
    Done {
        /// The post-split map version.
        version: u64,
    },
    /// A seeded crash fired at this stage boundary; the in-memory
    /// coordinator state is abandoned, exactly as `kill -9` would leave
    /// it. Re-[`open`](ShardedSim::open) the topology to recover.
    Crashed(SplitCrash),
}

/// What a split stages onto the new group: the donor's snapshot (if it
/// has folded one) plus the committed record tail.
type DonorState = (Option<Vec<u8>>, Vec<Vec<u8>>);

/// A simulated sharded topology: one [`SimCluster`] per shard group,
/// each wired with its own slice of a [`ShardFaultPlan`]'s chaos, plus
/// the durable shard-map store and the split coordinator. The stepped
/// groups share nothing but the map — exactly the independence the
/// degraded-read contract relies on.
pub struct ShardedSim {
    map: ShardMap,
    store: ShardMapStore,
    groups: BTreeMap<u32, SimCluster>,
    replicas: usize,
    serve_for: Box<dyn Fn(u32, u32) -> ServeConfig>,
    plan: ShardFaultPlan,
}

impl ShardedSim {
    /// Open (or recover) a topology. A store with no cutover record is a
    /// fresh deployment: the uniform `initial_shards`-way map is written
    /// first. A store *with* a record adopts it verbatim — after a
    /// crashed split this lands on exactly the pre- or post-cutover
    /// topology, and any partially-staged member directories of a shard
    /// the adopted map does not name are wiped by the next split attempt
    /// before re-staging.
    ///
    /// `serve_for(shard, node)` maps a member to its daemon config; each
    /// member must use its own state directory.
    pub fn open(
        initial_shards: u32,
        replicas: usize,
        store_path: impl Into<PathBuf>,
        serve_for: impl Fn(u32, u32) -> ServeConfig + 'static,
        plan: ShardFaultPlan,
    ) -> Result<Self, ServeError> {
        let store = ShardMapStore::new(store_path);
        let map = match store.load()? {
            Some(m) => m,
            None => {
                let m = ShardMap::uniform(initial_shards)?;
                store.save(&m)?;
                m
            }
        };
        let serve_for: Box<dyn Fn(u32, u32) -> ServeConfig> = Box::new(serve_for);
        let mut groups = BTreeMap::new();
        for shard in map.shard_ids() {
            let gplan = plan.plan_for(shard, replicas)?;
            let f = &serve_for;
            let group = SimCluster::new(replicas, move |id| f(shard, id), gplan)?;
            groups.insert(shard, group);
        }
        Ok(Self {
            map,
            store,
            groups,
            replicas,
            serve_for,
            plan,
        })
    }

    /// The current shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard owning `object`.
    pub fn shard_of(&self, object: u32) -> u32 {
        self.map.shard_of(object)
    }

    /// Borrow one shard's group.
    pub fn group(&self, shard: u32) -> Option<&SimCluster> {
        self.groups.get(&shard)
    }

    /// Mutably borrow one shard's group.
    pub fn group_mut(&mut self, shard: u32) -> Option<&mut SimCluster> {
        self.groups.get_mut(&shard)
    }

    /// Advance every group one step, in shard order (determinism).
    pub fn step(&mut self) -> Result<(), ServeError> {
        for group in self.groups.values_mut() {
            group.step()?;
        }
        Ok(())
    }

    /// The first group's step counter (all groups step together).
    pub fn now(&self) -> u64 {
        self.groups.values().next().map_or(0, SimCluster::now)
    }

    /// Partition `claims` by owning shard, preserving order within each
    /// shard's sub-chunk.
    pub fn route(&self, claims: &[ChunkClaim]) -> BTreeMap<u32, Vec<ChunkClaim>> {
        let mut out: BTreeMap<u32, Vec<ChunkClaim>> = BTreeMap::new();
        for c in claims {
            out.entry(self.map.shard_of(c.object))
                .or_default()
                .push(c.clone());
        }
        out
    }

    /// Submit one sub-chunk to `shard`'s current primary. Misrouted
    /// claims are refused before any state changes, mirroring the wire
    /// protocol's `WRONG_SHARD` check.
    pub fn ingest_shard(
        &mut self,
        shard: u32,
        claims: &[ChunkClaim],
    ) -> Result<(usize, u64), ServeError> {
        if let Some(c) = claims.iter().find(|c| self.map.shard_of(c.object) != shard) {
            return Err(ServeError::WrongShard {
                shard,
                at: self.map.shard_of(c.object),
            });
        }
        let Some(group) = self.groups.get_mut(&shard) else {
            return Err(ServeError::Degraded {
                missing_shards: vec![shard],
            });
        };
        group.client_ingest(claims)
    }

    /// Whether `shard`'s chunk `seq` is quorum-committed.
    pub fn is_committed(&self, shard: u32, seq: u64) -> bool {
        self.groups.get(&shard).is_some_and(|g| g.is_committed(seq))
    }

    /// Read one cell's truth from its owning group (healthy primary
    /// first, else any alive member on a healthy disk, else whatever
    /// answers — see [`SimCluster::read_target`]) with the member's
    /// staleness lag. A group with no alive member is the typed degraded
    /// refusal — the single-shard strict form of the scatter-gather
    /// contract.
    pub fn truth(&self, object: u32, property: u32) -> Result<(Option<Truth>, u64), ServeError> {
        let shard = self.map.shard_of(object);
        let Some(group) = self.groups.get(&shard) else {
            return Err(ServeError::Degraded {
                missing_shards: vec![shard],
            });
        };
        let reader = group.read_target();
        match reader.and_then(|i| group.node(i)) {
            Some(n) => Ok((n.core().truth(object, property), n.lag())),
            None => Err(ServeError::Degraded {
                missing_shards: vec![shard],
            }),
        }
    }

    /// Scatter-gather the per-shard folded-state digests: `(shard,
    /// digest)` from every group that has an alive member, with
    /// unreachable groups reported in `missing_shards` instead of
    /// failing the whole read.
    pub fn scatter_digests(&self) -> Sharded<Vec<(u32, u64)>> {
        let mut value = Vec::new();
        let mut missing = Vec::new();
        for (&shard, group) in &self.groups {
            let reader = group.read_target();
            match reader.and_then(|i| group.node(i)) {
                Some(n) => value.push((shard, n.state_digest())),
                None => missing.push(shard),
            }
        }
        Sharded {
            value,
            missing_shards: missing,
        }
    }

    /// Settle every group (all members alive, digest-equal, drained) and
    /// return the per-shard digests in shard order.
    pub fn settle_all(
        &mut self,
        min_steps: u64,
        max_steps: u64,
    ) -> Result<Vec<(u32, u64)>, ServeError> {
        let mut out = Vec::new();
        for (&shard, group) in &mut self.groups {
            out.push((shard, group.settle(min_steps, max_steps)?));
        }
        Ok(out)
    }

    /// Rebalance: move the upper part of `spec.source`'s range onto the
    /// new group `spec.new_shard`.
    ///
    /// Protocol, in strict order (each boundary is a [`SplitCrash`]
    /// point the fault plan can fire at):
    ///
    /// 1. wipe any partial staging directories left by a crashed
    ///    earlier attempt, then fetch a snapshot + committed catch-up
    ///    records from the donor group's primary (the donor group keeps
    ///    stepping — and keeps taking its planned faults — while the
    ///    coordinator waits);
    /// 2. seed every new-group member directory at the `ServeCore`
    ///    level: install the snapshot, apply the records, all durable;
    /// 3. write the next map version to the durable store — **the
    ///    atomic cutover record**;
    /// 4. adopt the map in memory and open the new group over the
    ///    seeded directories.
    ///
    /// A crash before step 3 recovers pre-cutover (the staged
    /// directories are garbage to be wiped); a crash after it recovers
    /// post-cutover (the directories are complete by ordering). There is
    /// no intermediate observable state.
    pub fn split(&mut self, spec: SplitSpec) -> Result<SplitOutcome, ServeError> {
        // pre-flight the new map first: an invalid spec must refuse
        // before any I/O
        let new_map = self.map.split(spec.source, spec.new_shard, spec.at)?;
        if self.plan.split_crash == Some(SplitCrash::PreStage) {
            return Ok(SplitOutcome::Crashed(SplitCrash::PreStage));
        }
        // staging hygiene: a crashed earlier attempt may have left
        // partial member directories; they are not named by the durable
        // map, so they are dead weight to re-stage from scratch
        for node in 0..self.replicas as u32 {
            let cfg = (self.serve_for)(spec.new_shard, node);
            let _ = cfg.vfs.remove_dir_all(&cfg.dir);
        }
        let (snapshot, records) = self.fetch_donor_state(spec.source)?;
        for node in 0..self.replicas {
            if node == 1 && self.plan.split_crash == Some(SplitCrash::MidCatchUp) {
                // one member fully staged, the rest untouched — the
                // worst partial-staging state
                return Ok(SplitOutcome::Crashed(SplitCrash::MidCatchUp));
            }
            let cfg = (self.serve_for)(spec.new_shard, node as u32);
            let (mut core, _) = ServeCore::open(cfg)?;
            if let Some(s) = &snapshot {
                core.install_snapshot(s)?;
            }
            for r in &records {
                if let crate::core::ApplyOutcome::Gap { expected } = core.apply_replicated(r)? {
                    return Err(ServeError::Protocol(format!(
                        "donor catch-up records are not contiguous (expected seq {expected})"
                    )));
                }
            }
            // dropped here: the seeded state is durable (snapshot install
            // and WAL appends both fsync), which is all staging needs
        }
        // the atomic cutover record
        self.store.save(&new_map)?;
        if self.plan.split_crash == Some(SplitCrash::PostCutoverRecord) {
            return Ok(SplitOutcome::Crashed(SplitCrash::PostCutoverRecord));
        }
        let gplan = self.plan.plan_for(spec.new_shard, self.replicas)?;
        let f = &self.serve_for;
        let shard = spec.new_shard;
        let group = SimCluster::new(self.replicas, move |id| f(shard, id), gplan)?;
        self.groups.insert(spec.new_shard, group);
        self.map = new_map;
        if self.plan.split_crash == Some(SplitCrash::PreAck) {
            return Ok(SplitOutcome::Crashed(SplitCrash::PreAck));
        }
        Ok(SplitOutcome::Done {
            version: self.map.version,
        })
    }

    /// Fetch a snapshot plus the committed record tail from the donor
    /// group's primary, via the same catch-up frames a rejoining
    /// follower uses. Bounded: if no primary becomes reachable within
    /// [`SPLIT_PRIMARY_BUDGET`] steps the split aborts (pre-cutover).
    fn fetch_donor_state(&mut self, source: u32) -> Result<DonorState, ServeError> {
        let Some(group) = self.groups.get_mut(&source) else {
            return Err(ServeError::Protocol(format!(
                "split source shard {source} has no group"
            )));
        };
        for _ in 0..SPLIT_PRIMARY_BUDGET {
            // keep the donor group's chaos running while we wait: faults
            // scheduled mid-split stay live
            group.step()?;
            let Some(p) = group.primary() else { continue };
            let epoch = match group.node(p) {
                Some(n) => n.epoch(),
                None => continue,
            };
            let now = group.now();
            let req = Request::CatchUp {
                token: 0,
                epoch,
                from: 0,
            };
            let Some(node) = group.node_mut(p) else {
                continue;
            };
            let resp = node.handle(p as u32, &req, now);
            if let Response::CatchUpRecords {
                commit,
                snapshot,
                records,
                ..
            } = resp
            {
                // only the committed prefix moves: records beyond the
                // quorum commit could still be superseded by an election
                let mut committed = Vec::with_capacity(records.len());
                for r in records {
                    let (seq, _) = decode_chunk(&r)?;
                    if seq < commit {
                        committed.push(r);
                    }
                }
                return Ok((snapshot, committed));
            }
        }
        Err(ServeError::RetriesExhausted {
            attempts: SPLIT_PRIMARY_BUDGET as u32,
            log: vec![format!(
                "no reachable primary in donor shard {source} within {SPLIT_PRIMARY_BUDGET} steps"
            )],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_map_covers_the_space_and_places_deterministically() {
        for n in [1u32, 2, 3, 5, 16] {
            let m = ShardMap::uniform(n).unwrap();
            assert_eq!(m.num_shards(), n as usize);
            assert_eq!(m.version, 0);
            for object in 0..500u32 {
                let s = m.shard_of(object);
                assert!(s < n);
                assert_eq!(s, m.shard_of(object), "placement is deterministic");
            }
        }
        assert!(ShardMap::uniform(0).is_err());
    }

    #[test]
    fn placement_agrees_with_the_mapreduce_seam() {
        let m = ShardMap::uniform(4).unwrap();
        for object in 0..200u32 {
            let point = crh_mapreduce::key_hash(&object);
            let by_range = m
                .ranges()
                .iter()
                .find(|r| r.start <= point && point <= r.end)
                .unwrap()
                .shard;
            assert_eq!(m.shard_of(object), by_range);
        }
    }

    #[test]
    fn invalid_range_tables_are_refused() {
        let r = |shard, start, end| ShardRange { shard, start, end };
        assert!(ShardMap::from_ranges(0, vec![]).is_err(), "empty");
        assert!(
            ShardMap::from_ranges(0, vec![r(0, 1, u64::MAX)]).is_err(),
            "does not start at 0"
        );
        assert!(
            ShardMap::from_ranges(0, vec![r(0, 0, 10)]).is_err(),
            "does not end at u64::MAX"
        );
        assert!(
            ShardMap::from_ranges(0, vec![r(0, 0, 10), r(1, 12, u64::MAX)]).is_err(),
            "gap"
        );
        assert!(
            ShardMap::from_ranges(0, vec![r(0, 0, 10), r(1, 5, u64::MAX)]).is_err(),
            "overlap"
        );
        assert!(
            ShardMap::from_ranges(0, vec![r(0, 0, 10), r(0, 11, u64::MAX)]).is_err(),
            "duplicate owner"
        );
        assert!(ShardMap::from_ranges(0, vec![r(0, 0, u64::MAX)]).is_ok());
    }

    #[test]
    fn split_moves_exactly_the_upper_range() {
        let m = ShardMap::uniform(2).unwrap();
        let src = m.ranges()[0];
        let at = src.start + (src.end - src.start) / 2;
        let m2 = m.split(0, 7, at).unwrap();
        assert_eq!(m2.version, 1);
        assert_eq!(m2.num_shards(), 3);
        // every entry either keeps its shard or moves 0 → 7
        for object in 0..1000u32 {
            let before = m.shard_of(object);
            let after = m2.shard_of(object);
            if before == 0 {
                assert!(after == 0 || after == 7);
                assert_eq!(after == 7, entry_point(object) >= at);
            } else {
                assert_eq!(before, after, "untouched shard moved an entry");
            }
        }
        // invalid specs refuse
        assert!(m.split(9, 7, at).is_err(), "unknown source");
        assert!(m.split(0, 1, at).is_err(), "target already owns a range");
        assert!(m.split(0, 7, src.start).is_err(), "cut at range start");
    }

    #[test]
    fn map_roundtrips_and_store_is_durable() {
        let dir = std::env::temp_dir().join(format!("crh_shardmap_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let m = ShardMap::uniform(3).unwrap();
        assert_eq!(ShardMap::decode(&m.encode()).unwrap(), m);

        let store = ShardMapStore::new(dir.join("shard.map"));
        assert!(store.load().unwrap().is_none(), "empty store reads None");
        store.save(&m).unwrap();
        assert_eq!(store.load().unwrap().unwrap(), m);
        let m2 = m.split(0, 3, m.ranges()[0].end / 2 + 1).unwrap();
        store.save(&m2).unwrap();
        assert_eq!(store.load().unwrap().unwrap(), m2, "replacement is total");

        // corruption is a typed refusal, not a guess
        let bytes = std::fs::read(store.path()).unwrap();
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        std::fs::write(store.path(), &bad).unwrap();
        assert!(store.load().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_wrapper_enforces_the_degraded_contract() {
        let full = Sharded {
            value: vec![(0u32, 1u64)],
            missing_shards: vec![],
        };
        assert!(!full.is_degraded());
        assert_eq!(full.require_all().unwrap(), vec![(0, 1)]);
        let partial = Sharded {
            value: vec![(0u32, 1u64)],
            missing_shards: vec![2],
        };
        assert!(partial.is_degraded());
        match partial.require_all() {
            Err(ServeError::Degraded { missing_shards }) => assert_eq!(missing_shards, vec![2]),
            other => panic!("expected Degraded, got {other:?}"),
        }
    }
}
