//! The storage seam: every byte the daemon persists flows through here.
//!
//! Real disks do not fail cleanly. They tear writes at arbitrary offsets
//! (power loss mid-`write(2)`), rot bits silently (a read returns data
//! that was never written), lie about fsync (the call returns success,
//! the platter never saw the data — surfaced only at the next power
//! loss), throw transient `EIO`s, and die sticky (`ENOSPC`/persistent
//! `EIO` until the drive is replaced). The [`Vfs`] is the single chokepoint
//! between `crh-serve` and `std::fs` so all five behaviours are
//! *injectable*: production uses the zero-cost passthrough
//! ([`Vfs::passthrough`]), chaos tests install a seeded [`DiskFaultPlan`]
//! and the whole durability pipeline — WAL, snapshots, election meta,
//! the staging WAL, the shard-map store — is exercised against a lying
//! disk. The `raw-fs-in-serve` lint keeps the seam load-bearing: direct
//! `std::fs` use anywhere else in the crate is a finding.
//!
//! Fates are pure in `(seed, op_index)` via [`hash_rng`], exactly like
//! [`ServeFaultPlan`](crate::faults::ServeFaultPlan) and
//! [`NetFaultPlan`](crate::faults::NetFaultPlan), so a chaotic run
//! replays byte-for-byte. `max_faults` bounds the chaos with a budget
//! shared across clones and simulated restarts; a **sticky** failure is
//! deliberately *not* budgeted — a dying disk does not heal because the
//! test got tired.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crh_core::persist::{decode_frame, encode_frame};
use crh_core::rng::{hash_rng, Rng};

use crate::error::ServeError;
use crate::faults::ServePoint;

/// Domain tag decorrelating disk fates from the other seeded plans.
const DISK_DOMAIN: u64 = 0xD15C;

/// Sub-domain tag for the slow-op draw. Slowness draws beside the main
/// fate (same op coordinate, different key), so enabling it never
/// reshuffles an existing seeded fault schedule.
const SLOW_DOMAIN: u64 = 0x510;

/// `Ok` iff `p` is a usable probability: finite and within `[0, 1]`.
fn check_prob(name: &str, p: f64) -> Result<(), ServeError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(ServeError::InvalidFaultPlan(format!(
            "{name} = {p} is not a probability in [0, 1]"
        )))
    }
}

/// Recover a possibly-poisoned mutex: the guarded maps stay structurally
/// valid even if a holder panicked mid-update.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // crh-lint: allow(unbounded-wait-in-serve) — in-process mutex over fault-plan maps; holders only mutate local state, so the wait is bounded by local critical sections
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A seeded chaos schedule for the storage layer. Probabilities are
/// per-operation; each operation kind draws its own mutually-exclusive
/// subset (a read can rot, a write can tear, an fsync can lie — any of
/// them can hit a transient `EIO`).
#[derive(Debug, Clone)]
pub struct DiskFaultPlan {
    /// Seed from which every fate is derived.
    pub seed: u64,
    /// Probability a write is torn: a strict prefix of the bytes reaches
    /// the disk and the process is treated as crashed mid-write.
    pub torn_write_prob: f64,
    /// Probability a read returns data with one bit flipped (bit rot).
    pub bit_flip_read_prob: f64,
    /// Probability an fsync reports success without making the data
    /// durable; the loss surfaces at the next [`Vfs::simulate_crash`].
    pub lying_fsync_prob: f64,
    /// Probability an operation fails with a transient `EIO`; the retry
    /// draws a fresh fate.
    pub transient_eio_prob: f64,
    /// Operation index at which the disk goes sticky-bad: every write,
    /// fsync, and metadata update fails from then on (reads survive —
    /// `ENOSPC` semantics). `None` = the disk never dies.
    pub sticky_after: Option<u64>,
    /// Probability a read completes correctly but slowly (gray failure:
    /// the bytes are right, the latency is not).
    pub slow_read_prob: f64,
    /// Probability a write completes correctly but slowly.
    pub slow_write_prob: f64,
    /// Probability an fsync completes honestly but slowly.
    pub slow_fsync_prob: f64,
    /// Operation index at which the disk turns *chronically* slow: every
    /// operation from then on stalls by [`slow_for`](Self::slow_for) —
    /// the dying-but-not-dead disk. Latched and shared across clones,
    /// like sticky death. `None` = never.
    pub slow_after: Option<u64>,
    /// How long a slow operation stalls. Real wall-clock time: slowness
    /// must be observable by timeouts, unlike the virtual-step delays on
    /// the network plan.
    pub slow_for: Duration,
    /// Total budgeted faults before the injector goes permanently
    /// healthy (shared across clones and restarts). Sticky failure is
    /// not budgeted: a dead disk stays dead. Slowness is not budgeted
    /// either — it corrupts nothing, and a congested disk does not heal
    /// because the test got tired.
    pub max_faults: u64,
}

impl DiskFaultPlan {
    /// A plan with the given seed and no faults; enable classes with the
    /// builder methods.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            torn_write_prob: 0.0,
            bit_flip_read_prob: 0.0,
            lying_fsync_prob: 0.0,
            transient_eio_prob: 0.0,
            sticky_after: None,
            slow_read_prob: 0.0,
            slow_write_prob: 0.0,
            slow_fsync_prob: 0.0,
            slow_after: None,
            slow_for: Duration::from_millis(1),
            max_faults: 16,
        }
    }

    /// Set the torn-write probability.
    pub fn torn_writes(mut self, p: f64) -> Self {
        self.torn_write_prob = p;
        self
    }

    /// Set the bit-rot-on-read probability.
    pub fn bit_rot(mut self, p: f64) -> Self {
        self.bit_flip_read_prob = p;
        self
    }

    /// Set the lying-fsync probability.
    pub fn lying_fsyncs(mut self, p: f64) -> Self {
        self.lying_fsync_prob = p;
        self
    }

    /// Set the transient-`EIO` probability.
    pub fn transient_eio(mut self, p: f64) -> Self {
        self.transient_eio_prob = p;
        self
    }

    /// Kill the disk (for writes) at operation index `op`.
    pub fn sticky_after(mut self, op: u64) -> Self {
        self.sticky_after = Some(op);
        self
    }

    /// Set the slow-read probability.
    pub fn slow_reads(mut self, p: f64) -> Self {
        self.slow_read_prob = p;
        self
    }

    /// Set the slow-write probability.
    pub fn slow_writes(mut self, p: f64) -> Self {
        self.slow_write_prob = p;
        self
    }

    /// Set the slow-fsync probability.
    pub fn slow_fsyncs(mut self, p: f64) -> Self {
        self.slow_fsync_prob = p;
        self
    }

    /// Turn the disk chronically slow at operation index `op`.
    pub fn slow_after(mut self, op: u64) -> Self {
        self.slow_after = Some(op);
        self
    }

    /// Set how long a slow operation stalls.
    pub fn slow_for(mut self, d: Duration) -> Self {
        self.slow_for = d;
        self
    }

    /// Cap the total number of budgeted injected faults.
    pub fn max_faults(mut self, n: u64) -> Self {
        self.max_faults = n;
        self
    }

    /// Reject out-of-range probabilities and overfull per-kind subsets
    /// with a typed error; runs when the plan is installed in a [`Vfs`].
    pub fn validate(&self) -> Result<(), ServeError> {
        check_prob("torn_write_prob", self.torn_write_prob)?;
        check_prob("bit_flip_read_prob", self.bit_flip_read_prob)?;
        check_prob("lying_fsync_prob", self.lying_fsync_prob)?;
        check_prob("transient_eio_prob", self.transient_eio_prob)?;
        check_prob("slow_read_prob", self.slow_read_prob)?;
        check_prob("slow_write_prob", self.slow_write_prob)?;
        check_prob("slow_fsync_prob", self.slow_fsync_prob)?;
        for (kind, class) in [
            ("write", self.torn_write_prob),
            ("read", self.bit_flip_read_prob),
            ("fsync", self.lying_fsync_prob),
        ] {
            let total = class + self.transient_eio_prob;
            if total > 1.0 + 1e-12 {
                return Err(ServeError::InvalidFaultPlan(format!(
                    "{kind} fault probabilities must sum to <= 1 (got {total})"
                )));
            }
        }
        Ok(())
    }
}

/// What kind of storage operation is drawing a fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
    Sync,
    /// Metadata update: rename, truncate, directory fsync, unlink.
    Meta,
}

/// The resolved fate of one storage operation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DiskFate {
    Healthy,
    /// Tear the write, keeping this fraction of the bytes.
    Torn {
        keep_frac: f64,
    },
    /// Flip one bit in the bytes read.
    BitFlip,
    /// Report fsync success without making the data durable.
    Lying,
    /// Fail with a transient `EIO`.
    Transient,
    /// The disk is sticky-dead; the operation fails permanently.
    Sticky,
}

#[derive(Debug)]
struct VfsState {
    plan: DiskFaultPlan,
    /// Global operation counter: the coordinate every fate is drawn from.
    ops: AtomicU64,
    /// Budgeted faults fired so far (shared across clones/restarts).
    fired: AtomicU64,
    /// Latched once the sticky threshold is crossed.
    sticky: AtomicBool,
    /// Latched once the chronic-slow threshold is crossed.
    slow: AtomicBool,
    /// Per-file *truly durable* length: advanced only by an honest
    /// fsync. [`Vfs::simulate_crash`] truncates each file back to it,
    /// which is exactly what power loss does to unsynced page cache.
    durable: Mutex<BTreeMap<PathBuf, u64>>,
}

/// A handle to the (possibly fault-injected) filesystem. Cloning shares
/// the fault budget, the operation counter, the sticky latch, and the
/// durable-length ledger — a restart cannot reset the chaos, and a disk
/// that died stays dead across reopens.
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    state: Option<Arc<VfsState>>,
}

impl Vfs {
    /// The production default: a zero-cost passthrough to `std::fs`.
    pub fn passthrough() -> Self {
        Self::default()
    }

    /// A filesystem with a seeded [`DiskFaultPlan`] installed; the plan
    /// is validated so a bad probability cannot silently skew fates.
    pub fn faulted(plan: DiskFaultPlan) -> Result<Self, ServeError> {
        plan.validate()?;
        Ok(Self {
            state: Some(Arc::new(VfsState {
                plan,
                ops: AtomicU64::new(0),
                fired: AtomicU64::new(0),
                sticky: AtomicBool::new(false),
                slow: AtomicBool::new(false),
                durable: Mutex::new(BTreeMap::new()),
            })),
        })
    }

    /// Budgeted faults fired so far across all clones.
    pub fn faults_fired(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.fired.load(Ordering::SeqCst))
    }

    /// Whether the disk has gone sticky-bad.
    pub fn is_sticky(&self) -> bool {
        self.state
            .as_ref()
            .is_some_and(|s| s.sticky.load(Ordering::SeqCst))
    }

    /// Kill the disk now (tests flipping a member's disk dead at will).
    /// No-op on a passthrough [`Vfs`].
    pub fn force_sticky(&self) {
        if let Some(s) = &self.state {
            s.sticky.store(true, Ordering::SeqCst);
        }
    }

    /// Whether the disk has turned chronically slow. A primary observing
    /// this on its own disk self-deposes — it can still serve, but every
    /// ack it produces drags the cluster's tail.
    pub fn is_slow(&self) -> bool {
        self.state
            .as_ref()
            .is_some_and(|s| s.slow.load(Ordering::SeqCst))
    }

    /// Turn the disk chronically slow now (tests flipping a member's
    /// disk gray at will). No-op on a passthrough [`Vfs`].
    pub fn force_slow(&self) {
        if let Some(s) = &self.state {
            s.slow.store(true, Ordering::SeqCst);
        }
    }

    /// Draw the fate of the next operation of `kind`.
    fn fate(&self, kind: OpKind) -> DiskFate {
        let Some(s) = &self.state else {
            return DiskFate::Healthy;
        };
        let p = &s.plan;
        let op = s.ops.fetch_add(1, Ordering::SeqCst);
        if let Some(at) = p.sticky_after {
            if op >= at {
                s.sticky.store(true, Ordering::SeqCst);
            }
        }
        if s.sticky.load(Ordering::SeqCst) && kind != OpKind::Read {
            return DiskFate::Sticky;
        }
        self.maybe_stall(kind, op);
        if s.fired.load(Ordering::SeqCst) >= p.max_faults {
            return DiskFate::Healthy;
        }
        let mut rng = hash_rng(p.seed, &[DISK_DOMAIN, op]);
        let x: f64 = rng.random();
        let class_prob = match kind {
            OpKind::Read => p.bit_flip_read_prob,
            OpKind::Write => p.torn_write_prob,
            OpKind::Sync => p.lying_fsync_prob,
            OpKind::Meta => 0.0,
        };
        let fate = if x < class_prob {
            match kind {
                OpKind::Read => DiskFate::BitFlip,
                OpKind::Write => {
                    // keep a deterministic, strictly-partial prefix
                    let keep_frac: f64 = 0.05 + 0.9 * rng.random::<f64>();
                    DiskFate::Torn { keep_frac }
                }
                OpKind::Sync => DiskFate::Lying,
                OpKind::Meta => DiskFate::Healthy,
            }
        } else if x < class_prob + p.transient_eio_prob {
            DiskFate::Transient
        } else {
            DiskFate::Healthy
        };
        if fate != DiskFate::Healthy {
            // charge the budget; re-check in case a racing clone spent it
            if s.fired.fetch_add(1, Ordering::SeqCst) >= p.max_faults {
                return DiskFate::Healthy;
            }
        }
        fate
    }

    /// Gray-failure injection: stall the operation without touching its
    /// bytes. The chronic latch stalls everything; otherwise a seeded
    /// draw from the slow sub-domain (beside the main fate draw, same op
    /// coordinate) decides. Sleeps never mutate data, so a slow run's
    /// digests are bit-identical to a fast run's — which is exactly what
    /// the chaos_slow suite asserts.
    fn maybe_stall(&self, kind: OpKind, op: u64) {
        let Some(s) = &self.state else { return };
        let p = &s.plan;
        if let Some(at) = p.slow_after {
            if op >= at {
                s.slow.store(true, Ordering::SeqCst);
            }
        }
        if s.slow.load(Ordering::SeqCst) {
            std::thread::sleep(p.slow_for);
            return;
        }
        let slow_prob = match kind {
            OpKind::Read => p.slow_read_prob,
            OpKind::Write => p.slow_write_prob,
            OpKind::Sync => p.slow_fsync_prob,
            OpKind::Meta => 0.0,
        };
        if slow_prob > 0.0 {
            let mut rng = hash_rng(p.seed, &[DISK_DOMAIN, SLOW_DOMAIN, op]);
            if rng.random::<f64>() < slow_prob {
                std::thread::sleep(p.slow_for);
            }
        }
    }

    fn transient() -> ServeError {
        ServeError::Io(std::io::Error::other("injected transient EIO"))
    }

    /// Read a whole file, subject to bit rot and transient `EIO`.
    pub fn read(&self, path: impl AsRef<Path>) -> Result<Vec<u8>, ServeError> {
        let path = path.as_ref();
        match self.fate(OpKind::Read) {
            DiskFate::Transient => return Err(Self::transient()),
            DiskFate::BitFlip => {
                let mut bytes = std::fs::read(path)?;
                self.flip_one_bit(&mut bytes);
                return Ok(bytes);
            }
            _ => {}
        }
        Ok(std::fs::read(path)?)
    }

    /// Flip one seeded bit in `bytes` (no-op on an empty read).
    fn flip_one_bit(&self, bytes: &mut [u8]) {
        let Some(s) = &self.state else { return };
        if bytes.is_empty() {
            return;
        }
        let op = s.ops.load(Ordering::SeqCst);
        let mut rng = hash_rng(s.plan.seed, &[DISK_DOMAIN, 0xB17, op]);
        let at = (rng.next_u64() % bytes.len() as u64) as usize;
        let bit = (rng.next_u64() % 8) as u8;
        if let Some(b) = bytes.get_mut(at) {
            *b ^= 1 << bit;
        }
    }

    /// Open (or create) a log-style file for read + append-positioned
    /// writes, never truncating existing content.
    pub fn open_log(&self, path: impl AsRef<Path>) -> Result<DiskFile, ServeError> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            self.create_dir_all(dir)?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if let Some(s) = &self.state {
            // everything already on disk at open is presumed durable
            let len = file.metadata()?.len();
            relock(&s.durable).entry(path.clone()).or_insert(len);
        }
        Ok(DiskFile {
            file,
            path,
            vfs: self.clone(),
        })
    }

    /// Write `bytes` to `path` atomically: temp sibling, write + fsync,
    /// rename over the target, then fsync the parent directory. Subject
    /// to torn writes (the temp file is abandoned partial, the target
    /// survives), transient `EIO`, and sticky death.
    pub fn write_atomic(&self, path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), ServeError> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            self.create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            match self.fate(OpKind::Write) {
                DiskFate::Healthy | DiskFate::BitFlip | DiskFate::Lying => {
                    f.write_all(bytes)?;
                }
                DiskFate::Torn { keep_frac } => {
                    let keep = torn_prefix_len(bytes.len(), keep_frac);
                    f.write_all(bytes.get(..keep).unwrap_or(bytes))?;
                    f.sync_all().ok();
                    return Err(ServeError::InjectedCrash(ServePoint::DiskWrite));
                }
                DiskFate::Transient => return Err(Self::transient()),
                DiskFate::Sticky => return Err(ServeError::DiskDegraded { op: "write" }),
            }
            f.flush()?;
            match self.fate(OpKind::Sync) {
                DiskFate::Healthy | DiskFate::BitFlip | DiskFate::Torn { .. } => {
                    f.sync_all()?;
                }
                // an atomic artifact whose fsync lies is equivalent to
                // crashing before the rename: simply skip the sync —
                // the rename below may still survive, which is exactly
                // the torn-rename ambiguity recovery must handle
                DiskFate::Lying => {}
                DiskFate::Transient => return Err(Self::transient()),
                DiskFate::Sticky => return Err(ServeError::DiskDegraded { op: "fsync" }),
            }
        }
        self.rename(&tmp, path)?;
        self.sync_parent_dir(path)
    }

    /// Rename `from` to `to` (a metadata write: sticky/transient apply).
    pub fn rename(&self, from: impl AsRef<Path>, to: impl AsRef<Path>) -> Result<(), ServeError> {
        match self.fate(OpKind::Meta) {
            DiskFate::Transient => return Err(Self::transient()),
            DiskFate::Sticky => return Err(ServeError::DiskDegraded { op: "rename" }),
            _ => {}
        }
        std::fs::rename(from.as_ref(), to.as_ref())?;
        if let Some(s) = &self.state {
            let mut durable = relock(&s.durable);
            if let Some(len) = durable.remove(from.as_ref()) {
                durable.insert(to.as_ref().to_path_buf(), len);
            }
        }
        Ok(())
    }

    /// Remove a file (a metadata write: sticky/transient apply).
    pub fn remove_file(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        match self.fate(OpKind::Meta) {
            DiskFate::Transient => return Err(Self::transient()),
            DiskFate::Sticky => return Err(ServeError::DiskDegraded { op: "unlink" }),
            _ => {}
        }
        std::fs::remove_file(path.as_ref())?;
        if let Some(s) = &self.state {
            relock(&s.durable).remove(path.as_ref());
        }
        Ok(())
    }

    /// Create a directory and all its parents (fault-free: directory
    /// creation failing is just an `Io` error from the underlying fs).
    pub fn create_dir_all(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        Ok(std::fs::create_dir_all(path.as_ref())?)
    }

    /// Recursively remove a directory tree (metadata write).
    pub fn remove_dir_all(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        match self.fate(OpKind::Meta) {
            DiskFate::Transient => return Err(Self::transient()),
            DiskFate::Sticky => return Err(ServeError::DiskDegraded { op: "rmdir" }),
            _ => {}
        }
        std::fs::remove_dir_all(path.as_ref())?;
        if let Some(s) = &self.state {
            relock(&s.durable).retain(|p, _| !p.starts_with(path.as_ref()));
        }
        Ok(())
    }

    /// Whether `path` exists (read-only, fault-free).
    pub fn exists(&self, path: impl AsRef<Path>) -> bool {
        path.as_ref().exists()
    }

    /// The regular files directly inside `dir`, sorted by path so every
    /// walker (the scrubber above all) visits deterministically. A
    /// missing directory is an empty listing, not an error.
    pub fn read_dir_files(&self, dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, ServeError> {
        let dir = dir.as_ref();
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(ServeError::Io(e)),
        };
        for entry in entries {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Fsync the directory containing `path`.
    ///
    /// An atomic rename (or a file creation) updates the *directory
    /// entry*, and that entry has its own page cache: `rename(2)`
    /// followed by power loss can resurrect the old file even though the
    /// new file's contents were fsync'd. Failure is a typed
    /// [`ServeError::SnapshotDirSync`] — the caller must treat the
    /// preceding rename as not-yet-durable.
    pub fn sync_parent_dir(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        match self.fate(OpKind::Meta) {
            DiskFate::Transient => return Err(Self::transient()),
            DiskFate::Sticky => return Err(ServeError::DiskDegraded { op: "dir-fsync" }),
            _ => {}
        }
        sync_parent_dir(path.as_ref())
    }

    /// Write a CRC-framed artifact (same layout as
    /// [`crh_core::persist::write_frame`]) atomically through the seam.
    pub fn write_frame(
        &self,
        path: impl AsRef<Path>,
        magic: [u8; 4],
        version: u32,
        payload: &[u8],
    ) -> Result<(), ServeError> {
        self.write_atomic(path, &encode_frame(magic, version, payload))
    }

    /// Read a CRC-framed artifact through the seam, validating magic,
    /// version, declared length, and CRC.
    pub fn read_frame(
        &self,
        path: impl AsRef<Path>,
        magic: [u8; 4],
        max_version: u32,
    ) -> Result<(u32, Vec<u8>), ServeError> {
        let bytes = self.read(path)?;
        Ok(decode_frame(&bytes, magic, max_version)?)
    }

    /// Write `bytes` to `path` with no sync and no fault draws: used by
    /// the [`ServeFaultPlan`](crate::faults::ServeFaultPlan) crash points
    /// to plant deliberate debris (an abandoned partial temp file) that
    /// recovery must ignore.
    pub(crate) fn write_debris(
        &self,
        path: impl AsRef<Path>,
        bytes: &[u8],
    ) -> Result<(), ServeError> {
        let mut f = File::create(path.as_ref())?;
        f.write_all(bytes)?;
        Ok(())
    }

    /// Simulate power loss: truncate every tracked file back to its last
    /// honestly-fsync'd length. This is where a lying fsync's loss
    /// surfaces — data the daemon believed durable evaporates, exactly
    /// as unsynced page cache does when the machine dies.
    pub fn simulate_crash(&self) {
        let Some(s) = &self.state else { return };
        let durable: Vec<(PathBuf, u64)> = relock(&s.durable)
            .iter()
            .map(|(p, &l)| (p.clone(), l))
            .collect();
        for (path, len) in durable {
            let Ok(f) = OpenOptions::new().write(true).open(&path) else {
                continue; // never created or already unlinked
            };
            let actual = f.metadata().map(|m| m.len()).unwrap_or(len);
            if actual > len {
                f.set_len(len).ok();
                f.sync_all().ok();
            }
        }
    }

    /// Record an honest fsync: everything in `path` up to `len` is
    /// durable.
    fn mark_durable(&self, path: &Path, len: u64) {
        if let Some(s) = &self.state {
            relock(&s.durable).insert(path.to_path_buf(), len);
        }
    }

    /// Clamp the durable length after a truncation to `len`.
    fn clamp_durable(&self, path: &Path, len: u64) {
        if let Some(s) = &self.state {
            let mut durable = relock(&s.durable);
            let entry = durable.entry(path.to_path_buf()).or_insert(len);
            *entry = (*entry).min(len);
        }
    }
}

/// Clamp a torn write to a strict, non-empty prefix.
fn torn_prefix_len(total: usize, keep_frac: f64) -> usize {
    ((total as f64 * keep_frac) as usize).clamp(1, total.saturating_sub(1).max(1))
}

/// Fsync the directory containing `path` (the raw, fault-free primitive;
/// fault-aware callers go through [`Vfs::sync_parent_dir`]).
pub fn sync_parent_dir(path: &Path) -> Result<(), ServeError> {
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or(Path::new("."));
    let err = |e: std::io::Error| ServeError::SnapshotDirSync {
        dir: dir.to_path_buf(),
        reason: e.to_string(),
    };
    let f = File::open(dir).map_err(err)?;
    f.sync_all().map_err(err)
}

/// An open file routed through the [`Vfs`] seam. Writes can tear, syncs
/// can lie, and everything can hit transient or sticky `EIO` — exactly
/// like the hardware the daemon actually runs on.
#[derive(Debug)]
pub struct DiskFile {
    file: File,
    path: PathBuf,
    vfs: Vfs,
}

impl DiskFile {
    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The seam this file was opened through.
    pub(crate) fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Read the whole file from the current position, subject to bit rot
    /// and transient `EIO`.
    pub fn read_to_end(&mut self, buf: &mut Vec<u8>) -> Result<usize, ServeError> {
        match self.vfs.fate(OpKind::Read) {
            DiskFate::Transient => return Err(Vfs::transient()),
            DiskFate::BitFlip => {
                let start = buf.len();
                let n = self.file.read_to_end(buf)?;
                if let Some(tail) = buf.get_mut(start..) {
                    self.vfs.flip_one_bit(tail);
                }
                return Ok(n);
            }
            _ => {}
        }
        Ok(self.file.read_to_end(buf)?)
    }

    /// Write all of `bytes` at the current position. A torn fate writes
    /// a strict prefix, syncs it so recovery observes the torn bytes,
    /// and reports the process crashed
    /// ([`ServeError::InjectedCrash`] at [`ServePoint::DiskWrite`]).
    pub fn write_all(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        match self.vfs.fate(OpKind::Write) {
            DiskFate::Healthy | DiskFate::BitFlip | DiskFate::Lying => {
                Ok(self.file.write_all(bytes)?)
            }
            DiskFate::Torn { keep_frac } => {
                self.write_torn(bytes, keep_frac)?;
                Err(ServeError::InjectedCrash(ServePoint::DiskWrite))
            }
            DiskFate::Transient => Err(Vfs::transient()),
            DiskFate::Sticky => Err(ServeError::DiskDegraded { op: "write" }),
        }
    }

    /// Deliberately tear a write: put a strict prefix of `bytes` on disk
    /// and sync it so a same-process "recovery" observes the torn tail.
    /// Only reachable from injected-fault paths.
    pub(crate) fn write_torn(&mut self, bytes: &[u8], keep_frac: f64) -> Result<u64, ServeError> {
        let keep = torn_prefix_len(bytes.len(), keep_frac);
        self.file.write_all(bytes.get(..keep).unwrap_or(bytes))?;
        self.file.sync_data()?;
        let len = self.file.metadata()?.len();
        self.vfs.mark_durable(&self.path, len);
        Ok(keep as u64)
    }

    /// Fsync file data. A lying fate reports success without advancing
    /// the durable length — the loss surfaces at
    /// [`Vfs::simulate_crash`].
    pub fn sync_data(&mut self) -> Result<(), ServeError> {
        self.sync_inner(false)
    }

    /// Fsync file data and metadata (same fault semantics as
    /// [`Self::sync_data`]).
    pub fn sync_all(&mut self) -> Result<(), ServeError> {
        self.sync_inner(true)
    }

    fn sync_inner(&mut self, all: bool) -> Result<(), ServeError> {
        match self.vfs.fate(OpKind::Sync) {
            DiskFate::Lying => return Ok(()),
            DiskFate::Transient => return Err(Vfs::transient()),
            DiskFate::Sticky => return Err(ServeError::DiskDegraded { op: "fsync" }),
            _ => {}
        }
        if all {
            self.file.sync_all()?;
        } else {
            self.file.sync_data()?;
        }
        let len = self.file.metadata()?.len();
        self.vfs.mark_durable(&self.path, len);
        Ok(())
    }

    /// Truncate (or extend) to `len` bytes (a metadata write).
    pub fn set_len(&mut self, len: u64) -> Result<(), ServeError> {
        match self.vfs.fate(OpKind::Meta) {
            DiskFate::Transient => return Err(Vfs::transient()),
            DiskFate::Sticky => return Err(ServeError::DiskDegraded { op: "truncate" }),
            _ => {}
        }
        self.file.set_len(len)?;
        self.vfs.clamp_durable(&self.path, len);
        Ok(())
    }

    /// Seek to an absolute offset (fault-free: no I/O is issued).
    pub fn seek_to(&mut self, offset: u64) -> Result<(), ServeError> {
        self.file.seek(SeekFrom::Start(offset))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("crh_vfs_{}_{name}", std::process::id()))
    }

    #[test]
    fn passthrough_roundtrips_without_faults() {
        let p = tmp("pass");
        std::fs::remove_file(&p).ok();
        let vfs = Vfs::passthrough();
        let mut f = vfs.open_log(&p).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.read(&p).unwrap(), b"hello");
        assert_eq!(vfs.faults_fired(), 0);
        assert!(!vfs.is_sticky());
        vfs.simulate_crash(); // no tracked state: must be a no-op
        assert_eq!(vfs.read(&p).unwrap(), b"hello");
        vfs.remove_file(&p).unwrap();
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix_and_crashes() {
        let p = tmp("torn");
        std::fs::remove_file(&p).ok();
        let vfs = Vfs::faulted(DiskFaultPlan::new(7).torn_writes(1.0).max_faults(1)).unwrap();
        let mut f = vfs.open_log(&p).unwrap();
        let err = f.write_all(b"twelve bytes").unwrap_err();
        assert!(
            matches!(err, ServeError::InjectedCrash(ServePoint::DiskWrite)),
            "{err}"
        );
        let on_disk = std::fs::read(&p).unwrap();
        assert!(!on_disk.is_empty() && on_disk.len() < 12, "{on_disk:?}");
        assert_eq!(vfs.faults_fired(), 1);
        // budget spent: the next write goes through
        drop(f);
        let mut f = vfs.open_log(&p).unwrap();
        f.write_all(b"ok").unwrap();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit_deterministically() {
        let p = tmp("rot");
        std::fs::write(&p, vec![0u8; 64]).unwrap();
        let read_rotted = || {
            let vfs = Vfs::faulted(DiskFaultPlan::new(3).bit_rot(1.0).max_faults(1)).unwrap();
            vfs.read(&p).unwrap()
        };
        let a = read_rotted();
        let b = read_rotted();
        assert_eq!(a, b, "same seed, same flip");
        let flipped: u32 = a.iter().map(|&x| x.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
        // budget spent after the first read: the second is clean
        let vfs = Vfs::faulted(DiskFaultPlan::new(3).bit_rot(1.0).max_faults(1)).unwrap();
        vfs.read(&p).unwrap();
        assert_eq!(vfs.read(&p).unwrap(), vec![0u8; 64]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn lying_fsync_loss_surfaces_at_simulated_crash() {
        let p = tmp("lying");
        std::fs::remove_file(&p).ok();
        let vfs = Vfs::faulted(DiskFaultPlan::new(5).lying_fsyncs(1.0).max_faults(1)).unwrap();
        let mut f = vfs.open_log(&p).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_data().unwrap(); // lying: reports success
        assert_eq!(vfs.faults_fired(), 1);
        f.write_all(b" and honest").unwrap();
        f.sync_data().unwrap(); // budget spent: honest
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"durable and honest");
        // the honest sync made everything durable; crash loses nothing
        vfs.simulate_crash();
        assert_eq!(std::fs::read(&p).unwrap(), b"durable and honest");

        // now a lying sync with no honest sync after it
        std::fs::remove_file(&p).ok();
        let vfs = Vfs::faulted(DiskFaultPlan::new(5).lying_fsyncs(1.0).max_faults(1)).unwrap();
        let mut f = vfs.open_log(&p).unwrap();
        f.write_all(b"vanishes").unwrap();
        f.sync_data().unwrap(); // lying
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"vanishes");
        vfs.simulate_crash();
        assert_eq!(std::fs::read(&p).unwrap(), b"", "power loss drops it");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn sticky_disk_fails_writes_keeps_reads_and_survives_clones() {
        let p = tmp("sticky");
        std::fs::write(&p, b"old data").unwrap();
        let vfs = Vfs::faulted(DiskFaultPlan::new(1).sticky_after(0)).unwrap();
        let clone = vfs.clone();
        let mut f = vfs.open_log(&p).unwrap();
        let err = f.write_all(b"nope").unwrap_err();
        assert!(
            matches!(err, ServeError::DiskDegraded { op: "write" }),
            "{err}"
        );
        assert!(clone.is_sticky(), "latch shared across clones");
        let err = clone.write_atomic(tmp("sticky2"), b"x").unwrap_err();
        assert!(matches!(err, ServeError::DiskDegraded { .. }), "{err}");
        // reads still work: ENOSPC semantics
        assert_eq!(vfs.read(&p).unwrap(), b"old data");
        // sticky is not budgeted: faults_fired stays 0
        assert_eq!(vfs.faults_fired(), 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn force_sticky_kills_the_disk_at_will() {
        let vfs = Vfs::faulted(DiskFaultPlan::new(0)).unwrap();
        assert!(!vfs.is_sticky());
        vfs.force_sticky();
        assert!(vfs.is_sticky());
        let err = vfs.write_atomic(tmp("forced"), b"x").unwrap_err();
        assert!(matches!(err, ServeError::DiskDegraded { .. }), "{err}");
        // passthrough ignores the switch entirely
        let vfs = Vfs::passthrough();
        vfs.force_sticky();
        assert!(!vfs.is_sticky());
    }

    #[test]
    fn slow_disk_stalls_but_never_changes_bytes() {
        let p = tmp("slow");
        std::fs::remove_file(&p).ok();
        let vfs = Vfs::faulted(
            DiskFaultPlan::new(4)
                .slow_writes(1.0)
                .slow_fsyncs(1.0)
                .slow_for(Duration::from_millis(5)),
        )
        .unwrap();
        let mut f = vfs.open_log(&p).unwrap();
        let t0 = std::time::Instant::now();
        f.write_all(b"slow but intact").unwrap();
        f.sync_data().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(10), "two stalled ops");
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"slow but intact");
        // slowness is not budgeted and never latches from the per-op draw
        assert_eq!(vfs.faults_fired(), 0);
        assert!(!vfs.is_slow());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn chronic_slow_latches_and_survives_clones() {
        let p = tmp("chronic_slow");
        std::fs::remove_file(&p).ok();
        let vfs = Vfs::faulted(
            DiskFaultPlan::new(6)
                .slow_after(0)
                .slow_for(Duration::from_millis(3)),
        )
        .unwrap();
        let clone = vfs.clone();
        assert!(!vfs.is_slow(), "latch trips on the first op, not install");
        let mut f = vfs.open_log(&p).unwrap();
        f.write_all(b"late").unwrap();
        assert!(vfs.is_slow());
        assert!(clone.is_slow(), "latch shared across clones");
        // unlike sticky, the slow disk still works correctly
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"late");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn force_slow_flips_the_latch_at_will() {
        let vfs = Vfs::faulted(DiskFaultPlan::new(0)).unwrap();
        assert!(!vfs.is_slow());
        vfs.force_slow();
        assert!(vfs.is_slow());
        // passthrough ignores the switch entirely
        let vfs = Vfs::passthrough();
        vfs.force_slow();
        assert!(!vfs.is_slow());
    }

    #[test]
    fn transient_eio_is_typed_and_clears() {
        let p = tmp("eio");
        std::fs::write(&p, b"x").unwrap();
        let vfs = Vfs::faulted(DiskFaultPlan::new(9).transient_eio(1.0).max_faults(1)).unwrap();
        let err = vfs.read(&p).unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "{err}");
        assert_eq!(vfs.read(&p).unwrap(), b"x", "retry after EIO succeeds");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fates_are_deterministic_across_identical_plans() {
        let run = |seed: u64| {
            let vfs = Vfs::faulted(
                DiskFaultPlan::new(seed)
                    .torn_writes(0.3)
                    .transient_eio(0.3)
                    .max_faults(u64::MAX),
            )
            .unwrap();
            (0..200)
                .map(|_| vfs.fate(OpKind::Write))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn invalid_plans_are_typed_errors() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let e = Vfs::faulted(DiskFaultPlan::new(0).bit_rot(bad));
            assert!(matches!(e, Err(ServeError::InvalidFaultPlan(_))), "{bad}");
        }
        // jointly overfull per-kind subset
        let e = Vfs::faulted(DiskFaultPlan::new(0).torn_writes(0.7).transient_eio(0.7));
        assert!(matches!(e, Err(ServeError::InvalidFaultPlan(_))));
        // distinct kinds do not share a budget of probability mass
        assert!(Vfs::faulted(
            DiskFaultPlan::new(0)
                .torn_writes(0.9)
                .bit_rot(0.9)
                .lying_fsyncs(0.9)
        )
        .is_ok());
    }

    #[test]
    fn atomic_write_replaces_and_frames_roundtrip() {
        let p = tmp("atomic");
        std::fs::remove_file(&p).ok();
        let vfs = Vfs::passthrough();
        vfs.write_frame(&p, *b"CRHT", 1, b"first").unwrap();
        vfs.write_frame(&p, *b"CRHT", 1, b"second").unwrap();
        assert!(!p.with_extension("tmp").exists());
        let (v, payload) = vfs.read_frame(&p, *b"CRHT", 1).unwrap();
        assert_eq!((v, payload.as_slice()), (1u32, b"second".as_slice()));
        vfs.remove_file(&p).unwrap();
    }

    #[test]
    fn torn_atomic_write_leaves_the_target_intact() {
        let p = tmp("atomic_torn");
        std::fs::remove_file(&p).ok();
        let vfs = Vfs::passthrough();
        vfs.write_atomic(&p, b"the original").unwrap();
        let faulted = Vfs::faulted(DiskFaultPlan::new(2).torn_writes(1.0).max_faults(1)).unwrap();
        let err = faulted.write_atomic(&p, b"the replacement").unwrap_err();
        assert!(matches!(err, ServeError::InjectedCrash(_)), "{err}");
        assert_eq!(std::fs::read(&p).unwrap(), b"the original");
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(p.with_extension("tmp")).ok();
    }
}
