//! The append-only write-ahead log for accepted observation chunks.
//!
//! Crash-only durability discipline: a chunk is *accepted* the moment its
//! WAL record is appended and fsync'd — everything downstream (the fold
//! into [`ICrhState`](crh_stream::ICrhState), the truth cache, the
//! periodic snapshot) is reconstructible by replay. Records are framed
//! individually:
//!
//! ```text
//! file   := header record*
//! header := b"CRHWAL01"                      (8 bytes)
//! record := len:u32 LE | crc32:u32 LE | payload[len]
//! ```
//!
//! A `kill -9` can tear the last record (partial write, no fsync). On
//! open, the reader walks the records and **truncates** a torn tail — a
//! record whose bytes run past end-of-file, or whose CRC fails at the
//! very end of the file — because that is the expected crash signature,
//! not an error. A bad record *followed by further data* is genuine
//! corruption and is surfaced as a typed [`ServeError::WalCorrupt`]; the
//! daemon refuses to guess which records to trust.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crh_core::persist::crc32;

use crate::error::ServeError;

const WAL_HEADER: [u8; 8] = *b"CRHWAL01";
const RECORD_HEADER: usize = 8; // len u32 + crc u32

/// Bounds-checked little-endian `u32` read; `None` when `bytes` is too
/// short (a torn tail), so log recovery never indexes past EOF.
fn le_u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Fsync the directory containing `path`.
///
/// An atomic rename (or a file creation) updates the *directory entry*,
/// and that entry has its own page cache: `rename(2)` followed by power
/// loss can resurrect the old file even though the new file's contents
/// were fsync'd. Every snapshot rename and WAL creation must therefore
/// be followed by a directory fsync before the operation counts as
/// durable. Failure is a typed [`ServeError::SnapshotDirSync`] — the
/// caller must treat the preceding rename as not-yet-durable.
pub fn sync_parent_dir(path: &Path) -> Result<(), ServeError> {
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or(Path::new("."));
    let err = |e: std::io::Error| ServeError::SnapshotDirSync {
        dir: dir.to_path_buf(),
        reason: e.to_string(),
    };
    let f = File::open(dir).map_err(err)?;
    f.sync_all().map_err(err)
}

/// What `Wal::open` found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// The decoded record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail that were truncated away (0 on a clean log).
    pub truncated_bytes: u64,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    records: u64,
}

impl Wal {
    /// Open (or create) the log at `path`, replaying existing records and
    /// truncating a torn tail. Returns the log positioned for appending
    /// plus everything recovered.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, WalRecovery), ServeError> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        // truncate(false): an existing log is the recovery source, never clobber
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(&WAL_HEADER)?;
            file.sync_all()?;
            // a freshly created log's directory entry must also survive
            sync_parent_dir(&path)?;
            return Ok((
                Self {
                    file,
                    path,
                    len: WAL_HEADER.len() as u64,
                    records: 0,
                },
                WalRecovery {
                    records: Vec::new(),
                    truncated_bytes: 0,
                },
            ));
        }
        if !bytes.starts_with(&WAL_HEADER) {
            return Err(ServeError::WalCorrupt {
                offset: 0,
                reason: "missing or wrong WAL header",
            });
        }

        let mut records = Vec::new();
        let mut pos = WAL_HEADER.len();
        let mut truncated_bytes = 0u64;
        while pos < bytes.len() {
            let rest = bytes.get(pos..).unwrap_or(&[]);
            // A record header or body running past EOF is a torn tail;
            // every read below is bounds-checked so a torn byte count
            // can never panic the recovery path.
            let (Some(len), Some(stored_crc)) = (le_u32_at(rest, 0), le_u32_at(rest, 4)) else {
                truncated_bytes = rest.len() as u64;
                break;
            };
            let len = len as usize;
            let Some(payload) = rest.get(RECORD_HEADER..RECORD_HEADER + len) else {
                truncated_bytes = rest.len() as u64;
                break;
            };
            if crc32(payload) != stored_crc {
                let record_end = pos + RECORD_HEADER + len;
                if record_end == bytes.len() {
                    // CRC failure on the final record: torn write caught
                    // before the length field settled — treat as tail.
                    truncated_bytes = (bytes.len() - pos) as u64;
                    break;
                }
                return Err(ServeError::WalCorrupt {
                    offset: pos as u64,
                    reason: "record CRC mismatch mid-log",
                });
            }
            records.push(payload.to_vec());
            pos += RECORD_HEADER + len;
        }

        let keep = pos as u64;
        if truncated_bytes > 0 {
            file.set_len(keep)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(keep))?;
        let n = records.len() as u64;
        Ok((
            Self {
                file,
                path,
                len: keep,
                records: n,
            },
            WalRecovery {
                records,
                truncated_bytes,
            },
        ))
    }

    /// Append one record and fsync. Returns the record's index within
    /// this log (0-based).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, ServeError> {
        let frame = Self::frame(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        let idx = self.records;
        self.records += 1;
        Ok(idx)
    }

    /// Simulate a `kill -9` mid-append: write only `keep_frac` of the
    /// record's bytes (at least 1, strictly fewer than all) and make the
    /// partial write visible on disk, leaving a torn tail for the next
    /// [`open`](Self::open). The log is unusable afterwards — the caller
    /// must drop it, exactly as a crashed process would.
    pub fn append_torn(&mut self, payload: &[u8], keep_frac: f64) -> Result<(), ServeError> {
        let frame = Self::frame(payload);
        let keep = ((frame.len() as f64 * keep_frac) as usize).clamp(1, frame.len() - 1);
        self.file.write_all(frame.get(..keep).unwrap_or(&frame))?;
        // sync so the same-process "recovery" observes the torn bytes
        self.file.sync_data()?;
        self.len += keep as u64;
        Ok(())
    }

    /// Drop every record: truncate back to the bare header (used after a
    /// successful snapshot has made the log's contents redundant).
    pub fn truncate_all(&mut self) -> Result<(), ServeError> {
        self.file.set_len(WAL_HEADER.len() as u64)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::Start(WAL_HEADER.len() as u64))?;
        self.len = WAL_HEADER.len() as u64;
        self.records = 0;
        Ok(())
    }

    /// Records appended since the last truncation.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Current file length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("crh_wal_{}_{name}.wal", std::process::id()))
    }

    #[test]
    fn roundtrip_records() {
        let p = tmp("roundtrip");
        std::fs::remove_file(&p).ok();
        {
            let (mut wal, rec) = Wal::open(&p).unwrap();
            assert!(rec.records.is_empty());
            assert_eq!(wal.append(b"alpha").unwrap(), 0);
            assert_eq!(wal.append(b"beta").unwrap(), 1);
            assert_eq!(wal.record_count(), 2);
        }
        let (wal, rec) = Wal::open(&p).unwrap();
        assert_eq!(rec.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(wal.record_count(), 2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let p = tmp("torn");
        std::fs::remove_file(&p).ok();
        {
            let (mut wal, _) = Wal::open(&p).unwrap();
            wal.append(b"good record").unwrap();
            wal.append_torn(b"half written record", 0.4).unwrap();
        }
        let (mut wal, rec) = Wal::open(&p).unwrap();
        assert_eq!(rec.records, vec![b"good record".to_vec()]);
        assert!(rec.truncated_bytes > 0);
        // the log is immediately appendable again
        wal.append(b"after recovery").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&p).unwrap();
        assert_eq!(
            rec.records,
            vec![b"good record".to_vec(), b"after recovery".to_vec()]
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mid_log_corruption_is_typed_fatal() {
        let p = tmp("midlog");
        std::fs::remove_file(&p).ok();
        {
            let (mut wal, _) = Wal::open(&p).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        // flip a byte inside the *first* record's payload
        let at = WAL_HEADER.len() + RECORD_HEADER + 2;
        bytes[at] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let err = Wal::open(&p).unwrap_err();
        assert!(matches!(err, ServeError::WalCorrupt { .. }), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn crc_failure_on_final_record_is_a_torn_tail() {
        let p = tmp("tailcrc");
        std::fs::remove_file(&p).ok();
        {
            let (mut wal, _) = Wal::open(&p).unwrap();
            wal.append(b"keep me").unwrap();
            wal.append(b"flip me").unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();
        let (_, rec) = Wal::open(&p).unwrap();
        assert_eq!(rec.records, vec![b"keep me".to_vec()]);
        assert!(rec.truncated_bytes > 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_header_is_typed_fatal() {
        let p = tmp("header");
        std::fs::write(&p, b"NOTAWALFILE").unwrap();
        let err = Wal::open(&p).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::WalCorrupt {
                    offset: 0,
                    reason: _
                }
            ),
            "{err}"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn parent_dir_sync_succeeds_on_real_dirs_and_types_failures() {
        let p = tmp("dirsync");
        std::fs::write(&p, b"x").unwrap();
        sync_parent_dir(&p).unwrap();
        std::fs::remove_file(&p).ok();

        let missing = std::env::temp_dir()
            .join(format!("crh_wal_no_such_dir_{}", std::process::id()))
            .join("file.wal");
        let err = sync_parent_dir(&missing).unwrap_err();
        assert!(
            matches!(err, ServeError::SnapshotDirSync { .. }),
            "expected SnapshotDirSync, got {err}"
        );
    }

    #[test]
    fn truncate_all_resets_the_log() {
        let p = tmp("truncall");
        std::fs::remove_file(&p).ok();
        let (mut wal, _) = Wal::open(&p).unwrap();
        wal.append(b"x").unwrap();
        wal.append(b"y").unwrap();
        wal.truncate_all().unwrap();
        assert_eq!(wal.record_count(), 0);
        wal.append(b"fresh").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&p).unwrap();
        assert_eq!(rec.records, vec![b"fresh".to_vec()]);
        std::fs::remove_file(&p).ok();
    }
}
