//! The append-only write-ahead log for accepted observation chunks.
//!
//! Crash-only durability discipline: a chunk is *accepted* the moment its
//! WAL record is appended and fsync'd — everything downstream (the fold
//! into [`ICrhState`](crh_stream::ICrhState), the truth cache, the
//! periodic snapshot) is reconstructible by replay. Records are framed
//! individually:
//!
//! ```text
//! file   := header record*
//! header := b"CRHWAL01"                      (8 bytes)
//! record := len:u32 LE | crc32:u32 LE | payload[len]
//! ```
//!
//! A `kill -9` can tear the last record (partial write, no fsync). On
//! open, the reader walks the records and **truncates** a torn tail — a
//! record whose bytes run past end-of-file, or whose CRC fails at the
//! very end of the file — because that is the expected crash signature,
//! not an error. A torn *header* (the crash landed inside the very first
//! write) is likewise recreated. A bad record *followed by further data*
//! is genuine corruption and is surfaced as a typed
//! [`ServeError::WalCorrupt`]; the daemon refuses to guess which records
//! to trust.
//!
//! All I/O goes through the [`Vfs`] seam, so a seeded
//! [`DiskFaultPlan`](crate::vfs::DiskFaultPlan) can tear appends, rot
//! reads, and fail fsyncs here without any test-only API on the log
//! itself.

use std::path::Path;

use crh_core::persist::crc32;

use crate::error::ServeError;
use crate::vfs::{DiskFile, Vfs};

pub use crate::vfs::sync_parent_dir;

pub(crate) const WAL_HEADER: [u8; 8] = *b"CRHWAL01";
pub(crate) const RECORD_HEADER: usize = 8; // len u32 + crc u32

/// Bounds-checked little-endian `u32` read; `None` when `bytes` is too
/// short (a torn tail), so log recovery never indexes past EOF.
fn le_u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// The outcome of scanning a WAL byte image: decoded records, the byte
/// length of the intact prefix, and how much torn tail follows it.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// Decoded record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Length of the intact prefix (header + whole records).
    pub keep: u64,
    /// Torn-tail bytes past the intact prefix (0 on a clean log).
    pub torn: u64,
}

/// Walk a WAL byte image, validating the header and every record CRC.
/// Shared between [`Wal::open`] (which then truncates the torn tail) and
/// the scrubber (which only inspects). A torn header — a strict prefix
/// of [`WAL_HEADER`], the signature of a crash inside log creation — is
/// reported as `keep == 0` with the whole image as torn tail.
pub(crate) fn scan(bytes: &[u8]) -> Result<WalScan, ServeError> {
    if bytes.len() < WAL_HEADER.len() && WAL_HEADER.starts_with(bytes) {
        return Ok(WalScan {
            records: Vec::new(),
            keep: 0,
            torn: bytes.len() as u64,
        });
    }
    if !bytes.starts_with(&WAL_HEADER) {
        return Err(ServeError::WalCorrupt {
            offset: 0,
            reason: "missing or wrong WAL header",
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER.len();
    let mut torn = 0u64;
    while pos < bytes.len() {
        let rest = bytes.get(pos..).unwrap_or(&[]);
        // A record header or body running past EOF is a torn tail;
        // every read below is bounds-checked so a torn byte count
        // can never panic the recovery path.
        let (Some(len), Some(stored_crc)) = (le_u32_at(rest, 0), le_u32_at(rest, 4)) else {
            torn = rest.len() as u64;
            break;
        };
        let len = len as usize;
        let Some(payload) = rest.get(RECORD_HEADER..RECORD_HEADER + len) else {
            torn = rest.len() as u64;
            break;
        };
        if crc32(payload) != stored_crc {
            let record_end = pos + RECORD_HEADER + len;
            if record_end == bytes.len() {
                // CRC failure on the final record: torn write caught
                // before the length field settled — treat as tail.
                torn = (bytes.len() - pos) as u64;
                break;
            }
            return Err(ServeError::WalCorrupt {
                offset: pos as u64,
                reason: "record CRC mismatch mid-log",
            });
        }
        records.push(payload.to_vec());
        pos += RECORD_HEADER + len;
    }
    Ok(WalScan {
        records,
        keep: pos as u64,
        torn,
    })
}

/// What `Wal::open` found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// The decoded record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail that were truncated away (0 on a clean log).
    pub truncated_bytes: u64,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: DiskFile,
    len: u64,
    records: u64,
}

impl Wal {
    /// Open (or create) the log at `path` through the `vfs` seam,
    /// replaying existing records and truncating a torn tail. Returns
    /// the log positioned for appending plus everything recovered.
    pub fn open(path: impl AsRef<Path>, vfs: &Vfs) -> Result<(Self, WalRecovery), ServeError> {
        let path = path.as_ref().to_path_buf();
        // truncate(false) inside open_log: an existing log is the
        // recovery source, never clobber
        let mut file = vfs.open_log(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(&WAL_HEADER)?;
            file.sync_all()?;
            // a freshly created log's directory entry must also survive
            vfs.sync_parent_dir(&path)?;
            return Ok((
                Self {
                    file,
                    len: WAL_HEADER.len() as u64,
                    records: 0,
                },
                WalRecovery {
                    records: Vec::new(),
                    truncated_bytes: 0,
                },
            ));
        }

        let WalScan {
            records,
            keep,
            torn,
        } = scan(&bytes)?;
        let mut len = keep;
        if torn > 0 {
            file.set_len(keep)?;
            if keep == 0 {
                // the header itself was torn: recreate it
                file.seek_to(0)?;
                file.write_all(&WAL_HEADER)?;
                len = WAL_HEADER.len() as u64;
            }
            file.sync_all()?;
        }
        file.seek_to(len)?;
        let n = records.len() as u64;
        Ok((
            Self {
                file,
                len,
                records: n,
            },
            WalRecovery {
                records,
                truncated_bytes: torn,
            },
        ))
    }

    /// Append one record and fsync. Returns the record's index within
    /// this log (0-based).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, ServeError> {
        let frame = Self::frame(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        let idx = self.records;
        self.records += 1;
        Ok(idx)
    }

    /// Simulate a `kill -9` mid-append: write only `keep_frac` of the
    /// record's bytes (at least 1, strictly fewer than all) and make the
    /// partial write visible on disk, leaving a torn tail for the next
    /// [`open`](Self::open). The log is unusable afterwards — the caller
    /// must drop it, exactly as a crashed process would. Reachable only
    /// from the injected-fault paths (`ServeFate::TornWal` and the
    /// [`DiskFaultPlan`](crate::vfs::DiskFaultPlan) torn-write fate),
    /// never from the production API.
    pub(crate) fn append_torn(&mut self, payload: &[u8], keep_frac: f64) -> Result<(), ServeError> {
        let frame = Self::frame(payload);
        let kept = self.file.write_torn(&frame, keep_frac)?;
        self.len += kept;
        Ok(())
    }

    /// Retire this log into `prev_path` and start a fresh one at the same
    /// path. Used on the snapshot cadence: the retired generation keeps
    /// the records between the previous snapshot and the one just
    /// written, so recovery can still fall back one snapshot generation
    /// and bridge the gap by replay (sequence-number skips make the
    /// extra records idempotent).
    pub fn rotate(&mut self, prev_path: impl AsRef<Path>) -> Result<(), ServeError> {
        let vfs = self.file.vfs().clone();
        let path = self.file.path().to_path_buf();
        vfs.rename(&path, prev_path.as_ref())?;
        let mut file = vfs.open_log(&path)?;
        file.write_all(&WAL_HEADER)?;
        file.sync_all()?;
        vfs.sync_parent_dir(&path)?;
        self.file = file;
        self.len = WAL_HEADER.len() as u64;
        self.records = 0;
        Ok(())
    }

    /// Drop every record: truncate back to the bare header (used after a
    /// successful snapshot has made the log's contents redundant).
    pub fn truncate_all(&mut self) -> Result<(), ServeError> {
        self.file.set_len(WAL_HEADER.len() as u64)?;
        self.file.sync_all()?;
        self.file.seek_to(WAL_HEADER.len() as u64)?;
        self.len = WAL_HEADER.len() as u64;
        self.records = 0;
        Ok(())
    }

    /// Records appended since the last truncation.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Current file length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        self.file.path()
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("crh_wal_{}_{name}.wal", std::process::id()))
    }

    fn pt() -> Vfs {
        Vfs::passthrough()
    }

    #[test]
    fn roundtrip_records() {
        let p = tmp("roundtrip");
        std::fs::remove_file(&p).ok();
        {
            let (mut wal, rec) = Wal::open(&p, &pt()).unwrap();
            assert!(rec.records.is_empty());
            assert_eq!(wal.append(b"alpha").unwrap(), 0);
            assert_eq!(wal.append(b"beta").unwrap(), 1);
            assert_eq!(wal.record_count(), 2);
        }
        let (wal, rec) = Wal::open(&p, &pt()).unwrap();
        assert_eq!(rec.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(wal.record_count(), 2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let p = tmp("torn");
        std::fs::remove_file(&p).ok();
        {
            let (mut wal, _) = Wal::open(&p, &pt()).unwrap();
            wal.append(b"good record").unwrap();
            wal.append_torn(b"half written record", 0.4).unwrap();
        }
        let (mut wal, rec) = Wal::open(&p, &pt()).unwrap();
        assert_eq!(rec.records, vec![b"good record".to_vec()]);
        assert!(rec.truncated_bytes > 0);
        // the log is immediately appendable again
        wal.append(b"after recovery").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&p, &pt()).unwrap();
        assert_eq!(
            rec.records,
            vec![b"good record".to_vec(), b"after recovery".to_vec()]
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn injected_torn_write_crashes_and_recovers() {
        let p = tmp("injected_torn");
        std::fs::remove_file(&p).ok();
        {
            let (mut wal, _) = Wal::open(&p, &pt()).unwrap();
            wal.append(b"committed before the faults").unwrap();
        }
        let vfs = Vfs::faulted(
            crate::vfs::DiskFaultPlan::new(11)
                .torn_writes(1.0)
                .max_faults(1),
        )
        .unwrap();
        {
            let (mut wal, _) = Wal::open(&p, &vfs).unwrap();
            let err = wal.append(b"this one is torn by the plan").unwrap_err();
            assert!(
                matches!(
                    err,
                    ServeError::InjectedCrash(crate::faults::ServePoint::DiskWrite)
                ),
                "{err}"
            );
            // crashed process: the handle is dropped without cleanup
        }
        let (_, rec) = Wal::open(&p, &pt()).unwrap();
        assert_eq!(rec.records, vec![b"committed before the faults".to_vec()]);
        assert!(rec.truncated_bytes > 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_header_is_recreated_not_fatal() {
        let p = tmp("torn_header");
        // a strict prefix of the header: crash during log creation
        std::fs::write(&p, &WAL_HEADER[..3]).unwrap();
        let (mut wal, rec) = Wal::open(&p, &pt()).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncated_bytes, 3);
        wal.append(b"fresh start").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&p, &pt()).unwrap();
        assert_eq!(rec.records, vec![b"fresh start".to_vec()]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mid_log_corruption_is_typed_fatal() {
        let p = tmp("midlog");
        std::fs::remove_file(&p).ok();
        {
            let (mut wal, _) = Wal::open(&p, &pt()).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        // flip a byte inside the *first* record's payload
        let at = WAL_HEADER.len() + RECORD_HEADER + 2;
        bytes[at] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let err = Wal::open(&p, &pt()).unwrap_err();
        assert!(matches!(err, ServeError::WalCorrupt { .. }), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn crc_failure_on_final_record_is_a_torn_tail() {
        let p = tmp("tailcrc");
        std::fs::remove_file(&p).ok();
        {
            let (mut wal, _) = Wal::open(&p, &pt()).unwrap();
            wal.append(b"keep me").unwrap();
            wal.append(b"flip me").unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();
        let (_, rec) = Wal::open(&p, &pt()).unwrap();
        assert_eq!(rec.records, vec![b"keep me".to_vec()]);
        assert!(rec.truncated_bytes > 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_header_is_typed_fatal() {
        let p = tmp("header");
        std::fs::write(&p, b"NOTAWALFILE").unwrap();
        let err = Wal::open(&p, &pt()).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::WalCorrupt {
                    offset: 0,
                    reason: _
                }
            ),
            "{err}"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn parent_dir_sync_succeeds_on_real_dirs_and_types_failures() {
        let p = tmp("dirsync");
        std::fs::write(&p, b"x").unwrap();
        sync_parent_dir(&p).unwrap();
        std::fs::remove_file(&p).ok();

        let missing = std::env::temp_dir()
            .join(format!("crh_wal_no_such_dir_{}", std::process::id()))
            .join("file.wal");
        let err = sync_parent_dir(&missing).unwrap_err();
        assert!(
            matches!(err, ServeError::SnapshotDirSync { .. }),
            "expected SnapshotDirSync, got {err}"
        );
    }

    #[test]
    fn truncate_all_resets_the_log() {
        let p = tmp("truncall");
        std::fs::remove_file(&p).ok();
        let (mut wal, _) = Wal::open(&p, &pt()).unwrap();
        wal.append(b"x").unwrap();
        wal.append(b"y").unwrap();
        wal.truncate_all().unwrap();
        assert_eq!(wal.record_count(), 0);
        wal.append(b"fresh").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&p, &pt()).unwrap();
        assert_eq!(rec.records, vec![b"fresh".to_vec()]);
        std::fs::remove_file(&p).ok();
    }
}
