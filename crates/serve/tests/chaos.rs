//! Deterministic chaos suite: `kill -9` the daemon core at seeded fault
//! points and prove recovery equivalence.
//!
//! The contract under test: for **every** seeded fault plan, a run that
//! crashes and recovers arbitrarily many times ends bit-identical —
//! same weights, same accumulated distances, same truth cache, same
//! snapshot payload — to a run that never crashed, as long as the
//! client-side driver follows the recovery protocol:
//!
//! - on an injected crash, drop the core (a real `kill -9` destroys the
//!   process) and reopen from the state directory;
//! - resubmit a chunk only if the recovered `chunks_seen` shows it was
//!   **not** durably accepted (a torn WAL tail). A crash after the WAL
//!   fsync means the chunk is already in; resubmitting would double-fold,
//!   and the protocol's sequence numbers make that visible.
//!
//! Every assertion names the failing seed, so a regression is a
//! one-command reproduction.

use crh_core::rng::{Pcg64, Rng};
use crh_core::schema::Schema;
use crh_serve::{
    ChunkClaim, ServeConfig, ServeCore, ServeError, ServeFaultInjector, ServeFaultPlan,
};
use std::path::PathBuf;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    s.add_continuous("humidity");
    let p = s.add_categorical("condition");
    for label in ["sunny", "rainy", "foggy"] {
        s.intern(p, label).unwrap();
    }
    s
}

fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("crh_chaos_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Deterministic workload: `n` chunks of 3-6 claims over 4 sources, with
/// per-source bias so the weights actually diverge.
fn workload(seed: u64, n: usize) -> Vec<Vec<ChunkClaim>> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        let len = 3 + (rng.next_u64() % 4) as usize;
        let mut chunk = Vec::with_capacity(len);
        for _ in 0..len {
            let object = (rng.next_u64() % 5) as u32;
            let source = (rng.next_u64() % 4) as u32;
            // source k reports with bias k/2: reliability differs by source
            let bias = source as f64 / 2.0;
            match rng.next_u64() % 3 {
                0 => chunk.push(ChunkClaim::num(
                    object,
                    0,
                    source,
                    20.0 + bias + (rng.next_u64() % 100) as f64 / 100.0,
                )),
                1 => chunk.push(ChunkClaim::num(object, 1, source, 0.5 + bias / 10.0)),
                _ => chunk.push(ChunkClaim {
                    object,
                    property: 2,
                    source,
                    value: crh_core::value::Value::Cat((rng.next_u64() % 3) as u32),
                }),
            }
        }
        chunks.push(chunk);
    }
    chunks
}

fn config(dir: &PathBuf) -> ServeConfig {
    ServeConfig::new(schema(), 0.7, dir)
        .snapshot_every(3)
        .truth_cache_cap(8)
}

/// Run the workload with no faults: the reference fingerprint.
fn reference_fingerprint(seed: u64, chunks: &[Vec<ChunkClaim>]) -> Vec<u8> {
    let dir = test_dir(&format!("ref_{seed}"));
    let (mut core, _) = ServeCore::open(config(&dir)).unwrap();
    for chunk in chunks {
        core.ingest(chunk).unwrap();
    }
    let bytes = core.checkpoint_bytes();
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

/// Drive the workload through a chaotic core, crashing and recovering as
/// the plan dictates. Returns (fingerprint, crashes survived).
fn chaotic_run(seed: u64, chunks: &[Vec<ChunkClaim>]) -> (Vec<u8>, u64) {
    let dir = test_dir(&format!("chaos_{seed}"));
    let injector = ServeFaultInjector::new(
        ServeFaultPlan::new(seed)
            .torn_wal(0.12)
            .before_fold(0.12)
            .after_fold(0.12)
            .during_snapshot(0.12)
            .max_faults(24),
    );
    let open = |inj: &ServeFaultInjector| {
        let (core, _) = ServeCore::open(config(&dir).injector(inj.clone()))
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        core
    };
    let mut core = open(&injector);
    let mut crashes = 0u64;
    for (i, chunk) in chunks.iter().enumerate() {
        loop {
            if core.chunks_seen() > i as u64 {
                // durably accepted by an earlier attempt whose ack was
                // lost in a crash; resubmitting would double-fold
                break;
            }
            match core.ingest(chunk) {
                Ok(receipt) => {
                    assert_eq!(
                        receipt.seq, i as u64,
                        "seed {seed}: chunk {i} folded under the wrong sequence"
                    );
                    break;
                }
                Err(ServeError::InjectedCrash(point)) => {
                    crashes += 1;
                    // kill -9: the in-memory core is gone, recover from disk
                    drop(core);
                    core = open(&injector);
                    assert!(
                        core.chunks_seen() <= (i + 1) as u64,
                        "seed {seed}: recovery after {point:?} invented chunks"
                    );
                }
                Err(e) => panic!("seed {seed}: unexpected ingest error on chunk {i}: {e}"),
            }
        }
        // bounded memory: the truth cache never outgrows its cap and the
        // WAL is absorbed by snapshots instead of growing forever
        let status = core.status();
        assert!(
            status.cached_truths <= 8,
            "seed {seed}: truth cache grew past its cap"
        );
        assert!(
            status.wal_records <= chunks.len() as u64,
            "seed {seed}: WAL failed to truncate"
        );
    }
    assert_eq!(
        core.chunks_seen(),
        chunks.len() as u64,
        "seed {seed}: lost or duplicated chunks"
    );
    let bytes = core.checkpoint_bytes();
    std::fs::remove_dir_all(&dir).ok();
    (bytes, crashes)
}

#[test]
fn recovery_is_bit_identical_across_seeded_crash_plans() {
    let mut total_crashes = 0u64;
    // ≥ 8 seeds per the CI chaos gate; each seed schedules a different
    // interleaving of torn writes and crashes at all four pipeline points
    for seed in 0..10u64 {
        let chunks = workload(seed, 20);
        let reference = reference_fingerprint(seed, &chunks);
        let (recovered, crashes) = chaotic_run(seed, &chunks);
        assert_eq!(
            recovered, reference,
            "seed {seed}: state after {crashes} crash/recover cycles diverged from the \
             never-crashed reference (reproduce with ServeFaultPlan::new({seed}))"
        );
        total_crashes += crashes;
    }
    assert!(
        total_crashes > 0,
        "fault plans injected no crashes at all; the suite proved nothing"
    );
}

#[test]
fn wal_replay_is_idempotent_over_a_restored_snapshot() {
    for seed in [11u64, 29, 47] {
        let chunks = workload(seed, 10);
        let dir = test_dir(&format!("idem_{seed}"));
        // snapshot_every(4): after 10 chunks the snapshot holds 8 and the
        // WAL holds 2 — dropped without a clean shutdown, like a crash
        let fingerprint = {
            let (mut core, _) = ServeCore::open(config(&dir).snapshot_every(4)).unwrap();
            for chunk in &chunks {
                core.ingest(chunk).unwrap();
            }
            core.checkpoint_bytes()
        };
        // First recovery replays the WAL over the restored snapshot…
        let first = {
            let (core, report) = ServeCore::open(config(&dir).snapshot_every(4)).unwrap();
            assert_eq!(
                report.wal_replayed, 2,
                "seed {seed}: expected exactly the unsnapshotted tail to replay"
            );
            core.checkpoint_bytes()
        };
        // …and a second recovery replays the *same* WAL again: recovery
        // leaves the disk untouched, so replay must be idempotent.
        let second = {
            let (core, report) = ServeCore::open(config(&dir).snapshot_every(4)).unwrap();
            assert_eq!(
                report.wal_replayed, 2,
                "seed {seed}: WAL changed between opens"
            );
            core.checkpoint_bytes()
        };
        assert_eq!(
            first, fingerprint,
            "seed {seed}: first WAL replay diverged from the live state"
        );
        assert_eq!(
            second, first,
            "seed {seed}: replaying the same WAL twice produced different state"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn stale_wal_after_snapshot_rename_is_skipped_not_refolded() {
    // Crash exactly between the snapshot rename and the WAL truncation:
    // the WAL still holds records the snapshot has absorbed.
    let seed = 5u64;
    let chunks = workload(seed, 6);
    let reference = reference_fingerprint(seed, &chunks);
    let dir = test_dir("stale_wal");
    // fire the crash on every snapshot attempt until the budget runs out
    let injector =
        ServeFaultInjector::new(ServeFaultPlan::new(seed).during_snapshot(1.0).max_faults(2));
    let open =
        |inj: &ServeFaultInjector| ServeCore::open(config(&dir).injector(inj.clone())).unwrap();
    let (mut core, _) = open(&injector);
    for (i, chunk) in chunks.iter().enumerate() {
        loop {
            if core.chunks_seen() > i as u64 {
                break;
            }
            match core.ingest(chunk) {
                Ok(_) => break,
                Err(ServeError::InjectedCrash(_)) => {
                    drop(core);
                    let (c, report) = open(&injector);
                    core = c;
                    assert_eq!(
                        report.wal_replayed + report.snapshot_chunks - report.wal_skipped,
                        core.chunks_seen() - report.wal_skipped,
                        "replay accounting is inconsistent"
                    );
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    assert_eq!(core.checkpoint_bytes(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_chunk_is_not_acknowledged_and_not_recovered() {
    // A torn append must behave as if the chunk never arrived.
    let dir = test_dir("torn_unacked");
    let injector = ServeFaultInjector::new(ServeFaultPlan::new(123).torn_wal(1.0).max_faults(1));
    let (mut core, _) = ServeCore::open(config(&dir).injector(injector.clone())).unwrap();
    let chunks = workload(9, 2);
    let err = core.ingest(&chunks[0]).unwrap_err();
    assert!(matches!(err, ServeError::InjectedCrash(_)), "{err}");
    // poisoned: the crashed core refuses further work
    assert!(matches!(
        core.ingest(&chunks[0]),
        Err(ServeError::ShuttingDown)
    ));
    drop(core);
    let (mut core, report) = ServeCore::open(config(&dir).injector(injector)).unwrap();
    assert!(
        report.torn_bytes > 0,
        "the torn tail should have been truncated"
    );
    assert_eq!(core.chunks_seen(), 0, "a torn chunk must not be recovered");
    // the fault budget is spent, so the resubmission goes through
    core.ingest(&chunks[0]).unwrap();
    assert_eq!(core.chunks_seen(), 1);
    std::fs::remove_dir_all(&dir).ok();
}
