//! Disk-fault chaos suite: seeded storage faults against the durable
//! artifacts themselves.
//!
//! Where `chaos.rs` kills the *process* at seeded points, this suite
//! makes the *disk* the adversary via the [`Vfs`] seam: torn writes,
//! silent bit rot on read, fsyncs that lie (surfaced when a simulated
//! crash truncates every file to its honestly-synced length), transient
//! `EIO`, and a disk that latches sticky-dead. The contracts under
//! test:
//!
//! - **Recovery equivalence**: for every seeded fault plan, a run that
//!   crashes and recovers through disk faults ends bit-identical to a
//!   run on a healthy disk.
//! - **No honest ack lost**: with a disk that never lies about fsync,
//!   an acknowledged chunk survives every crash.
//! - **Generation fallback**: a corrupt newest snapshot recovers from
//!   the previous generation plus full WAL replay, flagged in the
//!   recovery report, bit-identical.
//! - **Scrub + read-repair**: a follower's silently-rotted artifact is
//!   detected by the scrubber, quarantined, and re-synced from the
//!   quorum while the cluster keeps serving.
//! - **Dying-disk failover**: a primary on a sticky-bad disk returns a
//!   typed [`ServeError::DiskDegraded`], self-deposes, never campaigns
//!   again, and a healthy replica takes over with every quorum-acked
//!   write intact.

use crh_core::rng::{Pcg64, Rng};
use crh_core::schema::Schema;
use crh_serve::{
    ChunkClaim, DiskFaultPlan, NetFaultPlan, Role, ServeConfig, ServeCore, ServeError, SimCluster,
    Vfs,
};
use std::path::PathBuf;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    s.add_continuous("humidity");
    let p = s.add_categorical("condition");
    for label in ["sunny", "rainy", "foggy"] {
        s.intern(p, label).unwrap();
    }
    s
}

fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("crh_chaosdisk_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Deterministic workload, same shape as the process-chaos suite.
fn workload(seed: u64, n: usize) -> Vec<Vec<ChunkClaim>> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        let len = 3 + (rng.next_u64() % 4) as usize;
        let mut chunk = Vec::with_capacity(len);
        for _ in 0..len {
            let object = (rng.next_u64() % 5) as u32;
            let source = (rng.next_u64() % 4) as u32;
            let bias = source as f64 / 2.0;
            match rng.next_u64() % 3 {
                0 => chunk.push(ChunkClaim::num(
                    object,
                    0,
                    source,
                    20.0 + bias + (rng.next_u64() % 100) as f64 / 100.0,
                )),
                1 => chunk.push(ChunkClaim::num(object, 1, source, 0.5 + bias / 10.0)),
                _ => chunk.push(ChunkClaim {
                    object,
                    property: 2,
                    source,
                    value: crh_core::value::Value::Cat((rng.next_u64() % 3) as u32),
                }),
            }
        }
        chunks.push(chunk);
    }
    chunks
}

fn config(dir: &PathBuf, vfs: Vfs) -> ServeConfig {
    ServeConfig::new(schema(), 0.7, dir)
        .snapshot_every(3)
        .truth_cache_cap(8)
        .vfs(vfs)
}

/// Run the workload on a healthy disk: the reference fingerprint.
fn reference_fingerprint(seed: u64, chunks: &[Vec<ChunkClaim>]) -> Vec<u8> {
    let dir = test_dir(&format!("ref_{seed}"));
    let (mut core, _) = ServeCore::open(config(&dir, Vfs::passthrough())).unwrap();
    for chunk in chunks {
        core.ingest(chunk).unwrap();
    }
    let bytes = core.checkpoint_bytes();
    std::fs::remove_dir_all(&dir).ok();
    bytes
}

/// Reopen after a (simulated) crash. Recovery itself runs on the faulty
/// disk, so a read can rot or EIO mid-recovery — retry until the fault
/// budget drains; a persistent failure is a real recovery bug.
fn reopen(dir: &PathBuf, vfs: &Vfs, seed: u64) -> ServeCore {
    let mut last = None;
    for _ in 0..64 {
        match ServeCore::open(config(dir, vfs.clone())) {
            Ok((core, _)) => return core,
            Err(e) => last = Some(e),
        }
    }
    panic!(
        "seed {seed}: recovery never succeeded; last error: {:?}",
        last
    );
}

/// Drive the workload over a faulty disk, crash-reopening on every
/// fault. Returns (fingerprint, crashes survived). `honest_fsync` turns
/// on the no-acked-write-lost assertion (only valid when the plan never
/// lies about fsync).
fn disk_chaotic_run(
    seed: u64,
    chunks: &[Vec<ChunkClaim>],
    plan: DiskFaultPlan,
    honest_fsync: bool,
) -> (Vec<u8>, u64) {
    let dir = test_dir(&format!("chaos_{seed}"));
    let vfs = Vfs::faulted(plan).unwrap();
    let mut core = reopen(&dir, &vfs, seed);
    let mut crashes = 0u64;
    let mut acked = 0u64;
    loop {
        let i = core.chunks_seen() as usize;
        if i == chunks.len() {
            // prove durability: one final crash must preserve everything
            // the disk honestly synced (a lying fsync may rewind, in
            // which case the loop resubmits the rewound tail)
            vfs.simulate_crash();
            drop(core);
            core = reopen(&dir, &vfs, seed);
            if honest_fsync {
                assert!(
                    core.chunks_seen() >= acked,
                    "seed {seed}: honest disk lost acked chunks ({} < {acked})",
                    core.chunks_seen()
                );
            }
            if core.chunks_seen() as usize == chunks.len() {
                break;
            }
            crashes += 1;
            continue;
        }
        match core.ingest(&chunks[i]) {
            Ok(receipt) => {
                assert_eq!(
                    receipt.seq, i as u64,
                    "seed {seed}: chunk {i} folded under the wrong sequence"
                );
                acked = acked.max(receipt.seq + 1);
            }
            Err(ServeError::InjectedCrash(_) | ServeError::Io(_) | ServeError::ShuttingDown) => {
                // torn write, transient EIO, or a poisoned core: treat
                // them all crash-only — kill, truncate to the honestly
                // durable prefix, recover from disk
                crashes += 1;
                vfs.simulate_crash();
                drop(core);
                core = reopen(&dir, &vfs, seed);
                if honest_fsync {
                    assert!(
                        core.chunks_seen() >= acked,
                        "seed {seed}: honest disk lost acked chunks ({} < {acked})",
                        core.chunks_seen()
                    );
                }
            }
            Err(e) => panic!("seed {seed}: unexpected ingest error on chunk {i}: {e}"),
        }
    }
    let bytes = core.checkpoint_bytes();
    std::fs::remove_dir_all(&dir).ok();
    (bytes, crashes)
}

#[test]
fn recovery_is_bit_identical_across_seeded_disk_fault_plans() {
    let mut total_crashes = 0u64;
    let mut lying_seeds = 0u64;
    for seed in 0..10u64 {
        // Even seeds: an honest-but-failing disk (torn writes, bit rot,
        // transient EIO) — acked writes must survive every crash. Odd
        // seeds add lying fsyncs, which may rewind un-durable acks; the
        // driver resubmits and the *final* state must still converge.
        let lying = seed % 2 == 1;
        let mut plan = DiskFaultPlan::new(seed)
            .torn_writes(0.10)
            .bit_rot(0.05)
            .transient_eio(0.05)
            .max_faults(16);
        if lying {
            plan = plan.lying_fsyncs(0.10).max_faults(8);
            lying_seeds += 1;
        }
        let chunks = workload(seed, 20);
        let reference = reference_fingerprint(seed, &chunks);
        let (recovered, crashes) = disk_chaotic_run(seed, &chunks, plan, !lying);
        assert_eq!(
            recovered, reference,
            "seed {seed}: state after {crashes} disk-fault crashes diverged from the \
             healthy-disk reference (reproduce with DiskFaultPlan::new({seed}))"
        );
        total_crashes += crashes;
    }
    assert!(
        total_crashes > 0,
        "disk fault plans injected no crashes at all; the suite proved nothing"
    );
    assert!(lying_seeds > 0);
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_previous_generation() {
    let seed = 31u64;
    let chunks = workload(seed, 8);
    let reference = reference_fingerprint(seed, &chunks);
    let dir = test_dir("snap_fallback");
    // snapshot_every(3) over 8 chunks: snapshot.crh covers 6 chunks,
    // snapshot.prev.crh covers 3, the WAL generations hold the rest
    {
        let (mut core, _) = ServeCore::open(config(&dir, Vfs::passthrough())).unwrap();
        for chunk in &chunks {
            core.ingest(chunk).unwrap();
        }
        assert!(dir.join("snapshot.prev.crh").exists());
    }
    // silent rot lands mid-payload in the *newest* snapshot
    let snap = dir.join("snapshot.crh");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&snap, &bytes).unwrap();

    let (core, report) = ServeCore::open(config(&dir, Vfs::passthrough())).unwrap();
    assert!(
        report.snapshot_fallback,
        "recovery must report that it fell back a generation"
    );
    assert!(
        report.snapshot_chunks < 8,
        "the fallback snapshot must be the older generation"
    );
    assert_eq!(
        core.chunks_seen(),
        8,
        "previous generation + WAL replay must cover every chunk"
    );
    assert_eq!(
        core.checkpoint_bytes(),
        reference,
        "fallback recovery diverged from the healthy reference"
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn cluster(tag: &str, vfs_for: impl Fn(u32) -> Vfs) -> (SimCluster, PathBuf) {
    let base = test_dir(tag);
    let b = base.clone();
    let sim = SimCluster::new(
        3,
        move |id| {
            ServeConfig::new(schema(), 0.7, b.join(format!("node{id}")))
                .snapshot_every(3)
                .vfs(vfs_for(id))
        },
        NetFaultPlan::new(0xD15C),
    )
    .unwrap();
    (sim, base)
}

/// Step the cluster, tolerating the typed refusals a member on a dead
/// disk feeds back through the reply path.
fn step_tolerant(sim: &mut SimCluster) {
    match sim.step() {
        Ok(()) | Err(ServeError::DiskDegraded { .. }) => {}
        Err(e) => panic!("unexpected cluster step error: {e}"),
    }
}

#[test]
fn scrubber_detects_bit_rot_and_read_repairs_from_quorum() {
    let (mut sim, base) = cluster("scrub", |_| Vfs::passthrough());
    let chunks = workload(40, 8);
    for chunk in &chunks {
        loop {
            match sim.client_ingest(chunk) {
                Ok(_) => break,
                Err(ServeError::NotPrimary { .. }) => sim.step().unwrap(),
                Err(e) => panic!("ingest refused: {e}"),
            }
        }
        sim.step().unwrap();
    }
    let healthy_digest = sim.settle(1, 400).unwrap();
    let primary = sim.primary().unwrap();
    let follower = (0..3).find(|i| *i != primary).unwrap();

    // silent bit rot in the follower's snapshot, mid-payload: recovery
    // would only notice at the next restart — the scrubber must notice
    // now, and repair without taking the cluster down
    let snap = base.join(format!("node{follower}")).join("snapshot.crh");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&snap, &bytes).unwrap();

    let report = sim.node_mut(follower).unwrap().scrub_and_repair().unwrap();
    assert_eq!(
        report.findings.len(),
        1,
        "the scrubber must find exactly the rotted snapshot: {:?}",
        report.findings
    );
    assert!(
        snap.with_extension("crh.corrupt").exists(),
        "the rotted artifact must be quarantined, not destroyed"
    );

    // availability during repair: the primary keeps acking writes
    let extra = workload(41, 1);
    sim.client_ingest(&extra[0]).unwrap();

    // the follower's next catch-up requests a full re-sync; settle until
    // every member agrees again
    let repaired_digest = sim.settle(1, 400).unwrap();
    assert_ne!(healthy_digest, 0);
    assert_ne!(
        repaired_digest, healthy_digest,
        "the extra chunk must be in the repaired state"
    );

    // the repaired artifacts verify clean on a second scrub pass
    let report = sim.node_mut(follower).unwrap().scrub_and_repair().unwrap();
    assert!(
        report.findings.is_empty(),
        "artifacts still corrupt after read-repair: {:?}",
        report.findings
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn dying_disk_primary_deposes_and_a_healthy_replica_takes_over() {
    // node 0's disk will latch sticky-dead mid-run; 1 and 2 stay healthy
    let sick = Vfs::faulted(DiskFaultPlan::new(7)).unwrap();
    let sick_handle = sick.clone();
    let (mut sim, base) = cluster("dying", move |id| {
        if id == 0 {
            sick.clone()
        } else {
            Vfs::passthrough()
        }
    });
    // node 0 (lowest id) wins the first election and acks a prefix
    let chunks = workload(50, 6);
    let mut committed = 0u64;
    for chunk in chunks.iter().take(3) {
        loop {
            match sim.client_ingest(chunk) {
                Ok((_, seq)) => {
                    committed = seq + 1;
                    break;
                }
                Err(ServeError::NotPrimary { .. }) => sim.step().unwrap(),
                Err(e) => panic!("ingest refused: {e}"),
            }
        }
        sim.step().unwrap();
    }
    for _ in 0..50 {
        sim.step().unwrap();
        if (0..committed).all(|s| sim.is_committed(s)) {
            break;
        }
    }
    assert!(
        (0..committed).all(|s| sim.is_committed(s)),
        "the healthy cluster failed to commit the prefix"
    );
    let old_primary = sim.primary().unwrap();
    assert_eq!(old_primary, 0, "node 0 should hold the first epoch");

    // the disk dies: every subsequent write/sync/meta op fails sticky
    sick_handle.force_sticky();
    let err = sim.client_ingest(&chunks[3]).unwrap_err();
    assert!(
        matches!(err, ServeError::DiskDegraded { .. }),
        "a dying-disk primary must refuse with the typed error, got: {err}"
    );
    assert_ne!(
        sim.node(0).unwrap().role(),
        Role::Primary,
        "a primary that cannot persist must self-depose"
    );

    // a healthy replica wins the next election; the deposed node must
    // never campaign (it cannot durably grant or claim an epoch)
    let mut new_primary = None;
    for _ in 0..600 {
        step_tolerant(&mut sim);
        if let Some(p) = sim.primary() {
            if p != 0 {
                new_primary = Some(p);
                break;
            }
        }
    }
    let new_primary = new_primary.expect("no healthy replica took over");
    assert_ne!(new_primary, 0);

    // availability with one member's disk dead: writes keep flowing and
    // keep committing through the healthy quorum
    let mut reacked = 0u64;
    for chunk in chunks.iter().skip(3) {
        for _ in 0..200 {
            match sim.client_ingest(chunk) {
                Ok((node, seq)) => {
                    assert_ne!(node, 0, "the dead-disk node must not ack writes");
                    reacked = seq + 1;
                    break;
                }
                Err(ServeError::NotPrimary { .. } | ServeError::DiskDegraded { .. }) => {
                    step_tolerant(&mut sim)
                }
                Err(e) => panic!("ingest refused after failover: {e}"),
            }
        }
        step_tolerant(&mut sim);
    }
    assert_eq!(reacked, 6, "the post-failover writes never got through");
    for _ in 0..200 {
        step_tolerant(&mut sim);
        if (0..reacked).all(|s| sim.is_committed(s)) {
            break;
        }
    }
    // no acked write lost: everything committed before the disk died —
    // and everything acked after failover — is committed on the healthy
    // members
    assert!(
        (0..reacked).all(|s| sim.is_committed(s)),
        "quorum-acked writes went missing after the dying-disk failover"
    );
    let d1 = sim.node(1).unwrap().state_digest();
    let d2 = sim.node(2).unwrap().state_digest();
    for _ in 0..200 {
        step_tolerant(&mut sim);
        let a = sim.node(1).unwrap();
        let b = sim.node(2).unwrap();
        if a.state_digest() == b.state_digest() && a.commit() == a.durable() {
            break;
        }
    }
    assert_eq!(
        sim.node(1).unwrap().state_digest(),
        sim.node(2).unwrap().state_digest(),
        "healthy members diverged (last seen {d1:#x} vs {d2:#x})"
    );
    std::fs::remove_dir_all(&base).ok();
}
