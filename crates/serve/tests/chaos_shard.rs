//! Shard-topology chaos suite.
//!
//! The contract under test, per the ISSUE acceptance criteria, across
//! ten seeded lifetimes of a 3-shard × 3-replica topology (random link
//! faults everywhere, a scheduled per-group partition, and a
//! seed-chosen **whole-quorum kill** of one shard):
//!
//! - **No quorum-acked write is lost.** A client that saw its sub-chunk
//!   reach its shard group's commit quorum finds it folded after the
//!   topology heals.
//! - **Scatter-gather digests equal an unsharded run.** After healing,
//!   every shard group's folded-state digest is byte-identical to a
//!   fresh, fault-free, *unsharded* cluster fed exactly that shard's
//!   surviving sub-stream in order — sharding plus chaos changes
//!   nothing about what each entry range converges to.
//! - **The degraded-read contract holds while a quorum is dead.** With
//!   one shard's every member down, reads owned by that shard answer a
//!   typed [`ServeError::Degraded`] naming it, scatter-gather reads
//!   report exactly it in `missing_shards`, and every other shard keeps
//!   serving — no panics, no hangs.
//!
//! Every chunk is single-shard by construction (all claims in chunk `i`
//! share the marker object `100 + i`), so the serial at-most-once
//! driver can track per-shard acks exactly like the unsharded chaos
//! suite does.

use std::path::PathBuf;

use crh_core::schema::Schema;
use crh_core::value::Value;
use crh_serve::{
    ChunkClaim, NetFaultPlan, PartitionWindow, ServeConfig, ServeError, ShardFaultPlan, ShardedSim,
    SimCluster,
};

const SHARDS: u32 = 3;
const REPLICAS: usize = 3;
const CHUNKS: usize = 12;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    s.add_continuous("humidity");
    s
}

fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("crh_shchaos_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Chunk `i`: a marker cell plus shared-cell claims, **all on the same
/// object** so the whole chunk routes to one shard and its fate is
/// observable through that single marker.
fn chunk(seed: u64, i: usize) -> Vec<ChunkClaim> {
    let object = 100 + i as u32;
    let mut claims = vec![ChunkClaim {
        object,
        property: 0,
        source: (i % 4) as u32,
        value: Value::Num(1000.0 + seed as f64 * 31.0 + i as f64),
    }];
    for s in 0..3u32 {
        claims.push(ChunkClaim {
            object,
            property: 1,
            source: s,
            value: Value::Num(20.0 + i as f64 + f64::from(s) * 0.75 + seed as f64 * 0.1),
        });
    }
    claims
}

fn marker_present(sim: &ShardedSim, i: usize) -> bool {
    matches!(sim.truth(100 + i as u32, 0), Ok((Some(_), _)))
}

/// One seeded chaotic lifetime: random link faults in every group, a
/// full partition inside a seed-chosen group, and — the headline fault —
/// a whole-quorum kill of another seed-chosen shard, later restarted.
fn chaos_plan(seed: u64) -> ShardFaultPlan {
    let partitioned = (seed % u64::from(SHARDS)) as u32;
    ShardFaultPlan::new(seed)
        .drops(0.04)
        .dropped_replies(0.03)
        .dups(0.04)
        .group_partition(
            partitioned,
            PartitionWindow {
                from_step: 30,
                to_step: 55,
                side_a: 0b001,
                one_way: seed.is_multiple_of(2),
            },
        )
        .kill_quorum(KILL_STEP, killed_shard(seed))
        .restart_after(30)
}

/// Scheduled far past where the serial driver finishes (asserted in the
/// test), so the ack phase and the quorum-dead window never overlap.
const KILL_STEP: u64 = 400;

/// The shard whose whole quorum dies: always distinct from nothing —
/// any of the three, chosen by seed.
fn killed_shard(seed: u64) -> u32 {
    ((seed / 3) % u64::from(SHARDS)) as u32
}

#[test]
fn shard_chaos_loses_no_acked_write_and_matches_unsharded_runs() {
    for seed in 0..10u64 {
        let base = test_dir(&format!("seed{seed}"));
        let b = base.clone();
        let mut sim = ShardedSim::open(
            SHARDS,
            REPLICAS,
            base.join("shard.map"),
            move |shard, node| ServeConfig::new(schema(), 0.5, b.join(format!("s{shard}_n{node}"))),
            chaos_plan(seed),
        )
        .unwrap();

        // Serial at-most-once driver: submit each (single-shard) chunk
        // once to its owning group, poll for the quorum ack, and record
        // whether it arrived. Timed-out chunks are never resubmitted, so
        // their fate stays observable via their marker cells.
        let mut acked: Vec<usize> = Vec::new();
        for i in 0..CHUNKS {
            let payload = chunk(seed, i);
            let shard = sim.shard_of(payload[0].object);
            let mut seq = None;
            for _ in 0..400 {
                match sim.ingest_shard(shard, &payload) {
                    Ok((_, s)) => {
                        seq = Some(s);
                        break;
                    }
                    // no reachable primary in that group right now;
                    // every other group is unaffected by construction
                    Err(_) => sim.step().unwrap(),
                }
            }
            let Some(s) = seq else { continue };
            for _ in 0..40 {
                sim.step().unwrap();
                if sim.is_committed(shard, s) {
                    acked.push(i);
                    break;
                }
            }
        }

        // --- degraded-read window: drive into the quorum kill ---------
        assert!(
            sim.now() < KILL_STEP,
            "seed {seed}: driver overran the kill schedule (now {})",
            sim.now()
        );
        let dead = killed_shard(seed);
        while sim.now() < KILL_STEP + 5 {
            sim.step().unwrap();
        }
        assert!(
            sim.group(dead).unwrap().alive().is_empty(),
            "seed {seed}: shard {dead}'s whole quorum should be down at step {}",
            sim.now()
        );
        // scatter-gather answers, reporting exactly the dead shard
        let scatter = sim.scatter_digests();
        assert_eq!(
            scatter.missing_shards,
            vec![dead],
            "seed {seed}: scatter must name exactly the dead shard"
        );
        assert_eq!(scatter.value.len(), SHARDS as usize - 1);
        assert!(scatter.is_degraded());
        // a strict read owned by the dead shard is a typed refusal...
        let dead_obj = (0..u32::MAX)
            .find(|&o| sim.shard_of(o) == dead)
            .expect("some object maps to every shard");
        match sim.truth(dead_obj, 0) {
            Err(ServeError::Degraded { missing_shards }) => {
                assert_eq!(missing_shards, vec![dead], "seed {seed}")
            }
            other => panic!("seed {seed}: expected Degraded, got {other:?}"),
        }
        // ...while every other shard keeps serving
        for shard in 0..SHARDS {
            if shard == dead {
                continue;
            }
            let obj = (0..u32::MAX).find(|&o| sim.shard_of(o) == shard).unwrap();
            sim.truth(obj, 0)
                .unwrap_or_else(|e| panic!("seed {seed}: healthy shard {shard} refused: {e}"));
        }

        // --- heal and settle every group ------------------------------
        while sim.now() < KILL_STEP + 40 {
            sim.step().unwrap();
        }
        let digests = sim.settle_all(5, 5000).unwrap();
        assert_eq!(digests.len(), SHARDS as usize);

        // (a) no quorum-acked write lost
        let survivors: Vec<usize> = (0..CHUNKS).filter(|&i| marker_present(&sim, i)).collect();
        for &i in &acked {
            assert!(
                survivors.contains(&i),
                "seed {seed}: quorum-acked chunk {i} lost \
                 (acked {acked:?}, survivors {survivors:?})"
            );
        }

        // (b) every shard's digest equals a fresh, fault-free,
        // *unsharded* cluster fed exactly that shard's survivors in order
        for (shard, digest) in digests {
            let ref_base = test_dir(&format!("seed{seed}_ref{shard}"));
            let rb = ref_base.clone();
            let mut reference = SimCluster::new(
                REPLICAS,
                move |id| ServeConfig::new(schema(), 0.5, rb.join(format!("node{id}"))),
                NetFaultPlan::new(seed ^ 0x5A5A),
            )
            .unwrap();
            for _ in 0..12 {
                reference.step().unwrap();
            }
            for &i in &survivors {
                let payload = chunk(seed, i);
                if sim.shard_of(payload[0].object) != shard {
                    continue;
                }
                let (_, s) = reference.client_ingest(&payload).unwrap();
                for _ in 0..64 {
                    reference.step().unwrap();
                    if reference.is_committed(s) {
                        break;
                    }
                }
                assert!(reference.is_committed(s), "seed {seed}: clean run stalled");
            }
            let ref_digest = reference.settle(1, 200).unwrap();
            assert_eq!(
                digest, ref_digest,
                "seed {seed}: shard {shard} diverged from its unsharded reference \
                 (acked {acked:?}, survivors {survivors:?})"
            );
            std::fs::remove_dir_all(&ref_base).ok();
        }

        std::fs::remove_dir_all(&base).ok();
    }
}
