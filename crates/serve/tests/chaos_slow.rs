//! Gray-failure chaos suite: *slowness* as the injected fault.
//!
//! Where `replication.rs` partitions links and `chaos_disk.rs` corrupts
//! bytes, this suite makes peers and disks **slow without being dead** —
//! the failure mode that silently serializes a quorum behind its worst
//! member. The contracts under test, per ISSUE acceptance criteria:
//!
//! - **No quorum-acked chunk is lost under latency chaos**, and the
//!   post-settle state is digest-identical to a fault-free run fed the
//!   surviving chunks: injected delay reorders traffic but never
//!   corrupts it.
//! - **Quorum acks never wait on the slowest replica.** With one member
//!   answering an order of magnitude late, commit latency tracks the
//!   healthy majority, and the primary's health scores expose (and
//!   quarantine) the straggler.
//! - **A primary on a chronically slow disk self-deposes** and never
//!   campaigns while slow — the gray analogue of the dying-disk
//!   failover.
//! - **Deadlines are refused before work, with the typed error, over
//!   real TCP** — a zero-budget envelope costs the daemon nothing, and
//!   probe frames round-trip without touching the ingest queue.
//! - **A hedged read rides out a tarpit member** (accepts the
//!   connection, never answers) in bounded time instead of waiting out
//!   the full client timeout.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crh_core::schema::Schema;
use crh_core::value::Value;
use crh_serve::proto::{read_frame, write_frame, Request, Response};
use crh_serve::{
    error::code, ChunkClaim, ClusterClient, DiskFaultPlan, NetFaultPlan, RetryPolicy, Role,
    ServeConfig, ServeCore, ServeError, Server, ServerConfig, SimCluster, Vfs,
};

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    s.add_continuous("humidity");
    s
}

fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("crh_slow_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Chunk `i`: a unique marker cell (`object = 100 + i`) plus shared
/// cells, same shape as the partition-chaos workload — the marker makes
/// a chunk's survival observable without guessing.
fn chunk(seed: u64, i: usize) -> Vec<ChunkClaim> {
    let mut claims = vec![ChunkClaim {
        object: 100 + i as u32,
        property: 0,
        source: (i % 4) as u32,
        value: Value::Num(2000.0 + seed as f64 * 17.0 + i as f64),
    }];
    for s in 0..3u32 {
        claims.push(ChunkClaim {
            object: (i % 5) as u32,
            property: s % 2,
            source: s,
            value: Value::Num(20.0 + i as f64 + f64::from(s) * 0.5 + seed as f64 * 0.1),
        });
    }
    claims
}

fn marker_present(c: &SimCluster, node: usize, i: usize) -> bool {
    c.node(node)
        .map(|n| n.core().truth(100 + i as u32, 0).is_some())
        .unwrap_or(false)
}

const CHUNKS: usize = 8;

/// Ten seeded lifetimes of pure latency chaos: random per-frame delays,
/// a seed-chosen chronic straggler, and one member on a disk that
/// stalls (but never corrupts). Slowness reorders everything and breaks
/// nothing: every quorum-acked chunk survives on every member, and the
/// settled digest equals a fault-free run fed the surviving chunks.
#[test]
fn latency_chaos_loses_no_acked_chunk_and_matches_a_clean_run() {
    for seed in 0..10u64 {
        let base = test_dir(&format!("latency{seed}"));
        let b = base.clone();
        // one member's disk stalls on a seeded schedule — wall-clock
        // slow, byte-identical
        let slow_disk = Vfs::faulted(
            DiskFaultPlan::new(seed)
                .slow_writes(0.10)
                .slow_fsyncs(0.10)
                .slow_for(Duration::from_millis(1)),
        )
        .unwrap();
        let slow_node = seed % 3;
        let plan = NetFaultPlan::new(seed)
            .delays(0.20, 1, 6)
            .straggler((seed % 3) as u32, 5)
            .drops(0.02);
        let mut c = SimCluster::new(
            3,
            move |id| {
                let vfs = if u64::from(id) == slow_node {
                    slow_disk.clone()
                } else {
                    Vfs::passthrough()
                };
                ServeConfig::new(schema(), 0.5, b.join(format!("node{id}"))).vfs(vfs)
            },
            plan,
        )
        .unwrap();

        // at-most-once driver: a chunk is submitted once; if the ack
        // never lands its fate stays observable via the marker
        let mut acked = Vec::new();
        for i in 0..CHUNKS {
            let payload = chunk(seed, i);
            let mut seq = None;
            for _ in 0..400 {
                match c.client_ingest(&payload) {
                    Ok((_, s)) => {
                        seq = Some(s);
                        break;
                    }
                    Err(_) => c.step().unwrap(),
                }
            }
            let Some(s) = seq else {
                continue;
            };
            for _ in 0..80 {
                c.step().unwrap();
                if c.is_committed(s) {
                    acked.push(i);
                    break;
                }
            }
        }

        // settle: every delayed frame drains, every member converges
        let digest = c.settle(5, 5000).unwrap();
        for n in 0..c.len() {
            assert_eq!(
                c.node(n).unwrap().state_digest(),
                digest,
                "seed {seed}: node {n} diverged after latency chaos"
            );
        }

        // (a) no quorum-acked chunk lost, on any member
        let survivors: Vec<usize> = (0..CHUNKS).filter(|&i| marker_present(&c, 0, i)).collect();
        for &i in &acked {
            for n in 0..c.len() {
                assert!(
                    marker_present(&c, n, i),
                    "seed {seed}: acked chunk {i} missing on node {n} \
                     (acked {acked:?}, survivors {survivors:?})"
                );
            }
        }
        assert!(
            acked.len() >= CHUNKS / 2,
            "seed {seed}: latency chaos should delay acks, not starve them \
             (acked {acked:?})"
        );

        // (b) digest equality with a never-delayed run over the survivors
        let ref_base = test_dir(&format!("latencyref{seed}"));
        let rb = ref_base.clone();
        let mut reference = SimCluster::new(
            3,
            move |id| ServeConfig::new(schema(), 0.5, rb.join(format!("node{id}"))),
            NetFaultPlan::new(seed ^ 0x510),
        )
        .unwrap();
        for _ in 0..12 {
            reference.step().unwrap();
        }
        for &i in &survivors {
            let (_, s) = reference.client_ingest(&chunk(seed, i)).unwrap();
            for _ in 0..64 {
                reference.step().unwrap();
                if reference.is_committed(s) {
                    break;
                }
            }
            assert!(reference.is_committed(s), "seed {seed}: clean run stalled");
        }
        let ref_digest = reference.settle(1, 200).unwrap();
        assert_eq!(
            digest, ref_digest,
            "seed {seed}: slow-chaos state differs from the fault-free run \
             (acked {acked:?}, survivors {survivors:?})"
        );

        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&ref_base).ok();
    }
}

/// One replica answers an order of magnitude late. The commit point
/// must track the healthy majority — if acks serialized behind the
/// straggler, every commit would take 60+ steps. The primary's health
/// map must also expose the straggler: a huge EWMA gap and, once
/// enough samples accrue, quarantine.
#[test]
fn quorum_acks_do_not_serialize_behind_the_slowest_replica() {
    let base = test_dir("straggler_ack");
    let b = base.clone();
    // node 2 answers 60 steps late; commit waits should stay single-digit
    const EXTRA: u64 = 60;
    let mut c = SimCluster::new(
        3,
        move |id| ServeConfig::new(schema(), 0.5, b.join(format!("node{id}"))),
        NetFaultPlan::new(0x51_0C).straggler(2, EXTRA),
    )
    .unwrap();

    let mut ack_steps = Vec::new();
    for i in 0..6usize {
        let payload = chunk(7, i);
        let seq = loop {
            match c.client_ingest(&payload) {
                Ok((_, s)) => break s,
                Err(_) => c.step().unwrap(),
            }
        };
        let mut steps = 0u64;
        while !c.is_committed(seq) {
            c.step().unwrap();
            steps += 1;
            assert!(
                steps < EXTRA,
                "chunk {i}: commit waited {steps} steps — serialized behind \
                 the {EXTRA}-step straggler"
            );
        }
        ack_steps.push(steps);
    }
    assert!(
        ack_steps.iter().all(|&s| s <= 10),
        "commit latencies {ack_steps:?} should track the healthy majority, \
         not the straggler"
    );

    // the primary's per-peer scores tell the two followers apart
    let primary = c.primary().expect("cluster has a primary");
    // let the straggler's late replies (and health bookkeeping) drain in
    for _ in 0..(EXTRA * 2) {
        c.step().unwrap();
    }
    let health = c.node(primary).unwrap().peer_health();
    let fast = health.ewma(1).expect("fast follower was scored");
    let slow = health.ewma(2).expect("straggler was scored");
    assert!(
        slow > fast * 4.0,
        "straggler EWMA {slow} should dwarf the healthy follower's {fast}"
    );
    assert!(
        health.is_quarantined(2),
        "a 10x-slow peer must end up quarantined (ewma {slow} vs {fast})"
    );
    assert!(
        !health.is_quarantined(1),
        "the healthy follower must stay in rotation"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// Step the cluster, tolerating the typed refusals a slow-disk member
/// feeds back through the reply path (vote grants are refused with
/// `DiskDegraded` so the member cannot stand in elections).
fn step_tolerant(c: &mut SimCluster) {
    match c.step() {
        Ok(()) | Err(ServeError::DiskDegraded { .. }) => {}
        Err(e) => panic!("unexpected cluster step error: {e}"),
    }
}

/// The gray analogue of the dying-disk failover: a primary whose disk
/// turns chronically slow (but still correct) steps down instead of
/// dragging every quorum wait, and refuses to campaign while slow.
#[test]
fn slow_disk_primary_self_deposes_and_a_fast_replica_takes_over() {
    let slow = Vfs::faulted(DiskFaultPlan::new(3)).unwrap();
    let slow_handle = slow.clone();
    let base = test_dir("slow_depose");
    let b = base.clone();
    let mut c = SimCluster::new(
        3,
        move |id| {
            let vfs = if id == 0 {
                slow.clone()
            } else {
                Vfs::passthrough()
            };
            ServeConfig::new(schema(), 0.5, b.join(format!("node{id}"))).vfs(vfs)
        },
        NetFaultPlan::new(0xDE9),
    )
    .unwrap();

    // node 0 (lowest id) wins the first election and commits a prefix
    let mut committed = 0u64;
    for i in 0..3usize {
        let payload = chunk(9, i);
        loop {
            match c.client_ingest(&payload) {
                Ok((_, s)) => {
                    committed = s + 1;
                    break;
                }
                Err(_) => c.step().unwrap(),
            }
        }
        for _ in 0..50 {
            c.step().unwrap();
            if c.is_committed(committed - 1) {
                break;
            }
        }
    }
    assert_eq!(c.primary(), Some(0), "node 0 should hold the first epoch");

    // the disk turns gray: every op still succeeds, just slowly
    slow_handle.force_slow();
    for _ in 0..5 {
        step_tolerant(&mut c);
    }
    assert_ne!(
        c.node(0).unwrap().role(),
        Role::Primary,
        "a primary on a slow disk must step down"
    );

    // a fast replica takes over; the slow node never re-campaigns
    let mut new_primary = None;
    for _ in 0..600 {
        step_tolerant(&mut c);
        if let Some(p) = c.primary() {
            if p != 0 {
                new_primary = Some(p);
                break;
            }
        }
        assert_ne!(c.primary(), Some(0), "the slow node must not re-win");
    }
    let new_primary = new_primary.expect("no fast replica took over");

    // reads route around the slow member too
    let target = c.read_target().expect("cluster still serves reads");
    assert_ne!(target, 0, "reads must prefer a fast member");

    // writes keep flowing and committing through the fast pair, and no
    // previously acked write is lost
    for i in 3..6usize {
        let payload = chunk(9, i);
        loop {
            match c.client_ingest(&payload) {
                Ok((node, s)) => {
                    assert_ne!(node, 0, "the slow node must not ack writes");
                    committed = s + 1;
                    break;
                }
                Err(_) => c.step().unwrap(),
            }
        }
    }
    for _ in 0..300 {
        step_tolerant(&mut c);
        if (0..committed).all(|s| c.is_committed(s)) {
            break;
        }
    }
    assert!(
        (0..committed).all(|s| c.is_committed(s)),
        "acked writes went missing across the slow-disk depose"
    );
    assert_eq!(c.primary(), Some(new_primary));
    std::fs::remove_dir_all(&base).ok();
}

fn start_server(dir: &PathBuf) -> Server {
    let cfg = ServeConfig::new(schema(), 0.5, dir);
    let (core, _) = ServeCore::open(cfg).unwrap();
    Server::start(core, ServerConfig::default(), "127.0.0.1:0").unwrap()
}

/// Raw round-trip of one frame over an existing stream.
fn roundtrip(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.encode()).unwrap();
    let payload = read_frame(stream).unwrap();
    Response::decode(&payload).unwrap()
}

/// Deadline propagation over real TCP: a zero-budget envelope is
/// refused with the typed `DEADLINE` code before any work happens,
/// probe frames round-trip without touching the ingest queue, and a
/// nested wrapper is a typed protocol error — never a hang.
#[test]
fn zero_budget_requests_are_refused_before_work_over_tcp() {
    let dir = test_dir("deadline_tcp");
    let server = start_server(&dir);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // zero budget + a real write: typed refusal, no side effects
    let refused = roundtrip(
        &mut stream,
        &Request::WithDeadline {
            budget_ms: 0,
            inner: Box::new(Request::Ingest(chunk(1, 0))),
        },
    );
    match refused {
        Response::Error { code: c, .. } => assert_eq!(c, code::DEADLINE),
        other => panic!("expected a DEADLINE refusal, got {other:?}"),
    }

    // probes bypass the queue and echo the nonce
    match roundtrip(&mut stream, &Request::Probe { nonce: 0xABAD_CAFE }) {
        Response::ProbeAck { nonce } => assert_eq!(nonce, 0xABAD_CAFE),
        other => panic!("expected a probe ack, got {other:?}"),
    }

    // refuse-before-work: the zero-budget ingest staged nothing
    match roundtrip(&mut stream, &Request::Status) {
        Response::Status { chunks_seen, .. } => {
            assert_eq!(chunks_seen, 0, "a refused ingest must not fold");
        }
        other => panic!("expected status, got {other:?}"),
    }

    // a generous budget goes through the same path and succeeds
    match roundtrip(
        &mut stream,
        &Request::WithDeadline {
            budget_ms: 60_000,
            inner: Box::new(Request::Ingest(chunk(1, 0))),
        },
    ) {
        Response::Ack { seq, .. } => assert_eq!(seq, 0),
        other => panic!("expected an ack under a generous budget, got {other:?}"),
    }

    // a nested wrapper is refused at decode with the PROTOCOL code
    let nested = Request::WithDeadline {
        budget_ms: 5,
        inner: Box::new(Request::WithDeadline {
            budget_ms: u64::MAX,
            inner: Box::new(Request::Status),
        }),
    };
    match roundtrip(&mut stream, &nested) {
        Response::Error { code: c, .. } => assert_eq!(c, code::PROTOCOL),
        other => panic!("expected a PROTOCOL refusal, got {other:?}"),
    }

    // the client-side envelope: an already-exhausted budget is a typed
    // DeadlineExceeded without a wire round-trip or a retry storm
    let mut cc = ClusterClient::new(
        vec![(0, server.addr().to_string())],
        Duration::from_secs(5),
        RetryPolicy::default(),
    );
    let err = cc
        .ingest_with_budget(chunk(1, 1), Duration::ZERO)
        .unwrap_err();
    assert!(
        matches!(err, ServeError::DeadlineExceeded),
        "zero budget must be the typed error, got {err}"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A tarpit member accepts the TCP connection and never answers — the
/// pure gray failure. A hedged read must abandon it on the tight
/// p95-derived first attempt and answer from the healthy member in
/// bounded time, nowhere near the full client timeout.
#[test]
fn hedged_read_rides_out_a_tarpit_member_in_bounded_time() {
    let dir_a = test_dir("tarpit_a");
    let dir_b = test_dir("tarpit_b");
    let server_a = start_server(&dir_a);
    let server_b = start_server(&dir_b);
    let addr_a = server_a.addr().to_string();
    let addr_b = server_b.addr().to_string();

    const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);
    let mut cc = ClusterClient::new(
        vec![(0, addr_a.clone()), (1, addr_b)],
        CLIENT_TIMEOUT,
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            seed: 7,
        },
    );

    // build member 0's latency history: fast, healthy answers
    for _ in 0..6 {
        let (_, _, hedged) = cc.status_hedged().unwrap();
        assert!(!hedged, "a healthy member must not trigger the hedge");
    }
    assert!(
        cc.health().p95(0).is_some(),
        "the preferred member should have a latency profile by now"
    );

    // member 0 becomes a tarpit: the listener accepts and says nothing
    server_a.shutdown();
    let tarpit = TcpListener::bind(&addr_a).expect("rebind the freed address");
    let sink = std::thread::spawn(move || {
        let mut held = Vec::new();
        // hold accepted sockets open so the peer blocks on the read, not
        // the connect; exit when the listener is closed by process end
        while let Ok((s, _)) = tarpit.accept() {
            held.push(s);
            if held.len() >= 4 {
                break;
            }
        }
        held
    });

    // the shut-down server's detached handler thread can keep answering
    // on the cached connection; bounce the preference to force a fresh
    // connect, which now lands on the tarpit listener
    cc.prefer(1);
    cc.prefer(0);

    let started = Instant::now();
    let (status, _, hedged) = cc.status_hedged().unwrap();
    let elapsed = started.elapsed();
    assert_eq!(status.chunks_seen, 0);
    assert!(
        hedged,
        "the tight first attempt against the tarpit must be abandoned"
    );
    assert!(
        elapsed < CLIENT_TIMEOUT / 2,
        "hedged read took {elapsed:?}; it must not wait out the tarpit \
         (client timeout {CLIENT_TIMEOUT:?})"
    );

    // the tarpit strike counts against member 0's profile: subsequent
    // hedged reads keep answering from the healthy member
    for _ in 0..2 {
        let (_, _, _) = cc.status_hedged().unwrap();
    }

    drop(cc);
    // unblock the sink thread so the test tears down cleanly
    let _ = TcpStream::connect(&addr_a);
    let _ = TcpStream::connect(&addr_a);
    let _ = TcpStream::connect(&addr_a);
    let _ = sink.join();
    server_b.shutdown();
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
