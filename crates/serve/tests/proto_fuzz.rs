//! Protocol-level fuzz harness: every frame type, through seeded
//! truncation, bit-flips, and duplication, must come back as a typed
//! error or a valid frame — never a panic, never an unbounded
//! allocation.
//!
//! The mutations are derived from [`hash_rng`], so a failing input is
//! reproducible from the assertion message's `(variant, round)` key
//! alone.

use crh_core::rng::{hash_rng, Rng};
use crh_core::value::{Truth, Value};
use crh_serve::error::code;
use crh_serve::proto::{read_frame, write_frame, Request, Response};
use crh_serve::{ChunkClaim, ShardMap, ShardRange};

fn sample_claims() -> Vec<ChunkClaim> {
    vec![
        ChunkClaim {
            object: 0,
            property: 0,
            source: 1,
            value: Value::Num(21.5),
        },
        ChunkClaim {
            object: 3,
            property: 1,
            source: 2,
            value: Value::Cat(1),
        },
        ChunkClaim {
            object: 4,
            property: 2,
            source: 0,
            value: Value::Text("fog".into()),
        },
    ]
}

/// One instance of every request variant, replication frames included.
fn sample_requests() -> Vec<Request> {
    vec![
        Request::Ingest(sample_claims()),
        Request::IngestCsv("0,temperature,1,21.5\n".into()),
        Request::Weights,
        Request::Truth {
            object: 7,
            property: 1,
        },
        Request::Status,
        Request::Solve {
            tol: 1e-6,
            max_iters: 50,
            claims: sample_claims(),
        },
        Request::Shutdown,
        Request::Replicate {
            token: 0xC1A5,
            epoch: 3,
            node: 0,
            seq: 17,
            commit: 15,
            record: vec![0xDE, 0xAD, 0xBE, 0xEF],
        },
        Request::Heartbeat {
            token: 0xC1A5,
            epoch: 3,
            node: 1,
            commit: 17,
            head: 18,
        },
        Request::CatchUp {
            token: 0xC1A5,
            epoch: 3,
            from: 12,
        },
        Request::Promote {
            token: 0xC1A5,
            epoch: 4,
            node: 2,
            head: 18,
        },
        Request::SeqQuery {
            token: 0xC1A5,
            epoch: 4,
        },
        Request::RouteTable,
        Request::ShardIngest {
            shard: 1,
            map_version: 3,
            claims: sample_claims(),
        },
        Request::ShardTruth {
            shard: 2,
            map_version: 3,
            object: 7,
            property: 0,
        },
        Request::SplitStage {
            token: 0xC1A5,
            shard: 2,
            snapshot: None,
            records: vec![vec![4, 5, 6], vec![]],
        },
        Request::SplitStage {
            token: 0xC1A5,
            shard: 2,
            snapshot: Some(vec![7; 24]),
            records: vec![],
        },
        Request::SplitCutover {
            token: 0xC1A5,
            version: 4,
            ranges: sample_ranges(),
        },
        Request::WithDeadline {
            budget_ms: 250,
            inner: Box::new(Request::Truth {
                object: 7,
                property: 1,
            }),
        },
        Request::WithDeadline {
            budget_ms: 0,
            inner: Box::new(Request::Status),
        },
        Request::Probe { nonce: 0x9D5_F00D },
    ]
}

fn sample_ranges() -> Vec<ShardRange> {
    vec![
        ShardRange {
            shard: 0,
            start: 0,
            end: u64::MAX / 2,
        },
        ShardRange {
            shard: 2,
            start: u64::MAX / 2 + 1,
            end: u64::MAX,
        },
    ]
}

/// One instance of every response variant.
fn sample_responses() -> Vec<Response> {
    vec![
        Response::Ack {
            seq: 9,
            chunks_seen: 10,
        },
        Response::Weights(vec![1.0, 0.5, f64::MAX]),
        Response::Truth(None),
        Response::Truth(Some(Truth::Point(Value::Num(3.25)))),
        Response::Truth(Some(Truth::Distribution {
            probs: vec![0.25, 0.75],
            mode: 1,
        })),
        Response::Status {
            chunks_seen: 5,
            wal_records: 2,
            cached_truths: 11,
            queue_depth: 0,
            quarantined: vec![3, 8],
        },
        Response::Solved {
            weights: vec![2.0, 1.0],
            objective: 0.125,
            iterations: 7,
        },
        Response::Error {
            code: 1,
            message: "queue full".into(),
            hint: None,
        },
        Response::Error {
            code: 8,
            message: "not the primary; retry against node 2".into(),
            hint: Some(2),
        },
        Response::ReplAck {
            node: 1,
            epoch: 4,
            durable: 18,
            last_epoch: 3,
        },
        Response::CatchUpRecords {
            epoch: 4,
            commit: 17,
            snapshot: None,
            records: vec![vec![1, 2, 3], vec![]],
        },
        Response::CatchUpRecords {
            epoch: 4,
            commit: 17,
            snapshot: Some(vec![9; 32]),
            records: vec![],
        },
        Response::FollowerRead {
            lag: 2,
            inner: Response::Weights(vec![1.0, 0.5]).encode(),
        },
        Response::RouteTable {
            version: 4,
            shard: 2,
            ranges: sample_ranges(),
        },
        Response::ProbeAck { nonce: 0x9D5_F00D },
    ]
}

fn flip_some(bytes: &mut [u8], seed: u64, key: &[u64]) {
    let mut rng = hash_rng(seed, key);
    let flips = 1 + (rng.next_u64() % 4) as usize;
    for _ in 0..flips {
        let i = (rng.next_u64() as usize) % bytes.len();
        bytes[i] ^= 1 << (rng.next_u64() % 8);
    }
}

#[test]
fn truncated_requests_are_typed_errors() {
    for (vi, req) in sample_requests().iter().enumerate() {
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            assert!(
                Request::decode(&bytes[..cut]).is_err(),
                "request variant {vi} decoded from a strict prefix of {cut} bytes"
            );
        }
    }
}

#[test]
fn truncated_responses_are_typed_errors() {
    for (vi, resp) in sample_responses().iter().enumerate() {
        let bytes = resp.encode();
        for cut in 0..bytes.len() {
            assert!(
                Response::decode(&bytes[..cut]).is_err(),
                "response variant {vi} decoded from a strict prefix of {cut} bytes"
            );
        }
    }
}

#[test]
fn duplicated_payloads_are_typed_errors() {
    for (vi, req) in sample_requests().iter().enumerate() {
        let mut doubled = req.encode();
        doubled.extend_from_slice(&doubled.clone());
        assert!(
            Request::decode(&doubled).is_err(),
            "request variant {vi} accepted a duplicated payload"
        );
    }
    for (vi, resp) in sample_responses().iter().enumerate() {
        let mut doubled = resp.encode();
        doubled.extend_from_slice(&doubled.clone());
        assert!(
            Response::decode(&doubled).is_err(),
            "response variant {vi} accepted a duplicated payload"
        );
    }
}

#[test]
fn bit_flipped_payloads_never_panic() {
    // a flipped byte may still decode (e.g. a value byte changed): the
    // contract is typed-error-or-valid-frame, never a panic. The test
    // harness turns any panic into a failure with the (variant, round)
    // key in scope.
    for (vi, req) in sample_requests().iter().enumerate() {
        let bytes = req.encode();
        for round in 0..128u64 {
            let mut m = bytes.clone();
            flip_some(&mut m, 0xF422_0001, &[vi as u64, round]);
            if let Ok(decoded) = Request::decode(&m) {
                // a mutated frame that decodes must re-encode cleanly
                let _ = decoded.encode();
            }
        }
    }
    for (vi, resp) in sample_responses().iter().enumerate() {
        let bytes = resp.encode();
        for round in 0..128u64 {
            let mut m = bytes.clone();
            flip_some(&mut m, 0xF422_0002, &[vi as u64, round]);
            if let Ok(decoded) = Response::decode(&m) {
                let _ = decoded.encode();
            }
        }
    }
}

#[test]
fn mutated_route_tables_are_typed_refusals_never_panics() {
    // A bit-flipped RouteTable frame may still decode — the ranges are
    // plain integers. The next gate, [`ShardMap::from_ranges`], must
    // then either accept a table that still satisfies every invariant
    // (contiguous, covering, unique owners) or refuse with a typed
    // error. Never a panic, and never a map that misroutes silently.
    for round in 0..512u64 {
        let resp = Response::RouteTable {
            version: 4,
            shard: 2,
            ranges: sample_ranges(),
        };
        let mut bytes = resp.encode();
        flip_some(&mut bytes, 0xF422_0005, &[round]);
        if let Ok(Response::RouteTable {
            version, ranges, ..
        }) = Response::decode(&bytes)
        {
            match ShardMap::from_ranges(version, ranges) {
                // a surviving table is total: every object routes somewhere
                Ok(m) => {
                    for object in 0..64u32 {
                        assert!(m.shard_ids().contains(&m.shard_of(object)));
                    }
                }
                // refusals carry the PROTOCOL wire code, so a router
                // treats a corrupt table exactly like any framing error
                Err(e) => assert_eq!(e.wire_code(), code::PROTOCOL, "round {round}"),
            }
        }
    }
}

#[test]
fn mutated_deadline_wrappers_stay_typed_and_never_nest() {
    // The deadline wrapper carries a length-prefixed inner frame. Bit
    // flips in the budget or the inner length must come back as typed
    // errors or valid frames — and no mutation may ever smuggle a
    // nested wrapper (a second, larger budget) past decode.
    let outer = Request::WithDeadline {
        budget_ms: 750,
        inner: Box::new(Request::Ingest(sample_claims())),
    };
    let bytes = outer.encode();
    for round in 0..512u64 {
        let mut m = bytes.clone();
        flip_some(&mut m, 0xF422_0006, &[round]);
        if let Ok(decoded) = Request::decode(&m) {
            if let Request::WithDeadline { inner, .. } = &decoded {
                assert!(
                    !matches!(**inner, Request::WithDeadline { .. }),
                    "round {round}: mutation produced a nested deadline wrapper"
                );
            }
            let _ = decoded.encode();
        }
    }
    // a hand-built nested wrapper is refused outright
    let nested = Request::WithDeadline {
        budget_ms: 1,
        inner: Box::new(Request::WithDeadline {
            budget_ms: u64::MAX,
            inner: Box::new(Request::Weights),
        }),
    };
    assert!(Request::decode(&nested.encode()).is_err());
    // boundary budgets are valid *frames*; refusing a zero budget is the
    // server's job, not the codec's
    for budget_ms in [0, u64::MAX] {
        let req = Request::WithDeadline {
            budget_ms,
            inner: Box::new(Request::Status),
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }
}

#[test]
fn random_garbage_never_panics_the_decoders() {
    for round in 0..256u64 {
        let mut rng = hash_rng(0xF422_0003, &[round]);
        let len = (rng.next_u64() % 200) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = Request::decode(&garbage);
        let _ = Response::decode(&garbage);
    }
}

#[test]
fn corrupted_frame_streams_never_panic() {
    // a stream of every request variant, framed; corrupt it and re-read.
    // Frame corruption must surface as a typed error (CRC, length cap,
    // or short read); any frame that does pass CRC must decode without
    // panicking.
    let mut stream = Vec::new();
    for req in sample_requests() {
        write_frame(&mut stream, &req.encode()).unwrap();
    }
    for round in 0..200u64 {
        let mut m = stream.clone();
        flip_some(&mut m, 0xF422_0004, &[round]);
        let mut cur = m.as_slice();
        while !cur.is_empty() {
            match read_frame(&mut cur) {
                Ok(payload) => {
                    let _ = Request::decode(&payload);
                    let _ = Response::decode(&payload);
                }
                Err(_) => break,
            }
        }
    }
    // truncation at every boundary of the healthy stream
    for cut in 0..stream.len() {
        let mut cur = &stream[..cut];
        while !cur.is_empty() {
            match read_frame(&mut cur) {
                Ok(payload) => {
                    let _ = Request::decode(&payload);
                }
                Err(_) => break,
            }
        }
    }
}
