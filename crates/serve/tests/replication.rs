//! Partition chaos suite for the replication layer, plus an end-to-end
//! TCP failover test.
//!
//! The contract under test, per ISSUE acceptance criteria:
//!
//! - **No quorum-acked chunk is ever lost.** A client that saw its chunk
//!   reach the commit quorum finds it folded on every replica after the
//!   cluster heals, across seeded link drops, lost replies, duplicated
//!   frames, full and one-way partitions, and primary kills.
//! - **Post-heal states match a never-partitioned run.** After healing,
//!   every replica's folded-state digest equals the digest of a fresh,
//!   fault-free cluster fed exactly the chunks that survived, in order.
//!
//! Every chunk carries a unique marker cell (`object = 100 + i`), so the
//! surviving subset is observable through the truth cache — the suite
//! never has to guess which timed-out chunk made it onto the winning
//! log.

use std::path::PathBuf;
use std::time::Duration;

use crh_core::schema::Schema;
use crh_core::value::Value;
use crh_serve::{
    ChunkClaim, ClusterClient, HaConfig, HaServer, NetFaultPlan, PartitionWindow, ReplicaConfig,
    RetryPolicy, Role, ServeConfig, ServerConfig, SimCluster,
};

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    s.add_continuous("humidity");
    s
}

fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("crh_repl_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Chunk `i` of the workload: a unique marker cell (`object = 100 + i`)
/// plus a few shared-cell claims so the source weights actually move.
fn chunk(seed: u64, i: usize) -> Vec<ChunkClaim> {
    let mut claims = vec![ChunkClaim {
        object: 100 + i as u32,
        property: 0,
        source: (i % 4) as u32,
        value: Value::Num(1000.0 + seed as f64 * 31.0 + i as f64),
    }];
    for s in 0..3u32 {
        claims.push(ChunkClaim {
            object: (i % 5) as u32,
            property: s % 2,
            source: s,
            value: Value::Num(20.0 + i as f64 + f64::from(s) * 0.75 + seed as f64 * 0.1),
        });
    }
    claims
}

fn marker_present(c: &SimCluster, node: usize, i: usize) -> bool {
    c.node(node)
        .map(|n| n.core().truth(100 + i as u32, 0).is_some())
        .unwrap_or(false)
}

/// One seeded chaotic lifetime: random link faults throughout, a full
/// partition isolating the likely first primary, a one-way partition (the
/// asymmetric failure), and a seed-chosen kill — all scheduled up front
/// so the run is a pure function of the seed.
fn chaos_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan::new(seed)
        .drops(0.04)
        .dropped_replies(0.03)
        .dups(0.04)
        .partition(PartitionWindow {
            from_step: 30,
            to_step: 55,
            side_a: 0b001, // node 0 (the likely first primary) cut off
            one_way: false,
        })
        .partition(PartitionWindow {
            from_step: 70,
            to_step: 95,
            // vary which node suffers the one-way link by seed
            side_a: 1 << (seed % 3),
            one_way: true,
        })
        .kill(110, (seed % 3) as u32)
        .restart_after(25)
}

const CHUNKS: usize = 8;

#[test]
fn partition_chaos_loses_no_acked_chunk_and_matches_a_clean_run() {
    for seed in 0..10u64 {
        let base = test_dir(&format!("chaos{seed}"));
        let b = base.clone();
        let mut c = SimCluster::new(
            3,
            move |id| ServeConfig::new(schema(), 0.5, b.join(format!("node{id}"))),
            chaos_plan(seed),
        )
        .unwrap();

        // Serial at-most-once driver: submit each chunk once, poll for
        // the quorum ack, and record whether it arrived. A timed-out
        // chunk is never resubmitted, so its fate stays observable via
        // its marker cell.
        let mut acked = Vec::new();
        for i in 0..CHUNKS {
            let payload = chunk(seed, i);
            let mut seq = None;
            for _ in 0..400 {
                match c.client_ingest(&payload) {
                    Ok((_, s)) => {
                        seq = Some(s);
                        break;
                    }
                    // no reachable primary right now: nothing was staged
                    Err(_) => c.step().unwrap(),
                }
            }
            let Some(s) = seq else {
                continue;
            };
            for _ in 0..40 {
                c.step().unwrap();
                if c.is_committed(s) {
                    acked.push(i);
                    break;
                }
            }
        }

        // Heal: run past every partition window, kill, and restart, then
        // let the cluster settle to a drained, digest-equal state.
        while c.now() < 150 {
            c.step().unwrap();
        }
        let digest = c.settle(5, 5000).unwrap();
        for n in 0..c.len() {
            assert_eq!(
                c.node(n).unwrap().state_digest(),
                digest,
                "seed {seed}: node {n} diverged post-heal"
            );
        }

        // (a) no quorum-acked chunk lost, on any replica
        let survivors: Vec<usize> = (0..CHUNKS).filter(|&i| marker_present(&c, 0, i)).collect();
        for &i in &acked {
            for n in 0..c.len() {
                assert!(
                    marker_present(&c, n, i),
                    "seed {seed}: quorum-acked chunk {i} missing on node {n} \
                     (acked {acked:?}, survivors {survivors:?})"
                );
            }
        }

        // (b) post-heal state is byte-identical to a never-partitioned
        // cluster fed exactly the surviving chunks in order
        let ref_base = test_dir(&format!("chaosref{seed}"));
        let rb = ref_base.clone();
        let mut reference = SimCluster::new(
            3,
            move |id| ServeConfig::new(schema(), 0.5, rb.join(format!("node{id}"))),
            NetFaultPlan::new(seed ^ 0x5A5A),
        )
        .unwrap();
        for _ in 0..12 {
            reference.step().unwrap();
        }
        for &i in &survivors {
            let (_, s) = reference.client_ingest(&chunk(seed, i)).unwrap();
            for _ in 0..64 {
                reference.step().unwrap();
                if reference.is_committed(s) {
                    break;
                }
            }
            assert!(reference.is_committed(s), "seed {seed}: clean run stalled");
        }
        let ref_digest = reference.settle(1, 200).unwrap();
        assert_eq!(
            digest, ref_digest,
            "seed {seed}: post-heal state differs from the never-partitioned run \
             (acked {acked:?}, survivors {survivors:?})"
        );

        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&ref_base).ok();
    }
}

// ---------------------------------------------------------------------
// End-to-end TCP failover
// ---------------------------------------------------------------------

fn wait_for_primary(servers: &[Option<HaServer>]) -> Option<usize> {
    for _ in 0..500 {
        for (i, s) in servers.iter().enumerate() {
            if let Some(s) = s {
                if s.role() == Role::Primary {
                    return Some(i);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    None
}

#[test]
fn tcp_cluster_fails_over_and_the_client_follows() {
    let base = test_dir("tcp_ha");

    // reserve three distinct loopback ports (held simultaneously so the
    // OS cannot hand the same one out twice), then release them for the
    // daemons to bind
    let reserved: Vec<std::net::TcpListener> = (0..3)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<String> = reserved
        .iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
        .collect();
    drop(reserved);

    let all: Vec<u32> = vec![0, 1, 2];
    let mut servers: Vec<Option<HaServer>> = (0..3usize)
        .map(|id| {
            let rc = ReplicaConfig::new(id as u32, &all);
            let ha = HaConfig {
                server: ServerConfig {
                    io_timeout: Duration::from_millis(500),
                    ..ServerConfig::default()
                },
                tick: Duration::from_millis(10),
                peer_addrs: addrs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != id)
                    .map(|(j, a)| (j as u32, a.clone()))
                    .collect(),
                commit_wait: Duration::from_secs(5),
                shard: None,
            };
            let serve = ServeConfig::new(schema(), 0.5, base.join(format!("n{id}")));
            Some(HaServer::start(rc, serve, ha, &addrs[id]).unwrap())
        })
        .collect();

    let p0 = wait_for_primary(&servers).expect("initial election over TCP");

    let mut client = ClusterClient::new(
        addrs
            .iter()
            .enumerate()
            .map(|(i, a)| (i as u32, a.clone()))
            .collect(),
        Duration::from_secs(6),
        RetryPolicy {
            max_attempts: 30,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(200),
            seed: 42,
        },
    );

    // a quorum-acked write through whichever member the client hit first
    let (seq, committed) = client.ingest(chunk(99, 0)).unwrap();
    assert_eq!(seq, 0);
    assert!(committed >= 1);

    // kill the primary outright (no snapshot, no goodbye)
    drop(servers[p0].take());

    // the client keeps writing: transparent retry rides out the election
    let (seq2, _) = client.ingest(chunk(99, 1)).unwrap();
    assert_eq!(seq2, 1, "the committed chunk survived the failover");
    let p1 = wait_for_primary(&servers).expect("a survivor takes over");
    assert_ne!(p1, p0);
    assert!(servers[p1].as_ref().unwrap().epoch() > 0);

    // reads answer from any member, with an honest staleness bound
    let (weights, lag) = client.weights().unwrap();
    assert!(!weights.is_empty());
    assert!(
        lag <= 2,
        "staleness bound should be small on a healthy pair"
    );

    // both survivors converge on the same folded state
    for _ in 0..300 {
        let done = servers.iter().flatten().all(|s| {
            s.commit() >= 2 && s.state_digest() == servers[p1].as_ref().unwrap().state_digest()
        });
        if done {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let digest = servers[p1].as_ref().unwrap().state_digest();
    for (i, s) in servers.iter().enumerate() {
        if let Some(s) = s {
            assert!(s.commit() >= 2, "node {i} never learned the commit");
            assert_eq!(s.state_digest(), digest, "node {i} diverged");
        }
    }

    for s in servers.into_iter().flatten() {
        s.shutdown();
    }
    std::fs::remove_dir_all(&base).ok();
}
