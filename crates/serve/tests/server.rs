//! End-to-end tests of the TCP daemon: normal operation, overload
//! shedding, stalled clients, quarantine over the wire, and protocol
//! garbage. Everything runs on a loopback listener bound to port 0.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crh_core::schema::Schema;
use crh_core::value::{Truth, Value};
use crh_serve::{
    ChunkClaim, Client, ServeConfig, ServeCore, ServeError, ServeFaultInjector, ServeFaultPlan,
    Server, ServerConfig,
};
use std::path::PathBuf;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    let p = s.add_categorical("condition");
    s.intern(p, "sunny").unwrap();
    s.intern(p, "rainy").unwrap();
    s
}

fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("crh_srv_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn start_server(dir: &PathBuf, server_cfg: ServerConfig) -> Server {
    start_server_with(dir, server_cfg, ServeFaultInjector::disabled())
}

fn start_server_with(
    dir: &PathBuf,
    server_cfg: ServerConfig,
    injector: ServeFaultInjector,
) -> Server {
    let cfg = ServeConfig::new(schema(), 0.6, dir)
        .snapshot_every(4)
        .injector(injector);
    let (core, _) = ServeCore::open(cfg).unwrap();
    Server::start(core, server_cfg, "127.0.0.1:0").unwrap()
}

fn chunk(step: u32) -> Vec<ChunkClaim> {
    vec![
        ChunkClaim::num(0, 0, 0, 20.0 + step as f64),
        ChunkClaim::num(0, 0, 1, 20.4 + step as f64),
        ChunkClaim {
            object: 1,
            property: 1,
            source: 0,
            value: Value::Cat(step % 2),
        },
    ]
}

#[test]
fn full_session_over_the_wire() {
    let dir = test_dir("session");
    let server = start_server(&dir, ServerConfig::default());
    let mut client = Client::connect(server.addr(), Duration::from_secs(5)).unwrap();

    // binary ingest
    let (seq, seen) = client.ingest(chunk(0)).unwrap();
    assert_eq!((seq, seen), (0, 1));
    // CSV ingest resolves property names and categorical labels
    let (seq, seen) = client
        .ingest_csv("0,temperature,0,21.5\n0,temperature,1,21.0\n1,condition,0,rainy\n")
        .unwrap();
    assert_eq!((seq, seen), (1, 2));

    let weights = client.weights().unwrap();
    assert_eq!(weights.len(), 2);
    assert!(weights.iter().all(|w| w.is_finite()));

    match client.truth(1, 1).unwrap() {
        Some(Truth::Point(Value::Cat(_)) | Truth::Distribution { .. }) => {}
        other => panic!("expected a categorical truth, got {other:?}"),
    }
    assert_eq!(client.truth(42, 0).unwrap(), None);

    let status = client.status().unwrap();
    assert_eq!(status.chunks_seen, 2);
    assert!(status.quarantined.is_empty());

    // remote batch solve, seeded from the daemon's weights
    let solved = client.solve(1e-6, 50, chunk(3)).unwrap();
    assert!(solved.objective.is_finite());
    assert!(solved.iterations >= 1);

    // clean shutdown snapshots; a fresh open recovers everything
    let final_seen = client.shutdown().unwrap();
    assert_eq!(final_seen, 2);
    server.shutdown();
    let (core, report) = ServeCore::open(ServeConfig::new(schema(), 0.6, &dir)).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(core.chunks_seen(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_is_typed_prompt_and_deadlock_free() {
    let dir = test_dir("overload");
    // every fold stalls 300 ms; one slot in the queue; clients wait at
    // most 150 ms for their fold
    let injector = ServeFaultInjector::new(
        ServeFaultPlan::new(1)
            .stalls(1.0, Duration::from_millis(300))
            .max_faults(u64::MAX),
    );
    let server_cfg = ServerConfig {
        queue_capacity: 1,
        ingest_deadline: Duration::from_millis(150),
        io_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = start_server_with(&dir, server_cfg, injector);
    let addr = server.addr();

    let workers: Vec<_> = (0..6u32)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(5)).unwrap();
                let started = Instant::now();
                let result = c.ingest(chunk(i));
                (result, started.elapsed())
            })
        })
        .collect();

    let mut accepted = 0;
    let mut overloaded = 0;
    let mut deadlined = 0;
    for w in workers {
        let (result, elapsed) = w.join().unwrap();
        match result {
            Ok(_) => accepted += 1,
            Err(ServeError::Overloaded { .. }) => {
                overloaded += 1;
                // shed immediately, not after the fold deadline
                assert!(
                    elapsed < Duration::from_millis(150),
                    "overload reply took {elapsed:?}"
                );
            }
            Err(ServeError::DeadlineExceeded) => {
                deadlined += 1;
                assert!(
                    elapsed < Duration::from_secs(2),
                    "deadline reply took {elapsed:?}"
                );
            }
            Err(e) => panic!("unexpected error under overload: {e}"),
        }
    }
    assert_eq!(accepted + overloaded + deadlined, 6);
    assert!(
        overloaded > 0,
        "a 1-slot queue under 6 concurrent pushes must shed load"
    );

    // no deadlock: the daemon still answers queries while folds drain,
    // and every enqueued chunk eventually folded exactly once
    let mut c = Client::connect(addr, Duration::from_secs(5)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = c.status().unwrap();
        if status.queue_depth == 0 && status.chunks_seen as usize == 6 - overloaded {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never drained: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stalled_client_is_dropped_without_blocking_others() {
    let dir = test_dir("stalled");
    let server_cfg = ServerConfig {
        io_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = start_server(&dir, server_cfg);

    // a peer that opens a connection, sends half a frame header, and stalls
    let mut stalled = TcpStream::connect(server.addr()).unwrap();
    stalled.write_all(&[0x10, 0x00]).unwrap();

    // healthy clients keep getting answers while the peer is stalling
    let mut healthy = Client::connect(server.addr(), Duration::from_secs(5)).unwrap();
    healthy.ingest(chunk(0)).unwrap();
    assert_eq!(healthy.status().unwrap().chunks_seen, 1);

    // the daemon drops the stalled peer after io_timeout: our next read
    // sees EOF (or a reset) rather than hanging forever
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 1];
    let dropped = match stalled.read(&mut buf) {
        Ok(0) => true,  // clean EOF
        Ok(_) => false, // daemon answered a half frame?!
        Err(_) => true, // reset/timeout — connection is dead
    };
    assert!(dropped, "stalled connection was never dropped");

    // and the daemon is still fully alive afterwards
    healthy.ingest(chunk(1)).unwrap();
    assert_eq!(healthy.status().unwrap().chunks_seen, 2);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_feed_is_quarantined_and_heals_over_the_wire() {
    let dir = test_dir("quarantine");
    let server = start_server(&dir, ServerConfig::default());
    let mut client = Client::connect(server.addr(), Duration::from_secs(5)).unwrap();

    // NaN observations from source 7 cannot pass the client-side typed
    // constructor accidentally — build them explicitly
    let bad = vec![ChunkClaim::num(0, 0, 7, f64::NAN)];
    for _ in 0..3 {
        let err = client.ingest(bad.clone()).unwrap_err();
        assert!(
            matches!(err, ServeError::Remote { code, .. } if code == crh_serve::error::code::INVALID_CHUNK),
            "{err}"
        );
    }
    // breaker tripped: even a now-valid chunk from source 7 is rejected
    let err = client
        .ingest(vec![ChunkClaim::num(0, 0, 7, 20.0)])
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Remote { code, .. } if code == crh_serve::error::code::QUARANTINED),
        "{err}"
    );
    let status = client.status().unwrap();
    assert_eq!(status.quarantined, vec![7]);
    assert_eq!(status.chunks_seen, 0, "bad feed must never touch the model");

    // other sources keep the tick clock moving; after the cool-down the
    // probe chunk heals the source
    for i in 0..20u32 {
        client.ingest(chunk(i)).unwrap();
    }
    client.ingest(vec![ChunkClaim::num(0, 0, 7, 20.0)]).unwrap();
    let status = client.status().unwrap();
    assert!(status.quarantined.is_empty(), "source 7 should have healed");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_garbage_drops_the_peer_not_the_daemon() {
    let dir = test_dir("garbage");
    let server = start_server(&dir, ServerConfig::default());

    // a frame whose CRC doesn't match its payload
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    let payload = b"not a real request";
    sock.write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    sock.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
    sock.write_all(payload).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    // the daemon just drops us (EOF/reset), it does not crash
    assert!(!matches!(sock.read(&mut buf), Ok(n) if n > 0));

    // a well-framed payload that decodes to an unknown tag gets a typed
    // protocol error back instead of a dropped connection
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    let junk = [200u8, 1, 2, 3];
    sock.write_all(&(junk.len() as u32).to_le_bytes()).unwrap();
    sock.write_all(&crh_core::persist::crc32(&junk).to_le_bytes())
        .unwrap();
    sock.write_all(&junk).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut header = [0u8; 8];
    sock.read_exact(&mut header).unwrap();
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let mut resp = vec![0u8; len];
    sock.read_exact(&mut resp).unwrap();
    let resp = crh_serve::proto::Response::decode(&resp).unwrap();
    assert!(
        matches!(
            resp,
            crh_serve::proto::Response::Error { code, .. }
                if code == crh_serve::error::code::PROTOCOL
        ),
        "{resp:?}"
    );

    // daemon still healthy
    let mut client = Client::connect(server.addr(), Duration::from_secs(5)).unwrap();
    client.ingest(chunk(0)).unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn connection_cap_refuses_with_typed_overload() {
    let dir = test_dir("conncap");
    let server_cfg = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let server = start_server(&dir, server_cfg);
    let mut first = Client::connect(server.addr(), Duration::from_secs(5)).unwrap();
    first.status().unwrap(); // the slot is definitely taken

    let mut second = Client::connect(server.addr(), Duration::from_secs(5)).unwrap();
    let err = second.status().unwrap_err();
    assert!(matches!(err, ServeError::Overloaded { .. }), "{err}");

    drop(first);
    // the slot frees once the daemon notices the disconnect
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = Client::connect(server.addr(), Duration::from_secs(5)).unwrap();
        match retry.status() {
            Ok(_) => break,
            Err(ServeError::Overloaded { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("{e}"),
        }
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
