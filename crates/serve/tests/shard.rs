//! End-to-end TCP sharding: a 2-shard × 3-replica topology behind a
//! [`ShardRouter`], the degraded-read contract over real sockets, typed
//! refusals for misdelivered and stale shard frames, the redirect-cycle
//! bound, and a live split driven entirely by `SplitStage`/`SplitCutover`
//! wire frames.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use crh_core::schema::Schema;
use crh_core::value::Value;
use crh_serve::error::code;
use crh_serve::proto::{read_frame, write_frame, Request, Response};
use crh_serve::{
    entry_point, ChunkClaim, ClusterClient, HaConfig, HaServer, ReplicaConfig, RetryPolicy, Role,
    ServeConfig, ServeError, ServerConfig, ShardGroup, ShardMap, ShardRouter,
};

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    s.add_continuous("humidity");
    s
}

fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("crh_shtcp_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Reserve `n` distinct loopback ports (held simultaneously so the OS
/// cannot hand one out twice), then release them for daemons to bind.
fn reserve_ports(n: usize) -> Vec<String> {
    let held: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    held.iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
        .collect()
}

fn single_object_chunk(object: u32, base: f64) -> Vec<ChunkClaim> {
    (0..3u32)
        .map(|s| ChunkClaim {
            object,
            property: 0,
            source: s,
            value: Value::Num(base + f64::from(s) * 0.25),
        })
        .collect()
}

/// Start one 3-member shard group, all members carrying the same shard
/// identity and bootstrap map.
fn start_group(
    base: &std::path::Path,
    shard: u32,
    bootstrap: &ShardMap,
    addrs: &[String],
) -> Vec<HaServer> {
    (0..addrs.len())
        .map(|id| {
            let rc = ReplicaConfig::new(id as u32, &(0..addrs.len() as u32).collect::<Vec<_>>());
            let ha = HaConfig {
                server: ServerConfig {
                    io_timeout: Duration::from_millis(500),
                    ..ServerConfig::default()
                },
                tick: Duration::from_millis(10),
                peer_addrs: addrs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != id)
                    .map(|(j, a)| (j as u32, a.clone()))
                    .collect(),
                commit_wait: Duration::from_secs(5),
                shard: Some((shard, bootstrap.clone())),
            };
            let serve = ServeConfig::new(schema(), 0.5, base.join(format!("s{shard}_n{id}")));
            HaServer::start(rc, serve, ha, &addrs[id]).unwrap()
        })
        .collect()
}

fn wait_for_primary(servers: &[HaServer]) -> usize {
    for _ in 0..500 {
        if let Some(i) = servers.iter().position(|s| s.role() == Role::Primary) {
            return i;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("no primary elected");
}

fn raw_call(addr: &str, req: &Request) -> Response {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(&mut s, &req.encode()).unwrap();
    let payload = read_frame(&mut s).unwrap();
    Response::decode(&payload).unwrap()
}

/// Unwrap a possibly follower-wrapped error code.
fn error_code(resp: Response) -> u8 {
    match resp {
        Response::Error { code, .. } => code,
        Response::FollowerRead { inner, .. } => error_code(Response::decode(&inner).unwrap()),
        other => panic!("expected an error response, got {other:?}"),
    }
}

/// An object owned by `shard` under `map` (smallest id, so runs are
/// deterministic).
fn object_in(map: &ShardMap, shard: u32) -> u32 {
    (0..u32::MAX)
        .find(|&o| map.shard_of(o) == shard)
        .expect("every shard owns some object")
}

#[test]
fn sharded_tcp_topology_routes_reads_writes_and_degrades() {
    let base = test_dir("topo");
    let map = ShardMap::uniform(2).unwrap();
    let addrs0 = reserve_ports(3);
    let addrs1 = reserve_ports(3);
    let group0 = start_group(&base, 0, &map, &addrs0);
    let group1 = start_group(&base, 1, &map, &addrs1);
    wait_for_primary(&group0);
    wait_for_primary(&group1);

    let members = |addrs: &[String]| -> Vec<(u32, String)> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, a)| (i as u32, a.clone()))
            .collect()
    };
    // connect() learns the map over the wire (RouteTable frames)
    let mut router = ShardRouter::connect(
        vec![
            ShardGroup {
                shard: 0,
                members: members(&addrs0),
            },
            ShardGroup {
                shard: 1,
                members: members(&addrs1),
            },
        ],
        Duration::from_secs(5),
        RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(200),
            seed: 7,
        },
    )
    .unwrap();
    assert_eq!(router.map().version, 0);
    assert_eq!(router.map().num_shards(), 2);

    // a mixed chunk fans out to both shards and both acks come back
    let obj0 = object_in(router.map(), 0);
    let obj1 = object_in(router.map(), 1);
    let mut claims = single_object_chunk(obj0, 10.0);
    claims.extend(single_object_chunk(obj1, 50.0));
    let acks = router.ingest(claims).unwrap();
    assert_eq!(acks.len(), 2, "one sub-chunk ack per shard");

    // strict single-shard reads route to the owners
    let (t0, _) = router.truth(obj0, 0).unwrap();
    let (t1, _) = router.truth(obj1, 0).unwrap();
    assert!(t0.is_some(), "shard 0 truth");
    assert!(t1.is_some(), "shard 1 truth");

    // scatter-gather sees every group
    let status = router.scatter_status();
    assert!(!status.is_degraded());
    assert_eq!(status.value.len(), 2);

    // --- typed refusals over raw frames -------------------------------
    // misdelivery: a shard-1 frame landing on a shard-0 member
    let resp = raw_call(
        &addrs0[0],
        &Request::ShardIngest {
            shard: 1,
            map_version: 0,
            claims: single_object_chunk(obj1, 60.0),
        },
    );
    assert_eq!(error_code(resp), code::WRONG_SHARD);
    // stale route table: wrong map version
    let resp = raw_call(
        &addrs0[0],
        &Request::ShardTruth {
            shard: 0,
            map_version: 99,
            object: obj0,
            property: 0,
        },
    );
    assert_eq!(error_code(resp), code::STALE_SHARD_MAP);
    // right shard id, but a claim the map routes elsewhere
    let resp = raw_call(
        &addrs0[0],
        &Request::ShardIngest {
            shard: 0,
            map_version: 0,
            claims: single_object_chunk(obj1, 60.0),
        },
    );
    assert_eq!(error_code(resp), code::WRONG_SHARD);
    // a split-stage with a foreign cluster key is refused
    let resp = raw_call(
        &addrs0[0],
        &Request::SplitStage {
            token: 0xBAD,
            shard: 0,
            snapshot: None,
            records: Vec::new(),
        },
    );
    assert_eq!(error_code(resp), code::PROTOCOL);

    // --- the degraded-read contract with one shard's quorum dead ------
    for s in group1 {
        drop(s); // kill -9 the whole group: no goodbye, no snapshot
    }
    // an already-open connection may serve one last in-flight request
    // before its thread notices the shutdown; the kill settles within
    // one io-timeout
    let mut status = router.scatter_status();
    for _ in 0..20 {
        if status.is_degraded() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
        status = router.scatter_status();
    }
    assert_eq!(status.missing_shards, vec![1]);
    assert_eq!(status.value.len(), 1, "shard 0 still answers");
    match router.truth(obj1, 0) {
        Err(ServeError::Degraded { missing_shards }) => assert_eq!(missing_shards, vec![1]),
        other => panic!("expected Degraded, got {other:?}"),
    }
    // the surviving shard serves reads and writes throughout
    let (t0, _) = router.truth(obj0, 0).unwrap();
    assert!(t0.is_some());
    router.ingest(single_object_chunk(obj0, 11.0)).unwrap();

    for s in group0 {
        s.shutdown();
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn shard_frames_to_unsharded_members_are_typed_refusals() {
    let base = test_dir("unsharded");
    let addrs = reserve_ports(3);
    let map = ShardMap::uniform(1).unwrap();
    // an unsharded HA cluster (shard: None)
    let servers: Vec<HaServer> = (0..3usize)
        .map(|id| {
            let rc = ReplicaConfig::new(id as u32, &[0, 1, 2]);
            let ha = HaConfig {
                tick: Duration::from_millis(10),
                peer_addrs: addrs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != id)
                    .map(|(j, a)| (j as u32, a.clone()))
                    .collect(),
                ..HaConfig::default()
            };
            let serve = ServeConfig::new(schema(), 0.5, base.join(format!("n{id}")));
            HaServer::start(rc, serve, ha, &addrs[id]).unwrap()
        })
        .collect();
    wait_for_primary(&servers);
    let resp = raw_call(&addrs[0], &Request::RouteTable);
    assert_eq!(error_code(resp), code::PROTOCOL);
    let resp = raw_call(
        &addrs[0],
        &Request::SplitCutover {
            token: 0,
            version: 1,
            ranges: map.ranges().to_vec(),
        },
    );
    assert_eq!(error_code(resp), code::PROTOCOL);
    for s in servers {
        s.shutdown();
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Satellite: two members that each claim the *other* is primary must
/// terminate in a typed `RetriesExhausted` carrying the attempt log —
/// the redirect-follower is cycle-bounded, it never spins.
#[test]
fn redirect_cycle_terminates_with_the_attempt_log() {
    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
        .collect();
    // node i always answers NotPrimary{hint: the other node}
    for (i, l) in listeners.into_iter().enumerate() {
        let hint = 1 - i as u32;
        std::thread::spawn(move || {
            for stream in l.incoming() {
                let Ok(mut stream) = stream else { continue };
                std::thread::spawn(move || {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(2)))
                        .unwrap();
                    while let Ok(_payload) = read_frame(&mut stream) {
                        let resp =
                            Response::from_error(&ServeError::NotPrimary { hint: Some(hint) });
                        if write_frame(&mut stream, &resp.encode()).is_err() {
                            return;
                        }
                        stream.flush().ok();
                    }
                });
            }
        });
    }

    let mut client = ClusterClient::new(
        addrs
            .iter()
            .enumerate()
            .map(|(i, a)| (i as u32, a.clone()))
            .collect(),
        Duration::from_secs(2),
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            seed: 9,
        },
    );
    let started = std::time::Instant::now();
    match client.ingest(single_object_chunk(1, 1.0)) {
        Err(ServeError::RetriesExhausted { attempts, log }) => {
            assert_eq!(attempts, 6);
            assert_eq!(log.len(), 6, "one log line per attempt");
            assert!(
                log.iter().all(|l| l.contains("not the primary")),
                "every attempt was a redirect: {log:?}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the redirect cycle must terminate promptly"
    );
}

/// A live split driven entirely over the wire: catch-up fetch from the
/// donor primary, `SplitStage` onto a virgin single-member group,
/// `SplitCutover` to every member, then routed reads through a
/// refreshed router.
#[test]
fn tcp_split_stages_cuts_over_and_reroutes() {
    let base = test_dir("tcp_split");
    let v0 = ShardMap::uniform(1).unwrap();
    let donor_addrs = reserve_ports(3);
    let new_addrs = reserve_ports(1);
    let donor = start_group(&base, 0, &v0, &donor_addrs);
    wait_for_primary(&donor);
    // the new shard's group: one virgin member, same bootstrap map
    let fresh = start_group(&base, 1, &v0, &new_addrs);

    // ingest a few cells, all owned by shard 0 (there is only shard 0)
    let mut client = ClusterClient::new(
        donor_addrs
            .iter()
            .enumerate()
            .map(|(i, a)| (i as u32, a.clone()))
            .collect(),
        Duration::from_secs(5),
        RetryPolicy::default(),
    );
    for i in 0..6u32 {
        client
            .ingest(single_object_chunk(100 + i, 5.0 + f64::from(i)))
            .unwrap();
    }
    // quiesce: every record quorum-committed on the donor
    for _ in 0..500 {
        if donor.iter().all(|s| s.commit() >= 6) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(donor.iter().all(|s| s.commit() >= 6));

    // fetch the committed state from the donor primary over the wire
    let p = wait_for_primary(&donor);
    let resp = raw_call(
        &donor_addrs[p],
        &Request::CatchUp {
            token: 0,
            epoch: donor[p].epoch(),
            from: 0,
        },
    );
    let Response::CatchUpRecords {
        commit,
        snapshot,
        records,
        ..
    } = resp
    else {
        panic!("expected CatchUpRecords, got {resp:?}");
    };
    assert_eq!(commit, 6);

    // the moved range: everything hashing at or above the smallest
    // ingested marker's point goes to shard 1
    let moved = (100..106u32)
        .max_by_key(|&o| entry_point(o))
        .expect("markers exist");
    let at = entry_point(moved);
    let v1 = v0.split(0, 1, at).unwrap();

    // stage the virgin member, then cut over every member of both groups
    let resp = raw_call(
        &new_addrs[0],
        &Request::SplitStage {
            token: 0,
            shard: 1,
            snapshot,
            records,
        },
    );
    assert!(
        matches!(resp, Response::Ack { chunks_seen, .. } if chunks_seen == 6),
        "staging acks the seeded head: {resp:?}"
    );
    for addr in donor_addrs.iter().chain(new_addrs.iter()) {
        let resp = raw_call(
            addr,
            &Request::SplitCutover {
                token: 0,
                version: v1.version,
                ranges: v1.ranges().to_vec(),
            },
        );
        assert!(matches!(resp, Response::Ack { .. }), "cutover: {resp:?}");
        // the cutover is idempotent: a duplicated frame re-acks
        let resp = raw_call(
            addr,
            &Request::SplitCutover {
                token: 0,
                version: v1.version,
                ranges: v1.ranges().to_vec(),
            },
        );
        assert!(
            matches!(resp, Response::Ack { .. }),
            "dup cutover: {resp:?}"
        );
    }

    // a router refreshed over the wire routes the moved entry to the
    // new shard and reads the value staged there
    let mut router = ShardRouter::connect(
        vec![
            ShardGroup {
                shard: 0,
                members: donor_addrs
                    .iter()
                    .enumerate()
                    .map(|(i, a)| (i as u32, a.clone()))
                    .collect(),
            },
            ShardGroup {
                shard: 1,
                members: vec![(0, new_addrs[0].clone())],
            },
        ],
        Duration::from_secs(5),
        RetryPolicy::default(),
    )
    .unwrap();
    assert_eq!(router.map().version, 1);
    assert_eq!(router.map().shard_of(moved), 1);
    let (t, _) = router.truth(moved, 0).unwrap();
    assert!(t.is_some(), "the moved truth is served by the new shard");
    // and the new shard accepts writes for its range
    let acks = router.ingest(single_object_chunk(moved, 99.0)).unwrap();
    assert_eq!(acks.len(), 1);
    assert_eq!(acks[0].shard, 1);

    for s in donor.into_iter().chain(fresh) {
        s.shutdown();
    }
    std::fs::remove_dir_all(&base).ok();
}
