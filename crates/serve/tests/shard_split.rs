//! Split/rebalance crash-recovery matrix.
//!
//! The cutover contract under test: a shard split stages the moved
//! entry range (snapshot + committed WAL catch-up) onto the new group's
//! member directories *before* writing one durable cutover record, so a
//! crash at **any** stage boundary recovers to exactly the pre- or
//! post-cutover topology — never a hybrid — with every routed read
//! answering the same truths as before the attempt:
//!
//! - `PreStage` / `MidCatchUp` (before the record): recovery adopts the
//!   old map; partially-staged directories are dead weight the next
//!   attempt wipes and re-stages.
//! - `PostCutoverRecord` / `PreAck` (after the record): recovery adopts
//!   the new map; the staged directories are complete *by ordering*.
//!
//! Plus: a split that loses the donor's whole quorum mid-catch-up keeps
//! the donor group's chaos live, waits out the restart and re-election,
//! and still completes with the data intact.

use std::path::PathBuf;

use crh_core::schema::Schema;
use crh_core::value::Value;
use crh_serve::{
    entry_point, ChunkClaim, ServeConfig, ShardFaultPlan, ShardedSim, SplitCrash, SplitOutcome,
    SplitSpec,
};

const REPLICAS: usize = 3;
const CHUNKS: usize = 8;
const NEW_SHARD: u32 = 2;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    s.add_continuous("humidity");
    s
}

fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("crh_split_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Single-object chunk `i` (marker object `100 + i`), so each chunk
/// routes to exactly one shard.
fn chunk(i: usize) -> Vec<ChunkClaim> {
    let object = 100 + i as u32;
    (0..3u32)
        .map(|s| ChunkClaim {
            object,
            property: s % 2,
            source: s,
            value: Value::Num(40.0 + i as f64 * 3.0 + f64::from(s) * 0.5),
        })
        .collect()
}

fn open_sim(base: &std::path::Path, plan: ShardFaultPlan) -> ShardedSim {
    let b = base.to_path_buf();
    ShardedSim::open(
        2,
        REPLICAS,
        base.join("shard.map"),
        move |shard, node| ServeConfig::new(schema(), 0.5, b.join(format!("s{shard}_n{node}"))),
        plan,
    )
    .unwrap()
}

/// Ingest the workload, wait out every commit, settle, and return the
/// routed truth of every marker cell — the table recovery must preserve.
fn fill_and_snapshot_truths(sim: &mut ShardedSim) -> Vec<(u32, String)> {
    for i in 0..CHUNKS {
        let payload = chunk(i);
        let shard = sim.shard_of(payload[0].object);
        let mut seq = None;
        for _ in 0..400 {
            match sim.ingest_shard(shard, &payload) {
                Ok((_, s)) => {
                    seq = Some(s);
                    break;
                }
                Err(_) => sim.step().unwrap(),
            }
        }
        let s = seq.expect("fault-free ingest must land");
        for _ in 0..64 {
            sim.step().unwrap();
            if sim.is_committed(shard, s) {
                break;
            }
        }
        assert!(sim.is_committed(shard, s), "fault-free commit stalled");
    }
    sim.settle_all(5, 2000).unwrap();
    truth_table(sim)
}

fn truth_table(sim: &ShardedSim) -> Vec<(u32, String)> {
    (0..CHUNKS)
        .map(|i| {
            let object = 100 + i as u32;
            let (t, _) = sim.truth(object, 0).unwrap();
            (object, format!("{t:?}"))
        })
        .collect()
}

/// The split point: the hash of one shard-0 marker, so that marker
/// provably changes owners at cutover (`at` is inclusive on the moved
/// side). Picks the marker with the largest hash inside shard 0's
/// range, which keeps `at` strictly above the range start.
fn split_at(sim: &ShardedSim) -> (u64, u32) {
    let moved = (0..CHUNKS)
        .map(|i| 100 + i as u32)
        .filter(|&o| sim.shard_of(o) == 0)
        .max_by_key(|&o| entry_point(o))
        .expect("some marker lands on shard 0");
    (entry_point(moved), moved)
}

#[test]
fn crash_at_every_stage_recovers_to_exactly_pre_or_post_cutover() {
    let matrix = [
        (SplitCrash::PreStage, false),
        (SplitCrash::MidCatchUp, false),
        (SplitCrash::PostCutoverRecord, true),
        (SplitCrash::PreAck, true),
    ];
    for (point, post_cutover) in matrix {
        let base = test_dir(&format!("crash_{point:?}"));
        let mut sim = open_sim(&base, ShardFaultPlan::new(7).split_crash(point));
        let truths = fill_and_snapshot_truths(&mut sim);
        let (at, moved_marker) = split_at(&sim);

        let outcome = sim
            .split(SplitSpec {
                source: 0,
                new_shard: NEW_SHARD,
                at,
            })
            .unwrap();
        assert_eq!(outcome, SplitOutcome::Crashed(point), "{point:?}");

        // kill -9: abandon the coordinator and recover from disk alone
        drop(sim);
        let recovered = open_sim(&base, ShardFaultPlan::new(7));

        if post_cutover {
            assert_eq!(recovered.map().version, 1, "{point:?}: post-cutover map");
            let mut ids = recovered.map().shard_ids();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, NEW_SHARD]);
            assert_eq!(
                recovered.shard_of(moved_marker),
                NEW_SHARD,
                "{point:?}: the moved marker must route to the new shard"
            );
        } else {
            assert_eq!(recovered.map().version, 0, "{point:?}: pre-cutover map");
            assert_eq!(recovered.map().shard_ids(), vec![0, 1]);
            assert_eq!(recovered.shard_of(moved_marker), 0);
        }

        // the routed truth table is identical either way
        assert_eq!(
            truth_table(&recovered),
            truths,
            "{point:?}: recovery changed a truth"
        );

        // a pre-cutover recovery can simply retry the split to completion
        if !post_cutover {
            let mut retried = recovered;
            match retried
                .split(SplitSpec {
                    source: 0,
                    new_shard: NEW_SHARD,
                    at,
                })
                .unwrap()
            {
                SplitOutcome::Done { version } => assert_eq!(version, 1),
                other => panic!("{point:?}: retry did not complete: {other:?}"),
            }
            assert_eq!(retried.shard_of(moved_marker), NEW_SHARD);
            assert_eq!(
                truth_table(&retried),
                truths,
                "{point:?}: completed retry changed a truth"
            );
        }

        std::fs::remove_dir_all(&base).ok();
    }
}

#[test]
fn split_survives_a_donor_quorum_kill_mid_catch_up() {
    let base = test_dir("mid_split_chaos");
    // the donor group's whole quorum dies at step 600 — scheduled to
    // fire while the split coordinator is polling it for catch-up —
    // and restarts 20 steps later
    let plan = ShardFaultPlan::new(11)
        .drops(0.02)
        .kill_quorum(600, 0)
        .restart_after(20);
    let mut sim = open_sim(&base, plan);
    let truths = fill_and_snapshot_truths(&mut sim);
    let (at, moved_marker) = split_at(&sim);
    assert!(
        sim.now() < 600,
        "workload overran the kill schedule (now {})",
        sim.now()
    );
    // drive to just before the kill so the fetch loop steps into it
    while sim.now() < 599 {
        sim.step().unwrap();
    }

    match sim
        .split(SplitSpec {
            source: 0,
            new_shard: NEW_SHARD,
            at,
        })
        .unwrap()
    {
        SplitOutcome::Done { version } => assert_eq!(version, 1),
        other => panic!("split under mid-split chaos did not complete: {other:?}"),
    }
    assert_eq!(sim.shard_of(moved_marker), NEW_SHARD);
    assert_eq!(truth_table(&sim), truths, "mid-split chaos changed a truth");
    std::fs::remove_dir_all(&base).ok();
}
