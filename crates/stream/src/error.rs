//! Typed errors for streaming CRH.

use crh_core::error::CrhError;
use crh_core::persist::PersistError;

/// Everything that can go wrong configuring, checkpointing, or resuming
/// an I-CRH session.
#[derive(Debug)]
pub enum StreamError {
    /// The decay rate is outside `[0, 1]` (or NaN).
    InvalidAlpha {
        /// The rejected value.
        got: f64,
    },
    /// A time-window size of zero was requested; windows must merge at
    /// least one bucket.
    InvalidWindow,
    /// A checkpoint's weight and accumulated-distance vectors disagree
    /// in length.
    CheckpointMismatch {
        /// Number of weights in the checkpoint.
        weights: usize,
        /// Number of accumulated distances in the checkpoint.
        accumulated: usize,
    },
    /// A checkpoint contains NaN or infinite values.
    NonFiniteCheckpoint,
    /// An error from the core solver.
    Core(CrhError),
    /// A durable checkpoint failed to read or write (I/O, bad magic,
    /// truncation, CRC mismatch, …).
    Persist(PersistError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidAlpha { got } => {
                write!(f, "decay rate alpha must be in [0,1], got {got}")
            }
            Self::InvalidWindow => write!(f, "time-window size must be >= 1 bucket"),
            Self::CheckpointMismatch {
                weights,
                accumulated,
            } => write!(
                f,
                "checkpoint weight/accumulator lengths differ: {weights} vs {accumulated}"
            ),
            Self::NonFiniteCheckpoint => write!(f, "checkpoint contains non-finite values"),
            Self::Core(e) => write!(f, "core solver error: {e}"),
            Self::Persist(e) => write!(f, "checkpoint persistence error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CrhError> for StreamError {
    fn from(e: CrhError) -> Self {
        Self::Core(e)
    }
}

impl From<PersistError> for StreamError {
    fn from(e: PersistError) -> Self {
        Self::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = StreamError::InvalidAlpha { got: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = StreamError::CheckpointMismatch {
            weights: 3,
            accumulated: 2,
        };
        assert!(e.to_string().contains("3 vs 2"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = StreamError::from(PersistError::Truncated {
            expected: 8,
            got: 3,
        });
        assert!(e.source().is_some());
        assert!(StreamError::NonFiniteCheckpoint.source().is_none());
    }
}
