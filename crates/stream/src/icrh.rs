//! The incremental CRH method (Algorithm 2).

use std::collections::HashMap;
use std::path::Path;

use crh_core::error::Result;
use crh_core::par::Pool;
use crh_core::persist::{read_frame, write_frame, Dec, Enc, PersistError};
use crh_core::solver::{
    fit_and_deviations_into, source_losses_mat, PreparedProblem, PropertyNorm, SolverScratch,
};
use crh_core::table::{ObservationTable, TruthTable};
use crh_core::weights::{LogMax, WeightAssigner};

use crate::error::StreamError;

/// Configuration for incremental CRH.
pub struct ICrh {
    alpha: f64,
    assigner: Box<dyn WeightAssigner>,
    property_norm: PropertyNorm,
    count_normalize: bool,
    threads: usize,
}

impl std::fmt::Debug for ICrh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ICrh")
            .field("alpha", &self.alpha)
            .field("assigner", &self.assigner.name())
            .finish()
    }
}

impl ICrh {
    /// Build with decay rate `α ∈ \[0, 1\]` and the paper's defaults
    /// elsewhere (log-max weights, per-property normalization, per-source
    /// count normalization).
    pub fn new(alpha: f64) -> std::result::Result<Self, StreamError> {
        if !(0.0..=1.0).contains(&alpha) || alpha.is_nan() {
            return Err(StreamError::InvalidAlpha { got: alpha });
        }
        Ok(Self {
            alpha,
            assigner: Box::new(LogMax),
            property_norm: PropertyNorm::SumToOne,
            count_normalize: true,
            threads: 0,
        })
    }

    /// Kernel thread count for the per-chunk fit/deviation pass: `0`
    /// (default) = available parallelism, `1` = the exact sequential path.
    /// Results are bit-identical for every value.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Replace the weight-assignment scheme.
    pub fn weight_assigner(mut self, a: impl WeightAssigner + 'static) -> Self {
        self.assigner = Box::new(a);
        self
    }

    /// Replace the cross-property normalization.
    pub fn property_norm(mut self, norm: PropertyNorm) -> Self {
        self.property_norm = norm;
        self
    }

    /// Enable/disable per-source count normalization of chunk deviations.
    pub fn count_normalize(mut self, on: bool) -> Self {
        self.count_normalize = on;
        self
    }

    /// Begin a streaming session (Algorithm 2 line 1: `w_k = 1`, `a_k = 0`).
    pub fn start(self) -> ICrhState {
        let pool = Pool::new(self.threads);
        ICrhState {
            cfg: self,
            weights: Vec::new(),
            accumulated: Vec::new(),
            chunks_seen: 0,
            weight_history: Vec::new(),
            pool,
            scratch: SolverScratch::new(0, 0, 0),
        }
    }

    /// Convenience: run the whole stream and collect per-chunk results.
    pub fn run_stream<'a, I>(self, chunks: I) -> Result<StreamResult>
    where
        I: IntoIterator<Item = &'a ObservationTable>,
    {
        let mut state = self.start();
        let mut truths = Vec::new();
        for chunk in chunks {
            truths.push(state.process_chunk(chunk)?);
        }
        Ok(StreamResult {
            truths_per_chunk: truths,
            weight_history: state.weight_history.clone(),
            final_weights: state.weights().to_vec(),
        })
    }
}

/// Live state of an I-CRH session: current weights and decayed accumulated
/// distances per source.
pub struct ICrhState {
    cfg: ICrh,
    weights: Vec<f64>,
    accumulated: Vec<f64>,
    chunks_seen: usize,
    weight_history: Vec<Vec<f64>>,
    pool: Pool,
    scratch: SolverScratch,
}

impl std::fmt::Debug for ICrhState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ICrhState")
            .field("chunks_seen", &self.chunks_seen)
            .field("weights", &self.weights)
            .finish()
    }
}

/// A serializable snapshot of an I-CRH session, for checkpoint/resume in
/// long-running streaming deployments.
#[derive(Debug, Clone, PartialEq)]
pub struct ICrhCheckpoint {
    /// Current source weights.
    pub weights: Vec<f64>,
    /// Decayed accumulated distances `a_k`.
    pub accumulated: Vec<f64>,
    /// Chunks processed so far.
    pub chunks_seen: usize,
}

/// Magic bytes of a durable I-CRH checkpoint frame.
const STREAM_CKPT_MAGIC: [u8; 4] = *b"CRHS";
/// Current durable checkpoint format version.
const STREAM_CKPT_VERSION: u32 = 1;

impl ICrhCheckpoint {
    /// Internal consistency checks shared by [`resume`](ICrhState::resume)
    /// and [`load`](Self::load).
    pub fn validate(&self) -> std::result::Result<(), StreamError> {
        if self.weights.len() != self.accumulated.len() {
            return Err(StreamError::CheckpointMismatch {
                weights: self.weights.len(),
                accumulated: self.accumulated.len(),
            });
        }
        if self
            .weights
            .iter()
            .chain(&self.accumulated)
            .any(|x| !x.is_finite())
        {
            return Err(StreamError::NonFiniteCheckpoint);
        }
        Ok(())
    }

    /// Persist the checkpoint durably: CRC-framed, `f64` bits exact,
    /// written to a temp file and atomically renamed into place so a
    /// crash mid-write never leaves a torn checkpoint behind.
    pub fn save(&self, path: impl AsRef<Path>) -> std::result::Result<(), StreamError> {
        let mut e = Enc::new();
        e.u64(self.chunks_seen as u64);
        e.f64s(&self.weights);
        e.f64s(&self.accumulated);
        write_frame(
            path.as_ref(),
            STREAM_CKPT_MAGIC,
            STREAM_CKPT_VERSION,
            &e.into_bytes(),
        )?;
        Ok(())
    }

    /// Load a checkpoint written by [`save`](Self::save). The frame's
    /// magic, version, and CRC are verified before decoding; truncated or
    /// corrupted files are rejected with a typed error, as are frames
    /// whose decoded state is internally inconsistent.
    pub fn load(path: impl AsRef<Path>) -> std::result::Result<Self, StreamError> {
        let (_version, payload) =
            read_frame(path.as_ref(), STREAM_CKPT_MAGIC, STREAM_CKPT_VERSION)?;
        let mut d = Dec::new(&payload);
        let chunks_seen = d.u64()? as usize;
        let weights = d.f64s()?;
        let accumulated = d.f64s()?;
        if !d.is_exhausted() {
            return Err(StreamError::Persist(PersistError::Malformed(
                "trailing bytes after stream checkpoint",
            )));
        }
        let ckpt = Self {
            weights,
            accumulated,
            chunks_seen,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }
}

impl ICrhState {
    /// Snapshot the session for persistence. The weight history is not part
    /// of the checkpoint (it is a diagnostic, not solver state).
    pub fn checkpoint(&self) -> ICrhCheckpoint {
        ICrhCheckpoint {
            weights: self.weights.clone(),
            accumulated: self.accumulated.clone(),
            chunks_seen: self.chunks_seen,
        }
    }

    /// Resume a session from a checkpoint, continuing the stream where the
    /// snapshotted session left off.
    pub fn resume(cfg: ICrh, ckpt: ICrhCheckpoint) -> std::result::Result<Self, StreamError> {
        ckpt.validate()?;
        let pool = Pool::new(cfg.threads);
        Ok(Self {
            cfg,
            weights: ckpt.weights,
            accumulated: ckpt.accumulated,
            chunks_seen: ckpt.chunks_seen,
            weight_history: Vec::new(),
            pool,
            scratch: SolverScratch::new(0, 0, 0),
        })
    }

    /// Process one chunk (Algorithm 2 lines 3-5): compute the chunk's truths
    /// with the current weights, fold the chunk's (normalized) deviations
    /// into the accumulated distances with decay `α`, refresh the weights.
    ///
    /// Sources unseen so far join with weight 1 and zero accumulated
    /// distance. One pass, no iteration — this is what makes I-CRH "run
    /// much faster" than CRH (§3.3).
    pub fn process_chunk(&mut self, chunk: &ObservationTable) -> Result<TruthTable> {
        let k = chunk.num_sources().max(self.weights.len());
        self.weights.resize(k, 1.0);
        self.accumulated.resize(k, 0.0);

        let prepared = PreparedProblem::new(chunk, &HashMap::new())?;

        // Lines 3-4 fused: one entry-sharded sweep fits the chunk's truths
        // under the current weights and accumulates their deviations.
        let mut truths = TruthTable::new(Vec::new());
        fit_and_deviations_into(
            &prepared,
            &self.weights,
            &self.pool,
            &mut truths,
            &mut self.scratch,
        );
        let chunk_losses = source_losses_mat(
            self.scratch.dev(),
            chunk.source_counts(),
            self.cfg.property_norm,
            self.cfg.count_normalize,
        );
        for (s, acc) in self.accumulated.iter_mut().enumerate() {
            let l = chunk_losses.get(s).copied().unwrap_or(0.0);
            *acc = *acc * self.cfg.alpha + l;
        }

        // Line 5: weights from accumulated distances.
        self.weights = self.cfg.assigner.assign(&self.accumulated);
        self.chunks_seen += 1;
        self.weight_history.push(self.weights.clone());
        Ok(truths)
    }

    /// The current source weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The decayed accumulated distances `a_k`.
    pub fn accumulated_distances(&self) -> &[f64] {
        &self.accumulated
    }

    /// Number of chunks processed.
    pub fn chunks_seen(&self) -> usize {
        self.chunks_seen
    }

    /// Source weights recorded after each chunk (for Fig 4a).
    pub fn weight_history(&self) -> &[Vec<f64>] {
        &self.weight_history
    }
}

/// Result of running a whole stream through [`ICrh::run_stream`].
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// The per-chunk truth tables (parallel to each chunk's entries).
    pub truths_per_chunk: Vec<TruthTable>,
    /// Source weights after each chunk (Fig 4a's series).
    pub weight_history: Vec<Vec<f64>>,
    /// Weights after the final chunk.
    pub final_weights: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crh_core::ids::{ObjectId, PropertyId, SourceId};
    use crh_core::schema::Schema;
    use crh_core::table::TableBuilder;
    use crh_core::value::Value;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_continuous("t");
        s.add_categorical("c");
        s
    }

    /// A chunk where source 2 lies on everything.
    fn chunk(day: u32, objects: u32) -> ObservationTable {
        let mut b = TableBuilder::new(schema());
        let t = PropertyId(0);
        let c = PropertyId(1);
        for i in 0..objects {
            let o = ObjectId(day * objects + i);
            let truth = 50.0 + (day * objects + i) as f64;
            b.add(o, t, SourceId(0), Value::Num(truth)).unwrap();
            b.add(o, t, SourceId(1), Value::Num(truth + 1.0)).unwrap();
            b.add(o, t, SourceId(2), Value::Num(truth + 30.0)).unwrap();
            b.add_label(o, c, SourceId(0), "x").unwrap();
            b.add_label(o, c, SourceId(1), "x").unwrap();
            b.add_label(o, c, SourceId(2), "y").unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn alpha_validation() {
        assert!(ICrh::new(-0.1).is_err());
        assert!(ICrh::new(1.1).is_err());
        assert!(ICrh::new(f64::NAN).is_err());
        assert!(ICrh::new(0.0).is_ok());
        assert!(ICrh::new(1.0).is_ok());
    }

    #[test]
    fn liar_weight_decays_over_chunks() {
        let mut state = ICrh::new(0.5).unwrap().start();
        for day in 0..6 {
            state.process_chunk(&chunk(day, 5)).unwrap();
        }
        let w = state.weights();
        assert!(w[0] > w[2], "{w:?}");
        assert!(w[1] > w[2], "{w:?}");
        assert_eq!(state.chunks_seen(), 6);
        assert_eq!(state.weight_history().len(), 6);
    }

    #[test]
    fn first_chunk_truths_use_uniform_weights() {
        // with w = 1 everywhere the first chunk is voting/median
        let mut state = ICrh::new(0.5).unwrap().start();
        let ch = chunk(0, 5);
        let truths = state.process_chunk(&ch).unwrap();
        let t = PropertyId(0);
        let e = ch.entry_id(ObjectId(0), t).unwrap();
        // median of {50, 51, 80} = 51
        assert_eq!(truths.get(e).as_num(), Some(51.0));
    }

    #[test]
    fn later_chunks_benefit_from_learned_weights() {
        let mut state = ICrh::new(0.5).unwrap().start();
        state.process_chunk(&chunk(0, 5)).unwrap();
        let ch = chunk(1, 5);
        let truths = state.process_chunk(&ch).unwrap();
        let c = PropertyId(1);
        let e = ch.entry_id(ObjectId(5), c).unwrap();
        let x = ch.schema().lookup(c, "x").unwrap();
        assert_eq!(truths.get(e).point(), x);
    }

    #[test]
    fn alpha_zero_forgets_history() {
        // with α = 0 the accumulated distance is exactly the last chunk's
        let mut s0 = ICrh::new(0.0).unwrap().start();
        s0.process_chunk(&chunk(0, 5)).unwrap();
        let after_first = s0.accumulated_distances().to_vec();
        s0.process_chunk(&chunk(1, 5)).unwrap();
        let after_second = s0.accumulated_distances().to_vec();
        // α=0: acc after second chunk is independent of the first chunk
        let mut fresh = ICrh::new(0.0).unwrap().start();
        fresh.process_chunk(&chunk(0, 5)).unwrap(); // align weights
        let _ = after_first;
        // process chunk 1 with the same incoming weights
        fresh.process_chunk(&chunk(1, 5)).unwrap();
        assert_eq!(after_second, fresh.accumulated_distances());
    }

    #[test]
    fn alpha_one_accumulates_everything() {
        let mut s = ICrh::new(1.0).unwrap().start();
        s.process_chunk(&chunk(0, 5)).unwrap();
        let a1 = s.accumulated_distances()[2];
        s.process_chunk(&chunk(1, 5)).unwrap();
        let a2 = s.accumulated_distances()[2];
        assert!(a2 > a1, "with α=1 distances only grow: {a1} -> {a2}");
    }

    #[test]
    fn new_sources_join_midstream() {
        let mut state = ICrh::new(0.5).unwrap().start();
        state.process_chunk(&chunk(0, 5)).unwrap();
        assert_eq!(state.weights().len(), 3);
        // a chunk with a 4th source
        let mut b = TableBuilder::new(schema());
        let t = PropertyId(0);
        for i in 0..5u32 {
            let o = ObjectId(100 + i);
            b.add(o, t, SourceId(0), Value::Num(1.0)).unwrap();
            b.add(o, t, SourceId(3), Value::Num(1.0)).unwrap();
        }
        state.process_chunk(&b.build().unwrap()).unwrap();
        assert_eq!(state.weights().len(), 4);
        assert!(state.weights()[3].is_finite());
    }

    #[test]
    fn run_stream_collects_everything() {
        let chunks: Vec<_> = (0..4).map(|d| chunk(d, 3)).collect();
        let res = ICrh::new(0.5).unwrap().run_stream(chunks.iter()).unwrap();
        assert_eq!(res.truths_per_chunk.len(), 4);
        assert_eq!(res.weight_history.len(), 4);
        assert_eq!(res.final_weights.len(), 3);
        assert_eq!(res.final_weights, *res.weight_history.last().unwrap());
    }

    #[test]
    fn checkpoint_resume_continues_identically() {
        // run 4 chunks straight through
        let chunks: Vec<_> = (0..4).map(|d| chunk(d, 5)).collect();
        let mut full = ICrh::new(0.5).unwrap().start();
        for c in &chunks {
            full.process_chunk(c).unwrap();
        }
        // run 2 chunks, checkpoint, resume, run the remaining 2
        let mut first = ICrh::new(0.5).unwrap().start();
        first.process_chunk(&chunks[0]).unwrap();
        first.process_chunk(&chunks[1]).unwrap();
        let ckpt = first.checkpoint();
        let mut resumed = ICrhState::resume(ICrh::new(0.5).unwrap(), ckpt).unwrap();
        resumed.process_chunk(&chunks[2]).unwrap();
        resumed.process_chunk(&chunks[3]).unwrap();
        assert_eq!(full.weights(), resumed.weights());
        assert_eq!(
            full.accumulated_distances(),
            resumed.accumulated_distances()
        );
        assert_eq!(resumed.chunks_seen(), 4);
    }

    #[test]
    fn resume_validates_checkpoint() {
        let bad = ICrhCheckpoint {
            weights: vec![1.0, 2.0],
            accumulated: vec![0.0],
            chunks_seen: 1,
        };
        let err = ICrhState::resume(ICrh::new(0.5).unwrap(), bad).unwrap_err();
        assert!(
            matches!(err, StreamError::CheckpointMismatch { .. }),
            "{err}"
        );
        let nan = ICrhCheckpoint {
            weights: vec![f64::NAN],
            accumulated: vec![0.0],
            chunks_seen: 1,
        };
        let err = ICrhState::resume(ICrh::new(0.5).unwrap(), nan).unwrap_err();
        assert!(matches!(err, StreamError::NonFiniteCheckpoint), "{err}");
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("crh_stream_{}_{name}.ckpt", std::process::id()))
    }

    #[test]
    fn durable_checkpoint_roundtrips_bit_exact() {
        let mut state = ICrh::new(0.5).unwrap().start();
        for day in 0..3 {
            state.process_chunk(&chunk(day, 5)).unwrap();
        }
        let ckpt = state.checkpoint();
        let path = tmp("roundtrip");
        ckpt.save(&path).unwrap();
        let loaded = ICrhCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        for (a, b) in ckpt.weights.iter().zip(&loaded.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn durable_resume_continues_identically() {
        let chunks: Vec<_> = (0..4).map(|d| chunk(d, 5)).collect();
        let mut full = ICrh::new(0.5).unwrap().start();
        for c in &chunks {
            full.process_chunk(c).unwrap();
        }
        let path = tmp("resume");
        let mut first = ICrh::new(0.5).unwrap().start();
        first.process_chunk(&chunks[0]).unwrap();
        first.process_chunk(&chunks[1]).unwrap();
        first.checkpoint().save(&path).unwrap();
        drop(first); // the process "dies" here

        let loaded = ICrhCheckpoint::load(&path).unwrap();
        let mut resumed = ICrhState::resume(ICrh::new(0.5).unwrap(), loaded).unwrap();
        resumed.process_chunk(&chunks[2]).unwrap();
        resumed.process_chunk(&chunks[3]).unwrap();
        assert_eq!(full.weights(), resumed.weights());
        assert_eq!(
            full.accumulated_distances(),
            resumed.accumulated_distances()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_truncated_file() {
        let path = tmp("truncated");
        let ckpt = ICrhCheckpoint {
            weights: vec![1.0, 2.0],
            accumulated: vec![0.5, 0.25],
            chunks_seen: 7,
        };
        ckpt.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let err = ICrhCheckpoint::load(&path).unwrap_err();
        assert!(matches!(err, StreamError::Persist(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_corrupted_payload() {
        let path = tmp("corrupt");
        let ckpt = ICrhCheckpoint {
            weights: vec![1.0, 2.0],
            accumulated: vec![0.5, 0.25],
            chunks_seen: 7,
        };
        ckpt.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = ICrhCheckpoint::load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::Persist(crh_core::persist::PersistError::CrcMismatch { .. })
            ),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_magic() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTACHECKPOINTFILE______________").unwrap();
        let err = ICrhCheckpoint::load(&path).unwrap_err();
        assert!(matches!(err, StreamError::Persist(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_trailing_garbage_and_duplicated_frames() {
        let path = tmp("dupframe");
        let ckpt = ICrhCheckpoint {
            weights: vec![1.0, 0.5],
            accumulated: vec![0.1, 0.9],
            chunks_seen: 3,
        };
        ckpt.save(&path).unwrap();
        let frame = std::fs::read(&path).unwrap();
        // duplicated frame: the whole file written twice
        let mut doubled = frame.clone();
        doubled.extend_from_slice(&frame);
        std::fs::write(&path, &doubled).unwrap();
        let err = ICrhCheckpoint::load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::Persist(PersistError::TrailingGarbage { .. })
            ),
            "{err}"
        );
        // one stray trailing byte
        let mut one_more = frame.clone();
        one_more.push(0xAB);
        std::fs::write(&path, &one_more).unwrap();
        let err = ICrhCheckpoint::load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::Persist(PersistError::TrailingGarbage { extra: 1 })
            ),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_corruption_never_panics_and_always_types() {
        use crh_core::rng::{Pcg64, Rng};
        let path = tmp("seeded_corruption");
        let mut state = ICrh::new(0.7).unwrap().start();
        for day in 0..4 {
            state.process_chunk(&chunk(day, 6)).unwrap();
        }
        let ckpt = state.checkpoint();
        for seed in 0..32u64 {
            let mut rng = Pcg64::seed_from_u64(seed);
            ckpt.save(&path).unwrap();
            let pristine = std::fs::read(&path).unwrap();
            let corrupted = match seed % 3 {
                // truncate at a seeded offset (torn write)
                0 => {
                    let cut = 1 + (rng.next_u64() as usize) % (pristine.len() - 1);
                    pristine[..cut].to_vec()
                }
                // flip one seeded byte (bit rot)
                1 => {
                    let mut b = pristine.clone();
                    let at = (rng.next_u64() as usize) % b.len();
                    let mask = (rng.next_u64() as u8).max(1);
                    b[at] ^= mask;
                    b
                }
                // duplicate a seeded-length suffix (double write)
                _ => {
                    let mut b = pristine.clone();
                    let n = 1 + (rng.next_u64() as usize) % pristine.len();
                    let tail = pristine[pristine.len() - n..].to_vec();
                    b.extend_from_slice(&tail);
                    b
                }
            };
            std::fs::write(&path, &corrupted).unwrap();
            match ICrhCheckpoint::load(&path) {
                Err(_) => {} // a typed error is exactly what we want
                Ok(loaded) => {
                    // a byte flip can, rarely, cancel in the CRC; but it must
                    // then decode to a structurally valid checkpoint
                    assert!(
                        loaded.validate().is_ok(),
                        "seed {seed}: corrupted checkpoint loaded but is invalid"
                    );
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alpha_edge_cases_are_typed_and_usable() {
        // NaN and out-of-range values surface the typed variant
        for bad in [f64::NAN, -0.0001, 1.0001, f64::INFINITY] {
            let err = ICrh::new(bad).unwrap_err();
            assert!(matches!(err, StreamError::InvalidAlpha { .. }), "{bad}");
        }
        // the boundary values are valid and produce finite weights
        for alpha in [0.0, 1.0] {
            let mut s = ICrh::new(alpha).unwrap().start();
            for day in 0..3 {
                s.process_chunk(&chunk(day, 4)).unwrap();
            }
            assert!(
                s.weights().iter().all(|w| w.is_finite()),
                "alpha {alpha}: {:?}",
                s.weights()
            );
            assert!(s.accumulated_distances().iter().all(|a| a.is_finite()));
        }
    }

    #[test]
    fn single_pass_is_deterministic() {
        let chunks: Vec<_> = (0..3).map(|d| chunk(d, 4)).collect();
        let r1 = ICrh::new(0.3).unwrap().run_stream(chunks.iter()).unwrap();
        let r2 = ICrh::new(0.3).unwrap().run_stream(chunks.iter()).unwrap();
        assert_eq!(r1.final_weights, r2.final_weights);
    }
}
