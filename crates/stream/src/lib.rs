//! # crh-stream — Incremental CRH for streaming data (§2.6, Algorithm 2)
//!
//! Data often "arrive\[s\] in sequential chunks" — forecasts crawled day by
//! day, quotes per trading day. Waiting for the full data set is
//! impractical, so I-CRH learns truths and source weights **incrementally**:
//! for each chunk it (1) computes truths with the weights learned from
//! history, then (2) folds the chunk's deviations into per-source
//! accumulated distances, decayed by `α`, and refreshes the weights —
//! one pass per chunk, never revisiting past data.
//!
//! The decay rate `α ∈ \[0, 1\]` controls the influence of history: "the
//! smaller α, the less impact from past data in current source weights
//! estimation".
//!
//! ```
//! use crh_core::prelude::*;
//! use crh_stream::ICrh;
//!
//! # fn chunk(day: u32) -> ObservationTable {
//! #     let mut schema = Schema::new();
//! #     let t = schema.add_continuous("t");
//! #     let mut b = TableBuilder::new(schema);
//! #     for i in 0..3u32 {
//! #         let o = ObjectId(day * 3 + i);
//! #         b.add(o, t, SourceId(0), Value::Num(1.0)).unwrap();
//! #         b.add(o, t, SourceId(1), Value::Num(1.0)).unwrap();
//! #         b.add(o, t, SourceId(2), Value::Num(9.0)).unwrap();
//! #     }
//! #     b.build().unwrap()
//! # }
//! let mut icrh = ICrh::new(0.5).unwrap().start();
//! for day in 0..5 {
//!     let table = chunk(day);                    // today's crawl
//!     let truths = icrh.process_chunk(&table).unwrap();
//!     assert_eq!(truths.len(), table.num_entries());
//! }
//! // the persistently-wrong source ends up with the lowest weight
//! let w = icrh.weights();
//! assert!(w[2] < w[0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod icrh;
pub mod window;

pub use error::StreamError;
pub use icrh::{ICrh, ICrhCheckpoint, ICrhState, StreamResult};
pub use window::group_windows;
