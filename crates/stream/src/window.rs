//! Time-window regrouping (§3.3, Fig 5).
//!
//! "The time window determines how often we apply the I-CRH method to the
//! data" — small windows mean frequent weight updates on little data, large
//! windows mean fewer, better-grounded updates. [`group_windows`] merges
//! per-timestamp buckets into window-sized chunks.

use crate::error::StreamError;

/// Merge timestamped buckets into windows of `window` consecutive
/// *buckets*. Buckets are ordered by timestamp first; each output group
/// concatenates the payloads of up to `window` adjacent buckets (by
/// position in the sorted order — gaps between timestamps are not padded,
/// so days {0, 5, 6} with `window = 2` group as {0, 5} and {6}). The last
/// group may be smaller.
///
/// A zero window is a configuration error and is rejected with
/// [`StreamError::InvalidWindow`] rather than panicking, so a bad config
/// can never abort a long-running caller.
pub fn group_windows<T>(
    mut buckets: Vec<(u32, Vec<T>)>,
    window: usize,
) -> Result<Vec<Vec<T>>, StreamError> {
    if window == 0 {
        return Err(StreamError::InvalidWindow);
    }
    buckets.sort_by_key(|(ts, _)| *ts);
    let mut out: Vec<Vec<T>> = Vec::new();
    for (i, (_, items)) in buckets.into_iter().enumerate() {
        match out.last_mut() {
            Some(last) if i % window != 0 => last.extend(items),
            _ => out.push(items),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buckets() -> Vec<(u32, Vec<u32>)> {
        (0..6u32).map(|d| (d, vec![d * 10, d * 10 + 1])).collect()
    }

    #[test]
    fn window_one_is_identity() {
        let g = group_windows(buckets(), 1).unwrap();
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], vec![0, 1]);
    }

    #[test]
    fn window_two_merges_pairs() {
        let g = group_windows(buckets(), 2).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g[0], vec![0, 1, 10, 11]);
        assert_eq!(g[2], vec![40, 41, 50, 51]);
    }

    #[test]
    fn ragged_last_window() {
        let g = group_windows(buckets(), 4).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].len(), 8);
        assert_eq!(g[1].len(), 4);
    }

    #[test]
    fn window_larger_than_stream() {
        let g = group_windows(buckets(), 100).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].len(), 12);
    }

    #[test]
    fn unsorted_buckets_are_ordered_first() {
        let mut b = buckets();
        b.reverse();
        let g = group_windows(b, 3).unwrap();
        assert_eq!(g[0], vec![0, 1, 10, 11, 20, 21]);
    }

    #[test]
    fn zero_window_is_a_typed_error() {
        let err = group_windows(buckets(), 0).unwrap_err();
        assert!(matches!(err, StreamError::InvalidWindow), "{err}");
        assert!(err.to_string().contains("window"));
        // an empty stream with a zero window is still a config error
        let err = group_windows(Vec::<(u32, Vec<u32>)>::new(), 0).unwrap_err();
        assert!(matches!(err, StreamError::InvalidWindow), "{err}");
    }
}
