//! Auditing resolved truths: stepwise solving and per-entry confidence.
//!
//! A data steward doesn't just want answers — they want to know *which*
//! answers to double-check. This example drives the solver step by step
//! with [`CrhSession`], then ranks the resolved entries by confidence and
//! prints the most contested ones for manual review.
//!
//! Run with: `cargo run --release --example confidence_audit`

use std::collections::HashMap;

use crh::core::confidence::{contested_entries, entry_confidences};
use crh::core::session::CrhSession;
use crh::core::solver::PreparedProblem;
use crh::data::generators::books::{generate, BooksConfig};

fn main() {
    let ds = generate(&BooksConfig::default_catalog());
    println!(
        "book catalog: {} claims about {} entries from {} stores\n",
        ds.table.num_observations(),
        ds.table.num_entries(),
        ds.table.num_sources()
    );

    // Drive the solver manually, watching the objective fall.
    let mut session = CrhSession::new(&ds.table).expect("non-empty table");
    println!("objective per iteration:");
    let mut prev: Option<f64> = None;
    for i in 1..=8 {
        let f = session.step();
        println!("  iter {i}: {f:.6}");
        if let Some(p) = prev {
            if (p - f).abs() <= 1e-9 * p.abs().max(1.0) {
                println!("  (converged)");
                break;
            }
        }
        prev = Some(f);
    }

    let weights = session.weights().to_vec();
    let (truths, _) = session.finish();

    // Score every entry's confidence and surface the contested tail.
    let prepared = PreparedProblem::new(&ds.table, &HashMap::new()).expect("prepared");
    let confidences = entry_confidences(&prepared, &truths, &weights);
    let mean_conf = confidences.iter().sum::<f64>() / confidences.len() as f64;
    println!("\nmean confidence: {mean_conf:.3}");

    let contested = contested_entries(&confidences, 0.55);
    println!(
        "{} of {} entries fall below confidence 0.55; the 5 most contested:",
        contested.len(),
        confidences.len()
    );
    for (idx, conf) in contested.iter().take(5) {
        let entry = ds.table.entry(crh::core::EntryId::from_index(*idx));
        let prop = &ds
            .table
            .schema()
            .property(entry.property)
            .expect("property")
            .name;
        let resolved = truths.get(crh::core::EntryId::from_index(*idx)).point();
        let show = |v: &crh::core::Value| -> String {
            ds.table
                .schema()
                .label(entry.property, v)
                .map(str::to_owned)
                .unwrap_or_else(|| v.to_string())
        };
        println!(
            "  book {:>3} / {:<8} confidence {:.2}: resolved to {}",
            entry.object.0,
            prop,
            conf,
            show(&resolved)
        );
        for (s, v) in ds.table.observations(crh::core::EntryId::from_index(*idx)) {
            println!("      store {:>2} claims {}", s.0, show(v));
        }
    }
    assert!(mean_conf > 0.6, "catalog should be mostly uncontested");
}
