//! Conflict resolution as a service: the `crh-serve` daemon end to end.
//!
//! A `ServeCore` folds observation chunks into incremental CRH state
//! (Algorithm 2) behind a write-ahead log, so a crash — modelled here by
//! dropping the core without a clean shutdown — loses nothing that was
//! acknowledged. The example then restarts the daemon from the same
//! state directory, serves it over TCP, and drives it with the
//! length-prefixed binary client: ingest, truth/weight queries, a batch
//! solve, and a malformed feed that trips the per-source circuit breaker.
//!
//! Run with: `cargo run --release --example crh_serve`

use std::time::Duration;

use crh::core::schema::Schema;
use crh::serve::{ChunkClaim, Client, ServeConfig, ServeCore, ServeError, Server, ServerConfig};

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    let p = s.add_categorical("condition");
    for label in ["sunny", "rainy", "foggy"] {
        s.intern(p, label).expect("fresh label");
    }
    s
}

/// Three sources report on object 0; source 2 is consistently off.
fn chunk(day: u32) -> Vec<ChunkClaim> {
    let base = 20.0 + day as f64;
    vec![
        ChunkClaim::num(0, 0, 0, base + 0.1),
        ChunkClaim::num(0, 0, 1, base - 0.2),
        ChunkClaim::num(0, 0, 2, base + 6.0),
        ChunkClaim {
            object: 0,
            property: 1,
            source: day % 3,
            value: crh::core::value::Value::Cat(day % 3),
        },
    ]
}

fn main() {
    let dir = std::env::temp_dir().join(format!("crh_serve_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = || ServeConfig::new(schema(), 0.7, &dir).snapshot_every(4);

    // --- 1. durable ingest, then a crash -------------------------------
    {
        let (mut core, _) = ServeCore::open(config()).expect("fresh state dir");
        for day in 0..6 {
            let receipt = core.ingest(&chunk(day)).expect("valid chunk");
            println!(
                "ingested chunk {} (chunks_seen = {})",
                receipt.seq, receipt.chunks_seen
            );
        }
        println!("daemon state: {:?}\n-- simulated kill -9 --", core.status());
        // dropped here WITHOUT a snapshot: chunks 4..6 live only in the WAL
    }

    // --- 2. recovery: snapshot + WAL replay ----------------------------
    let (core, report) = ServeCore::open(config()).expect("recoverable state dir");
    println!(
        "recovered {} chunks (snapshot held {}, WAL replayed {}, torn bytes {})",
        core.chunks_seen(),
        report.snapshot_chunks,
        report.wal_replayed,
        report.torn_bytes
    );
    assert_eq!(core.chunks_seen(), 6, "acknowledged chunks must survive");

    // --- 3. serve the recovered state over TCP -------------------------
    let server =
        Server::start(core, ServerConfig::default(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    println!("daemon listening on {addr}");

    let mut client = Client::connect(addr, Duration::from_secs(2)).expect("connect");
    for day in 6..10 {
        client.ingest(chunk(day)).expect("remote ingest");
    }
    // CSV feeds work too: rows are `object,property_name,source,value`
    client
        .ingest_csv("0,temperature,0,29.9\n0,temperature,1,29.7\n0,condition,2,foggy\n")
        .expect("csv ingest");

    let weights = client.weights().expect("weights query");
    println!("source weights after 11 chunks: {weights:.3?}");
    assert!(
        weights[2] < weights[0] && weights[2] < weights[1],
        "the biased source must rank last"
    );
    let truth = client.truth(0, 0).expect("truth query");
    println!("current temperature truth for object 0: {truth:?}");

    // ad-hoc batch solve on the daemon, independent of streamed state
    let solve = client
        .solve(1e-6, 50, chunk(0))
        .expect("remote batch solve");
    println!(
        "batch solve: objective {:.4} after {} iterations",
        solve.objective, solve.iterations
    );

    // --- 4. bad-feed containment ---------------------------------------
    // Source 9 streams NaNs; each is rejected with a typed error and a
    // strike, and the third strike opens its circuit breaker.
    for _ in 0..3 {
        let err = client
            .ingest(vec![ChunkClaim::num(0, 0, 9, f64::NAN)])
            .expect_err("NaN must be rejected");
        println!("bad feed rejected: {err}");
    }
    let err = client
        .ingest(vec![ChunkClaim::num(0, 0, 9, 21.0)])
        .expect_err("quarantined source is refused even with clean data");
    assert!(
        matches!(err, ServeError::Remote { .. }),
        "typed quarantine: {err}"
    );
    let status = client.status().expect("status query");
    println!("quarantined sources: {:?}", status.quarantined);
    assert_eq!(status.quarantined, vec![9]);

    // --- 5. clean shutdown: snapshot absorbs the WAL -------------------
    drop(client);
    server.shutdown();
    let (core, report) = ServeCore::open(config()).expect("reopen after shutdown");
    println!(
        "after clean shutdown: {} chunks on disk, {} WAL records to replay",
        core.chunks_seen(),
        report.wal_replayed
    );
    std::fs::remove_dir_all(&dir).ok();
}
