//! Sharded scale-out serving: a 2-shard × 3-replica topology behind a
//! `ShardRouter`.
//!
//! Each shard group is an independent quorum-replicated cluster (the
//! same `HaServer` machinery the high-availability example uses); a
//! versioned hash-range shard map assigns every entry key to exactly
//! one group. The router splits ingests by owner, follows `NotPrimary`
//! redirects inside each group, and answers cross-shard reads with the
//! degraded-read contract: every reachable shard answers, and the
//! unreachable ones are *named* in `missing_shards` instead of failing
//! the whole read. The demo kills one shard's entire quorum to show the
//! blast radius staying typed and contained.
//!
//! Run with: `cargo run --release --example crh_shard`

use std::time::Duration;

use crh::core::schema::Schema;
use crh::serve::{
    ChunkClaim, HaConfig, HaServer, ReplicaConfig, RetryPolicy, ServeConfig, ServeError,
    ServerConfig, ShardGroup, ShardMap, ShardRouter,
};

const MEMBERS: usize = 3;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_continuous("temperature");
    s.add_continuous("humidity");
    s
}

/// Reserve distinct loopback ports (held simultaneously so the OS
/// cannot hand one out twice), then release them for daemons to bind.
fn reserve_ports(n: usize) -> Vec<String> {
    let held: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    held.iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
        .collect()
}

/// One shard group: `MEMBERS` daemons, each carrying the same shard
/// identity and bootstrap map, replicating to each other.
fn start_group(
    base: &std::path::Path,
    shard: u32,
    bootstrap: &ShardMap,
    addrs: &[String],
) -> Vec<HaServer> {
    (0..addrs.len())
        .map(|id| {
            let replica =
                ReplicaConfig::new(id as u32, &(0..addrs.len() as u32).collect::<Vec<_>>());
            let ha = HaConfig {
                server: ServerConfig {
                    io_timeout: Duration::from_millis(500),
                    ..ServerConfig::default()
                },
                tick: Duration::from_millis(10),
                peer_addrs: addrs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != id)
                    .map(|(j, a)| (j as u32, a.clone()))
                    .collect(),
                commit_wait: Duration::from_secs(5),
                // this is what makes the member shard-aware: it refuses
                // frames for shards it does not own (WrongShard) and
                // frames routed under an outdated map (StaleShardMap)
                shard: Some((shard, bootstrap.clone())),
            };
            let serve = ServeConfig::new(schema(), 0.7, base.join(format!("s{shard}_n{id}")));
            HaServer::start(replica, serve, ha, &addrs[id]).expect("daemon starts")
        })
        .collect()
}

/// Three sources report on `object`; claims all land on one shard
/// because they share the object.
fn chunk(object: u32, base: f64) -> Vec<ChunkClaim> {
    (0..3u32)
        .map(|s| ChunkClaim {
            object,
            property: 0,
            source: s,
            value: crh::core::value::Value::Num(base + f64::from(s) * 0.3),
        })
        .collect()
}

/// The smallest object id owned by `shard` — deterministic, since the
/// map hashes object ids through the same seam the map-reduce engine
/// partitions by.
fn object_in(map: &ShardMap, shard: u32) -> u32 {
    (0..u32::MAX)
        .find(|&o| map.shard_of(o) == shard)
        .expect("every shard owns some object")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("crh_shard_example_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // --- 1. two shard groups, one hash-range map ----------------------
    let map = ShardMap::uniform(2).expect("2 shards");
    let addrs0 = reserve_ports(MEMBERS);
    let addrs1 = reserve_ports(MEMBERS);
    let group0 = start_group(&dir, 0, &map, &addrs0);
    let group1 = start_group(&dir, 1, &map, &addrs1);
    println!(
        "started {} daemons: shard 0 on {addrs0:?}, shard 1 on {addrs1:?}",
        2 * MEMBERS
    );

    // the router learns the live route table from the topology itself
    let to_members = |addrs: &[String]| {
        addrs
            .iter()
            .enumerate()
            .map(|(i, a)| (i as u32, a.clone()))
            .collect()
    };
    let mut router = ShardRouter::connect(
        vec![
            ShardGroup {
                shard: 0,
                members: to_members(&addrs0),
            },
            ShardGroup {
                shard: 1,
                members: to_members(&addrs1),
            },
        ],
        Duration::from_secs(5),
        RetryPolicy::default(),
    )
    .expect("route table from a live topology");
    println!(
        "route table v{}: {:?}\n",
        router.map().version,
        router.map().ranges()
    );

    // --- 2. one mixed ingest, split by owner --------------------------
    let obj0 = object_in(router.map(), 0);
    let obj1 = object_in(router.map(), 1);
    let mut claims = chunk(obj0, 21.0);
    claims.extend(chunk(obj1, 34.0));
    let acks = router.ingest(claims).expect("both groups ack");
    for a in &acks {
        println!(
            "shard {} acked seq {} once a quorum fsynced (commit bound {})",
            a.shard, a.seq, a.committed
        );
    }

    // routed reads land on the owning group transparently
    for obj in [obj0, obj1] {
        let (truth, lag) = router.truth(obj, 0).expect("routed read");
        println!("truth(object {obj}) = {truth:?} (staleness bound {lag})");
    }
    let status = router.scatter_status();
    println!(
        "scatter-gather status: {} shards answered, degraded = {}\n",
        status.value.len(),
        status.is_degraded()
    );

    // --- 3. kill one shard's whole quorum -----------------------------
    println!("-- killing all of shard 1's members (no goodbye) --");
    drop(group1);
    // connections already open may serve one last in-flight call; poll
    // until the loss is visible
    let degraded = loop {
        let s = router.scatter_status();
        if s.is_degraded() {
            break s;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    println!(
        "scatter-gather now names the dead shard: missing_shards = {:?}",
        degraded.missing_shards
    );

    // a strict read owned by the dead shard is a *typed* refusal…
    match router.truth(obj1, 0) {
        Err(ServeError::Degraded { missing_shards }) => {
            println!("truth(object {obj1}) -> Degraded {{ missing_shards: {missing_shards:?} }}")
        }
        other => println!("unexpected: {other:?}"),
    }
    // …while the surviving shard keeps reading and writing
    router
        .ingest(chunk(obj0, 22.0))
        .expect("shard 0 still writes");
    let (truth, _) = router.truth(obj0, 0).expect("shard 0 still reads");
    println!("shard 0 unaffected: truth(object {obj0}) = {truth:?}");

    println!(
        "\nsee crates/serve/tests/chaos_shard.rs for the 10-seed version of \
         this story, crates/serve/tests/shard_split.rs for crash-exact \
         shard rebalancing, and DESIGN.md §11 for the protocol."
    );
    drop(group0);
    std::fs::remove_dir_all(&dir).ok();
}
