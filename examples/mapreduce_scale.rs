//! Parallel CRH on the in-process MapReduce engine (§2.7).
//!
//! Builds a large simulated multi-source table, runs the two-job iterative
//! MapReduce pipeline (truth computation keyed by entry; weight assignment
//! keyed by (property, source) with a Combiner), and verifies the answer
//! matches sequential CRH.
//!
//! Run with: `cargo run --release --example mapreduce_scale [observations]`

use crh::core::solver::CrhBuilder;
use crh::data::generators::uci::{generate, UciConfig, UciFlavor};
use crh::mapreduce::{JobConfig, ParallelCrh};

fn main() {
    let target_obs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let rows = (target_obs / (8 * 14)).max(10);
    let ds = generate(&UciConfig {
        flavor: UciFlavor::Adult,
        rows,
        gammas: crh::data::noise::PAPER_GAMMAS.to_vec(),
        seed: 42,
    });
    println!(
        "input: {} observations, {} entries, {} sources",
        ds.table.num_observations(),
        ds.table.num_entries(),
        ds.table.num_sources()
    );

    let driver = ParallelCrh::default().job_config(JobConfig {
        num_mappers: 4,
        num_reducers: 8,
        ..JobConfig::default()
    });
    let res = driver.run(&ds.table).expect("parallel run");
    println!(
        "parallel CRH: {} iterations, converged = {}, wall time {:.3}s",
        res.iterations,
        res.converged,
        res.wall_time.as_secs_f64()
    );
    for (i, (ts, ws)) in res
        .truth_job_stats
        .iter()
        .zip(res.weight_job_stats.iter())
        .enumerate()
    {
        println!(
            "  iter {}: truth job shuffled {} records in {:.3}s; weight job combined {} -> {} records in {:.3}s",
            i + 1,
            ts.shuffled_records,
            ts.total_time().as_secs_f64(),
            ws.map_output_records,
            ws.shuffled_records,
            ws.total_time().as_secs_f64(),
        );
    }
    println!(
        "estimated weights (first 4 sources): {:?}",
        res.weights[..4]
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // Cross-check against the sequential solver. The parallel driver
    // iterates until the hard decisions are a fixed point; run the
    // sequential solver to a matching precision (its default 1e-6
    // objective tolerance can stop a few weight updates short of it).
    let seq = CrhBuilder::new()
        .tolerance(1e-12)
        .build()
        .expect("config")
        .run(&ds.table)
        .expect("run");
    let agree = seq
        .truths
        .iter()
        .filter(|(e, t)| t.point().matches(&res.truths.get(*e).point()))
        .count();
    println!(
        "agreement with sequential CRH: {}/{} entries",
        agree,
        seq.truths.len()
    );
    assert!(agree as f64 >= 0.999 * seq.truths.len() as f64);
}
