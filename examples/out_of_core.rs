//! Truth discovery when the observations don't fit in RAM.
//!
//! Claims are externally sorted by entry into a spill file once; every CRH
//! iteration is then a single sequential scan with `O(K·M + largest entry
//! group)` peak memory — §2.6's "huge data sets that can only tolerate one
//! sequential scan", on one machine.
//!
//! Run with: `cargo run --release --example out_of_core [memory_budget]`

use crh::core::solver::CrhBuilder;
use crh::core::value::PropertyType;
use crh::data::generators::uci::{generate, UciConfig, UciFlavor};
use crh::mapreduce::{OocClaim, OutOfCoreCrh, SortedClaims};

fn main() {
    // memory budget: how many claims the sorter may buffer (default: a
    // deliberately tiny 4096, forcing many spill runs)
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);

    let mut cfg = UciConfig::paper(UciFlavor::Adult);
    cfg.rows = 2_000;
    let ds = generate(&cfg);
    println!(
        "input: {} observations; sorter may hold only {budget} in memory",
        ds.table.num_observations()
    );

    // Stream the claims (in a real deployment this would come straight from
    // a CSV RecordReader) into the external sorter.
    let claims = ds.table.iter_claims().map(|(e, s, v)| OocClaim {
        entry: e.0,
        property: ds.table.entry(e).property.0,
        source: s.0,
        value: v.clone(),
    });
    let t = std::time::Instant::now();
    let sorted = SortedClaims::build(claims, budget).expect("spill");
    println!(
        "externally sorted {} claims in {:.2}s",
        sorted.len(),
        t.elapsed().as_secs_f64()
    );

    let types: Vec<PropertyType> = ds
        .table
        .schema()
        .properties()
        .map(|(_, def)| def.ptype)
        .collect();
    let ooc = OutOfCoreCrh::new(types)
        .expect("schema")
        .max_in_memory(budget);

    let t = std::time::Instant::now();
    let mut truths = std::collections::HashMap::new();
    let res = ooc
        .run(&sorted, |entry, truth| {
            truths.insert(entry, truth.point());
        })
        .expect("run");
    println!(
        "out-of-core CRH: {} iterations (converged = {}) in {:.2}s",
        res.iterations,
        res.converged,
        t.elapsed().as_secs_f64()
    );

    // Cross-check against the in-memory solver.
    let in_mem = CrhBuilder::new()
        .build()
        .expect("config")
        .run(&ds.table)
        .expect("run");
    let agree = in_mem
        .truths
        .iter()
        .filter(|(e, t)| t.point().matches(&truths[&e.0]))
        .count();
    println!(
        "agreement with the in-memory solver: {agree}/{} entries",
        in_mem.truths.len()
    );
    assert_eq!(agree, in_mem.truths.len());
    println!("identical answers with a {budget}-claim memory budget ✓");
}
