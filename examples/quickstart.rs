//! Five-minute tour of the CRH public API.
//!
//! Three weather sites report tomorrow's forecast for a handful of cities.
//! Two are decent; one systematically exaggerates temperatures and mislabels
//! conditions. CRH figures out whom to trust — without any labels — and
//! resolves the conflicts accordingly.
//!
//! Run with: `cargo run --example quickstart`

use crh::prelude::*;

fn main() -> Result<()> {
    // 1. Declare the heterogeneous schema: one continuous and one
    //    categorical property (Definition 1's "properties").
    let mut schema = Schema::new();
    let temp = schema.add_continuous("high_temp");
    let cond = schema.add_categorical("condition");

    // 2. Collect conflicting observations from 3 sources over 7 cities.
    let mut builder = TableBuilder::new(schema);
    let truth_temp = [71.0, 64.0, 80.0, 75.0, 68.0, 90.0, 55.0];
    let truth_cond = ["sunny", "rain", "sunny", "cloudy", "rain", "sunny", "snow"];
    for (city, (&t, &c)) in truth_temp.iter().zip(&truth_cond).enumerate() {
        let obj = ObjectId(city as u32);
        // source 0: accurate within a degree
        builder.add(obj, temp, SourceId(0), Value::Num(t + 0.5))?;
        builder.add_label(obj, cond, SourceId(0), c)?;
        // source 1: small noise, occasionally wrong condition
        builder.add(obj, temp, SourceId(1), Value::Num(t - 1.0))?;
        builder.add_label(obj, cond, SourceId(1), if city == 3 { "storm" } else { c })?;
        // source 2: +15 degrees and "storm" everywhere
        builder.add(obj, temp, SourceId(2), Value::Num(t + 15.0))?;
        builder.add_label(obj, cond, SourceId(2), "storm")?;
    }
    let table = builder.build()?;

    // 3. Solve. Defaults follow the paper: 0-1 loss + weighted voting for
    //    categorical data, normalized absolute deviation + weighted median
    //    for continuous data, max-normalized log weights.
    let result = CrhBuilder::new().build()?.run(&table)?;

    println!("converged after {} iterations\n", result.iterations);
    println!("estimated source weights (higher = more reliable):");
    for (k, w) in result.weights.iter().enumerate() {
        println!("  source {k}: {w:.4}");
    }
    assert!(result.weights[0] > result.weights[2]);

    println!("\nresolved truths:");
    for city in 0..truth_temp.len() {
        let obj = ObjectId(city as u32);
        let et = table.entry_id(obj, temp).expect("temp entry");
        let ec = table.entry_id(obj, cond).expect("cond entry");
        let t = result.truths.get(et).as_num().expect("numeric truth");
        let c = result.truths.get(ec).point();
        let label = table.schema().label(cond, &c).unwrap_or("?");
        println!(
            "  city {city}: high_temp = {t:>5.1}  condition = {label:<7}  (truth: {} / {})",
            truth_temp[city], truth_cond[city]
        );
    }

    // The exaggerating source was out-weighted: resolved temperatures stay
    // near the honest pair.
    let e0 = table.entry_id(ObjectId(0), temp).expect("entry");
    assert!((result.truths.get(e0).as_num().unwrap() - 71.0).abs() <= 1.0);
    println!("\nthe unreliable source was identified and down-weighted ✓");
    Ok(())
}
