//! Weight-assignment schemes beyond the default: source selection (Eqs 6-7)
//! and fine-grained per-property weights (§2.5).
//!
//! The regularization function `δ(W)` shapes what "reliability" means:
//! the exp-sum constraint (Eq 4) blends all sources; an `L^p`-norm
//! constraint (Eq 6) selects the single best source; the integer constraint
//! (Eq 7) selects the best `j` sources. And when a source's reliability is
//! *not* consistent across properties, fine-grained weights recover the
//! per-property structure.
//!
//! Run with: `cargo run --example source_selection`

use crh::core::finegrained::FineGrainedCrh;
use crh::prelude::*;

fn build_table() -> (ObservationTable, PropertyId, PropertyId) {
    let mut schema = Schema::new();
    let price = schema.add_continuous("price");
    let sector = schema.add_categorical("sector");
    let mut b = TableBuilder::new(schema);
    for i in 0..30u32 {
        let obj = ObjectId(i);
        let t = 100.0 + i as f64;
        // source 0: excellent prices, bad sectors
        b.add(obj, price, SourceId(0), Value::Num(t + 0.1)).unwrap();
        b.add_label(
            obj,
            sector,
            SourceId(0),
            if i % 3 == 0 { "tech" } else { "misc" },
        )
        .unwrap();
        // source 1: bad prices, excellent sectors
        b.add(obj, price, SourceId(1), Value::Num(t + 12.0))
            .unwrap();
        b.add_label(obj, sector, SourceId(1), "tech").unwrap();
        // source 2: decent at both
        b.add(obj, price, SourceId(2), Value::Num(t + 2.0)).unwrap();
        b.add_label(
            obj,
            sector,
            SourceId(2),
            if i % 5 == 0 { "misc" } else { "tech" },
        )
        .unwrap();
        // source 3: bad at both
        b.add(obj, price, SourceId(3), Value::Num(t - 25.0))
            .unwrap();
        b.add_label(obj, sector, SourceId(3), "misc").unwrap();
    }
    (b.build().unwrap(), price, sector)
}

fn main() -> Result<()> {
    let (table, price, sector) = build_table();

    // Default blending weights (Eq 4 -> Eq 5 with max normalization).
    let blend = CrhBuilder::new().build()?.run(&table)?;
    println!("log-max blending weights: {:?}", rounded(&blend.weights));

    // L^p-norm selection (Eq 6): the optimum picks exactly one source.
    let lp = CrhBuilder::new()
        .weight_assigner(LpSelection::new(2)?)
        .build()?
        .run(&table)?;
    println!("L^2 selection weights:    {:?}", rounded(&lp.weights));
    assert_eq!(lp.weights.iter().filter(|&&w| w > 0.0).count(), 1);

    // Integer selection (Eq 7): choose the best j = 2 sources.
    let topj = CrhBuilder::new()
        .weight_assigner(TopJ::new(2)?)
        .build()?
        .run(&table)?;
    println!("top-2 selection weights:  {:?}", rounded(&topj.weights));
    assert_eq!(topj.weights.iter().filter(|&&w| w > 0.0).count(), 2);

    // Fine-grained weights: sources 0 and 1 have split personalities, which
    // a single weight per source cannot express (§2.5 "Source weight
    // consistency").
    let fg = FineGrainedCrh::new(vec![vec![price], vec![sector]])?.run(&table)?;
    println!("\nfine-grained weights per property group:");
    println!("  price : {:?}", rounded(&fg.weights[0]));
    println!("  sector: {:?}", rounded(&fg.weights[1]));
    assert!(
        fg.weights[0][0] > fg.weights[0][1],
        "source 0 must win the price group"
    );
    assert!(
        fg.weights[1][1] > fg.weights[1][0],
        "source 1 must win the sector group"
    );
    println!("\nsplit-personality sources correctly receive local weights ✓");
    Ok(())
}

fn rounded(ws: &[f64]) -> Vec<f64> {
    ws.iter().map(|w| (w * 100.0).round() / 100.0).collect()
}
