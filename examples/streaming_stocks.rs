//! Incremental CRH on a stream of daily stock quotes (§2.6 / Algorithm 2).
//!
//! Quotes arrive one trading day at a time; waiting for the full month is
//! not an option. I-CRH resolves each day's conflicts with the weights
//! learned so far, then folds the day's deviations into the running source
//! reliability estimates — one pass per chunk, never revisiting old data.
//!
//! Run with: `cargo run --release --example streaming_stocks`

use std::time::Instant;

use crh::core::solver::CrhBuilder;
use crh::core::table::TableBuilder;
use crh::data::generators::stock::{generate, StockConfig};
use crh::data::metrics::evaluate;
use crh::stream::ICrh;

fn main() {
    // A month of quotes for 120 symbols from 55 sources.
    let mut cfg = StockConfig::paper_scaled(0.12);
    cfg.truth_rate = 0.3;
    let ds = generate(&cfg);
    println!(
        "stock stream: {} observations over {} days from {} sources",
        ds.table.num_observations(),
        cfg.days,
        cfg.sources
    );

    // Split into per-day chunks.
    let chunks: Vec<_> = ds
        .split_by_day()
        .expect("temporal dataset")
        .into_iter()
        .map(|(_, claims)| {
            let mut b = TableBuilder::new(ds.table.schema().clone());
            for (o, p, s, v) in claims {
                b.add(o, p, s, v).expect("valid claim");
            }
            b.build().expect("non-empty day")
        })
        .collect();

    // Stream through I-CRH, one day at a time.
    let mut state = ICrh::new(0.5).expect("valid alpha").start();
    let t = Instant::now();
    let mut day_truths = Vec::new();
    for (day, chunk) in chunks.iter().enumerate() {
        let truths = state.process_chunk(chunk).expect("non-empty chunk");
        let ev = evaluate(chunk, &truths, &ds.truth);
        if day < 5 || day == chunks.len() - 1 {
            println!(
                "  day {day:>2}: error rate {}, MNAD {}",
                ev.error_rate_str(),
                ev.mnad_str()
            );
        } else if day == 5 {
            println!("  ...");
        }
        day_truths.push(truths);
    }
    let icrh_time = t.elapsed();

    // Compare against batch CRH over the whole month.
    let t = Instant::now();
    let batch = CrhBuilder::new()
        .build()
        .expect("valid config")
        .run(&ds.table)
        .expect("non-empty table");
    let batch_time = t.elapsed();
    let batch_ev = evaluate(&ds.table, &batch.truths, &ds.truth);

    // Aggregate streaming quality.
    let (mut cat_n, mut wrong, mut cont_n) = (0usize, 0usize, 0usize);
    let mut nad = 0.0;
    for (chunk, truths) in chunks.iter().zip(&day_truths) {
        let ev = evaluate(chunk, truths, &ds.truth);
        cat_n += ev.categorical_evaluated;
        wrong += ev.categorical_wrong;
        cont_n += ev.continuous_evaluated;
        nad += ev.mnad.unwrap_or(0.0) * ev.continuous_evaluated as f64;
    }
    println!(
        "\nI-CRH : error rate {:.4}, MNAD {:.4}, {:>7.3}s (single pass per day)",
        wrong as f64 / cat_n as f64,
        nad / cont_n as f64,
        icrh_time.as_secs_f64()
    );
    println!(
        "CRH   : error rate {}, MNAD {}, {:>7.3}s (iterates over the full month)",
        batch_ev.error_rate_str(),
        batch_ev.mnad_str(),
        batch_time.as_secs_f64()
    );
    println!(
        "\nfinal I-CRH weights for the first 6 sources: {:?}",
        state.weights()[..6]
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    assert!(
        icrh_time < batch_time,
        "I-CRH must be faster than batch CRH"
    );
}
