//! Weather-forecast integration end to end (the paper's §3.2.1 scenario).
//!
//! Generates the weather dataset (9 sources = 3 platforms × 3 forecast lead
//! days, mixed continuous/categorical properties), persists it as CSV,
//! reloads it, runs CRH against a few baselines, and compares estimated
//! source reliability with the held-out ground truth.
//!
//! Run with: `cargo run --release --example weather_fusion`

use crh::baselines::{ConflictResolver, CrhResolver, Gtm, Mean, Voting};
use crh::data::generators::weather::{generate, WeatherConfig};
use crh::data::io::{load_dataset, save_dataset};
use crh::data::metrics::evaluate;
use crh::data::reliability::{normalize_scores, true_source_reliability};

fn main() {
    // 1. Generate the multi-source weather crawl.
    let ds = generate(&WeatherConfig::paper());
    let stats = ds.stats();
    println!(
        "weather dataset: {} observations, {} entries, {} ground truths, {} sources",
        stats.observations, stats.entries, stats.ground_truths, stats.sources
    );

    // 2. Round-trip through CSV (schema.csv / claims.csv / truth.csv).
    let dir = std::env::temp_dir().join("crh_weather_example");
    save_dataset(&ds, &dir).expect("save dataset");
    let loaded = load_dataset(&dir).expect("load dataset");
    assert_eq!(loaded.table.num_observations(), ds.table.num_observations());
    println!("persisted and reloaded via CSV at {}", dir.display());

    // 3. Run CRH and a few baselines; evaluate with the paper's measures.
    println!("\n{:<10} {:>12} {:>8}", "method", "Error Rate", "MNAD");
    let methods: Vec<Box<dyn ConflictResolver>> = vec![
        Box::new(CrhResolver),
        Box::new(Voting),
        Box::new(Mean),
        Box::new(Gtm::default()),
    ];
    for m in &methods {
        let out = m.run(&loaded.table);
        let ev = evaluate(&loaded.table, &out.truths, &ds.truth);
        println!(
            "{:<10} {:>12} {:>8}",
            m.name(),
            if out.supported.categorical {
                ev.error_rate_str()
            } else {
                "NA".into()
            },
            if out.supported.continuous {
                ev.mnad_str()
            } else {
                "NA".into()
            },
        );
    }

    // 4. Compare CRH's source weights with the ground-truth reliability
    //    (the Fig 1 comparison).
    let crh = CrhResolver.run(&loaded.table);
    let est = normalize_scores(&crh.source_scores.expect("CRH emits weights"));
    let truth = normalize_scores(&true_source_reliability(&ds));
    println!("\nsource reliability, normalized to [0,1] (platform x lead day):");
    println!("{:<22} {:>10} {:>10}", "source", "estimated", "truth");
    for (k, (e, t)) in est.iter().zip(&truth).enumerate() {
        println!(
            "platform {} lead {}      {:>10.3} {:>10.3}",
            k / 3,
            k % 3 + 1,
            e,
            t
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
