//! `crh` — command-line truth discovery.
//!
//! ```text
//! crh generate <weather|stock|flight|adult|bank|books> <dir> [--scale F] [--seed N]
//! crh stats    <dir>
//! crh run      <dir> [--out DIR] [--max-iters N] [--mean] [--top-j J]
//! crh evaluate <dir> [--method NAME|all]
//! crh stream   <dir> [--alpha A] [--window W]
//! ```
//!
//! Datasets are CSV directories (`schema.csv`, `claims.csv`, `truth.csv`,
//! optional `days.csv`) as written by `crh generate` / `crh_data::io`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crh::baselines::{all_methods, ConflictResolver};
use crh::core::solver::CrhBuilder;
use crh::core::table::TableBuilder;
use crh::core::value::Value;
use crh::core::weights::TopJ;
use crh::data::dataset::Dataset;
use crh::data::generators::{flight, stock, uci, weather};
use crh::data::io::{load_dataset, save_dataset};
use crh::data::metrics::evaluate;
use crh::stream::ICrh;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  crh generate <weather|stock|flight|adult|bank|books> <dir> [--scale F] [--seed N]\n  \
         crh stats    <dir>\n  \
         crh run      <dir> [--out DIR] [--max-iters N] [--mean] [--top-j J]\n  \
         crh evaluate <dir> [--method NAME|all]\n  \
         crh stream   <dir> [--alpha A] [--window W]\n  \
         crh ooc      <dir> [--out DIR] [--budget N]   (out-of-core, bounded memory)"
    );
    ExitCode::from(2)
}

use crh::cli::Args;

fn generate(args: &Args) -> Result<(), String> {
    let [kind, dir] = &args.positional[..] else {
        return Err("generate needs <kind> <dir>".into());
    };
    let scale: f64 = args.flag_parse("scale", 0.05)?;
    let seed: u64 = args.flag_parse("seed", 0)?;
    let mut ds = match kind.as_str() {
        "weather" => {
            let mut cfg = weather::WeatherConfig::paper();
            if seed != 0 {
                cfg.seed = seed;
            }
            weather::generate(&cfg)
        }
        "stock" => {
            let mut cfg = stock::StockConfig::paper_scaled(scale);
            if seed != 0 {
                cfg.seed = seed;
            }
            stock::generate(&cfg)
        }
        "flight" => {
            let mut cfg = flight::FlightConfig::paper_scaled(scale);
            if seed != 0 {
                cfg.seed = seed;
            }
            flight::generate(&cfg)
        }
        "books" => {
            let mut cfg = crh::data::generators::books::BooksConfig::default_catalog();
            if seed != 0 {
                cfg.seed = seed;
            }
            crh::data::generators::books::generate(&cfg)
        }
        "adult" | "bank" => {
            let flavor = if kind == "adult" {
                uci::UciFlavor::Adult
            } else {
                uci::UciFlavor::Bank
            };
            let mut cfg = uci::UciConfig::paper_scaled(flavor, scale);
            if seed != 0 {
                cfg.seed = seed;
            }
            uci::generate(&cfg)
        }
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    ds.name = kind.clone();
    save_dataset(&ds, Path::new(dir)).map_err(|e| e.to_string())?;
    let s = ds.stats();
    println!(
        "wrote {kind} dataset to {dir}: {} observations, {} entries, {} ground truths, {} sources",
        s.observations, s.entries, s.ground_truths, s.sources
    );
    Ok(())
}

fn load(dir: &str) -> Result<Dataset, String> {
    load_dataset(Path::new(dir)).map_err(|e| format!("cannot load dataset at {dir}: {e}"))
}

/// Render a value as a CSV field, resolving categorical ids through
/// `label_of` (shared by `run`'s and `ooc`'s truth writers).
fn value_field(v: &Value, label_of: impl Fn(u32) -> Option<String>) -> String {
    match v {
        Value::Num(x) => format!("{x}"),
        Value::Text(t) => t.clone(),
        Value::Cat(c) => label_of(*c).unwrap_or_else(|| format!("#{c}")),
    }
}

fn stats(args: &Args) -> Result<(), String> {
    let [dir] = &args.positional[..] else {
        return Err("stats needs <dir>".into());
    };
    let ds = load(dir)?;
    let s = ds.stats();
    println!("dataset:        {}", ds.name);
    println!("observations:   {}", s.observations);
    println!("entries:        {}", s.entries);
    println!("ground truths:  {}", s.ground_truths);
    println!("sources:        {}", s.sources);
    println!("properties:     {}", s.properties);
    println!(
        "temporal:       {}",
        ds.day_of_object.as_ref().map_or("no".to_string(), |d| {
            format!("yes ({} days)", d.iter().max().map_or(0, |m| m + 1))
        })
    );
    for (pid, def) in ds.table.schema().properties() {
        let domain = ds
            .table
            .schema()
            .domain(pid)
            .filter(|d| !d.is_empty())
            .map_or(String::new(), |d| format!(" (domain {})", d.len()));
        println!("  {}: {}{}", def.name, def.ptype, domain);
    }
    Ok(())
}

fn write_results(
    ds: &Dataset,
    truths: &crh::core::TruthTable,
    weights: &[f64],
    out: &PathBuf,
) -> Result<(), String> {
    std::fs::create_dir_all(out).map_err(|e| e.to_string())?;
    use std::io::Write;
    let schema = ds.table.schema();

    let mut w = std::io::BufWriter::new(
        std::fs::File::create(out.join("truths.csv")).map_err(|e| e.to_string())?,
    );
    crh::data::csv::write_record(&mut w, &["object", "property", "value"])
        .map_err(|e| e.to_string())?;
    for (e, _, _) in ds.table.iter_entries() {
        let entry = ds.table.entry(e);
        let pname = &schema.property(entry.property).expect("property").name;
        let v = truths.get(e).point();
        let field = value_field(&v, |c| {
            schema
                .label(entry.property, &Value::Cat(c))
                .map(str::to_owned)
        });
        crh::data::csv::write_record(&mut w, &[entry.object.0.to_string(), pname.clone(), field])
            .map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;

    let mut w = std::io::BufWriter::new(
        std::fs::File::create(out.join("weights.csv")).map_err(|e| e.to_string())?,
    );
    crh::data::csv::write_record(&mut w, &["source", "weight"]).map_err(|e| e.to_string())?;
    for (k, wt) in weights.iter().enumerate() {
        crh::data::csv::write_record(&mut w, &[k.to_string(), format!("{wt}")])
            .map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())
}

fn run(args: &Args) -> Result<(), String> {
    let [dir] = &args.positional[..] else {
        return Err("run needs <dir>".into());
    };
    let ds = load(dir)?;
    let max_iters: usize = args.flag_parse("max-iters", 100)?;
    let mut builder = CrhBuilder::new().max_iters(max_iters);
    if args.flag("mean").is_some() {
        // weighted mean instead of weighted median on all continuous props
        for (pid, def) in ds.table.schema().properties() {
            if def.ptype == crh::core::PropertyType::Continuous {
                builder = builder.loss_for(pid, crh::core::loss::SquaredLoss);
            }
        }
    }
    if let Some(Some(j)) = args.flag("top-j") {
        let j: usize = j.parse().map_err(|_| format!("invalid --top-j {j:?}"))?;
        builder = builder.weight_assigner(TopJ::new(j).map_err(|e| e.to_string())?);
    }
    let result = builder
        .build()
        .map_err(|e| e.to_string())?
        .run(&ds.table)
        .map_err(|e| e.to_string())?;

    println!(
        "CRH converged = {} after {} iterations",
        result.converged, result.iterations
    );
    println!("source weights:");
    for (k, w) in result.weights.iter().enumerate() {
        println!("  source {k}: {w:.4}");
    }
    if !ds.truth.is_empty() {
        let ev = evaluate(&ds.table, &result.truths, &ds.truth);
        println!(
            "against ground truth: error rate {}, MNAD {}",
            ev.error_rate_str(),
            ev.mnad_str()
        );
    }
    let out: String = args.flag_parse("out", String::new())?;
    if !out.is_empty() {
        let out = PathBuf::from(out);
        write_results(&ds, &result.truths, &result.weights, &out)?;
        println!("wrote truths.csv and weights.csv to {}", out.display());
    }
    Ok(())
}

fn evaluate_cmd(args: &Args) -> Result<(), String> {
    let [dir] = &args.positional[..] else {
        return Err("evaluate needs <dir>".into());
    };
    let ds = load(dir)?;
    if ds.truth.is_empty() {
        return Err("dataset has no ground truths to evaluate against".into());
    }
    let which: String = args.flag_parse("method", "all".to_string())?;
    let methods: Vec<Box<dyn ConflictResolver>> = all_methods()
        .into_iter()
        .filter(|m| which == "all" || m.name().eq_ignore_ascii_case(&which))
        .collect();
    if methods.is_empty() {
        return Err(format!(
            "unknown method {which:?}; known: {}",
            all_methods()
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    println!(
        "{:<18} {:>10} {:>8} {:>9}",
        "method", "Error Rate", "MNAD", "time(s)"
    );
    for m in methods {
        let t = std::time::Instant::now();
        let out = m.run(&ds.table);
        let secs = t.elapsed().as_secs_f64();
        let ev = evaluate(&ds.table, &out.truths, &ds.truth);
        println!(
            "{:<18} {:>10} {:>8} {:>9.3}",
            m.name(),
            if out.supported.categorical {
                ev.error_rate_str()
            } else {
                "NA".into()
            },
            if out.supported.continuous {
                ev.mnad_str()
            } else {
                "NA".into()
            },
            secs
        );
    }
    Ok(())
}

fn stream(args: &Args) -> Result<(), String> {
    let [dir] = &args.positional[..] else {
        return Err("stream needs <dir>".into());
    };
    let ds = load(dir)?;
    let alpha: f64 = args.flag_parse("alpha", 0.5)?;
    let window: usize = args.flag_parse("window", 1)?;
    let by_day = ds
        .split_by_day()
        .ok_or("dataset is not temporal (no days.csv)")?;
    let groups = crh::stream::group_windows(by_day, window).map_err(|e| e.to_string())?;
    let mut state = ICrh::new(alpha).map_err(|e| e.to_string())?.start();
    for (i, claims) in groups.into_iter().enumerate() {
        let mut b = TableBuilder::new(ds.table.schema().clone());
        for (o, p, s, v) in claims {
            b.add(o, p, s, v).map_err(|e| e.to_string())?;
        }
        let chunk = b.build().map_err(|e| e.to_string())?;
        let truths = state.process_chunk(&chunk).map_err(|e| e.to_string())?;
        let ev = evaluate(&chunk, &truths, &ds.truth);
        println!(
            "chunk {i:>3}: {:>6} entries, error rate {}, MNAD {}",
            chunk.num_entries(),
            ev.error_rate_str(),
            ev.mnad_str()
        );
    }
    println!("\nfinal source weights:");
    for (k, w) in state.weights().iter().enumerate() {
        println!("  source {k}: {w:.4}");
    }
    Ok(())
}

/// Out-of-core CRH straight from `claims.csv` to `truths.csv` with a
/// bounded memory budget: the claims file is streamed record by record,
/// externally sorted by entry into a spill file, and each CRH iteration is
/// one sequential scan.
fn ooc(args: &Args) -> Result<(), String> {
    use crh::core::value::PropertyType;
    use crh::data::csv::RecordReader;
    use crh::mapreduce::{OocClaim, OutOfCoreCrh, SortedClaims};
    use std::collections::HashMap;
    use std::io::Write;

    let [dir] = &args.positional[..] else {
        return Err("ooc needs <dir>".into());
    };
    let dir = Path::new(dir);
    let budget: usize = args.flag_parse("budget", 1 << 20)?;
    let out: String = args.flag_parse("out", String::new())?;

    // schema.csv: property names + types, in order
    let schema_records = crh::data::csv::read_records(std::io::BufReader::new(
        std::fs::File::open(dir.join("schema.csv")).map_err(|e| e.to_string())?,
    ))
    .map_err(|e| e.to_string())?;
    let mut prop_names = Vec::new();
    let mut prop_types = Vec::new();
    for rec in schema_records.iter().skip(1) {
        prop_names.push(rec[0].clone());
        prop_types.push(match rec[1].as_str() {
            "categorical" => PropertyType::Categorical,
            "continuous" => PropertyType::Continuous,
            "text" => PropertyType::Text,
            other => return Err(format!("unknown property type {other:?}")),
        });
    }
    let m = prop_names.len() as u32;
    let prop_index: HashMap<&str, u32> = prop_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();

    // stream claims.csv -> OocClaim, interning categorical labels on the fly
    let mut domains: Vec<Vec<String>> = vec![Vec::new(); prop_names.len()];
    let mut domain_index: Vec<HashMap<String, u32>> = vec![HashMap::new(); prop_names.len()];
    let reader = RecordReader::new(std::io::BufReader::new(
        std::fs::File::open(dir.join("claims.csv")).map_err(|e| e.to_string())?,
    ));
    let mut claims: Vec<OocClaim> = Vec::new(); // drained into the sorter below
    let mut parse_errors = 0usize;
    for (i, rec) in reader.enumerate() {
        let rec = rec.map_err(|e| e.to_string())?;
        if i == 0 && rec.first().is_some_and(|f| f.parse::<u32>().is_err()) {
            continue; // header row (first field is not an object id)
        }
        if rec.len() != 4 {
            parse_errors += 1;
            continue;
        }
        let (Ok(object), Ok(source)) = (rec[0].parse::<u32>(), rec[2].parse::<u32>()) else {
            parse_errors += 1;
            continue;
        };
        let Some(&p) = prop_index.get(rec[1].as_str()) else {
            parse_errors += 1;
            continue;
        };
        // entry ids are dense per (object, property); guard the u32 space
        let Some(entry) = object.checked_mul(m).and_then(|x| x.checked_add(p)) else {
            return Err(format!(
                "object id {object} with {m} properties exceeds the entry id space (u32); \
                 re-number objects densely"
            ));
        };
        let value = match prop_types[p as usize] {
            PropertyType::Continuous => match rec[3].parse::<f64>() {
                Ok(x) if x.is_finite() => Value::Num(x),
                _ => {
                    parse_errors += 1;
                    continue;
                }
            },
            PropertyType::Categorical => {
                let idx = &mut domain_index[p as usize];
                let dom = &mut domains[p as usize];
                let id = *idx.entry(rec[3].clone()).or_insert_with(|| {
                    dom.push(rec[3].clone());
                    (dom.len() - 1) as u32
                });
                Value::Cat(id)
            }
            PropertyType::Text => Value::Text(rec[3].clone()),
        };
        claims.push(OocClaim {
            entry,
            property: p,
            source,
            value,
        });
    }
    if parse_errors > 0 {
        eprintln!("warning: skipped {parse_errors} malformed claim rows");
    }
    let n_claims = claims.len();
    let sorted = SortedClaims::build(claims, budget).map_err(|e| e.to_string())?;
    println!("externally sorted {n_claims} claims (budget {budget} in memory)");

    let ooc = OutOfCoreCrh::new(prop_types.clone())
        .map_err(|e| e.to_string())?
        .max_in_memory(budget);

    let mut writer: Box<dyn Write> = if out.is_empty() {
        Box::new(std::io::sink())
    } else {
        std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
        Box::new(std::io::BufWriter::new(
            std::fs::File::create(Path::new(&out).join("truths.csv")).map_err(|e| e.to_string())?,
        ))
    };
    crh::data::csv::write_record(&mut writer, &["object", "property", "value"])
        .map_err(|e| e.to_string())?;
    let mut sink_err: Option<std::io::Error> = None;
    let mut entries = 0usize;
    let res = ooc
        .run(&sorted, |entry, truth| {
            entries += 1;
            if sink_err.is_some() {
                return;
            }
            let object = entry / m;
            let p = (entry % m) as usize;
            let v = truth.point();
            let field = value_field(&v, |c| domains[p].get(c as usize).cloned());
            if let Err(e) = crh::data::csv::write_record(
                &mut writer,
                &[object.to_string(), prop_names[p].clone(), field],
            ) {
                sink_err = Some(e);
            }
        })
        .map_err(|e| e.to_string())?;
    if let Some(e) = sink_err {
        return Err(format!("writing truths: {e}"));
    }
    writer.flush().map_err(|e| e.to_string())?;

    println!(
        "out-of-core CRH: {} iterations (converged = {}), {entries} entries resolved",
        res.iterations, res.converged
    );
    println!("source weights:");
    for (k, w) in res.weights.iter().enumerate() {
        println!("  source {k}: {w:.4}");
    }
    if !out.is_empty() {
        println!("wrote truths.csv to {out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return usage();
    }
    let cmd = raw.remove(0);
    let args = Args::parse(raw);
    let result = match cmd.as_str() {
        "generate" => generate(&args),
        "stats" => stats(&args),
        "run" => run(&args),
        "evaluate" => evaluate_cmd(&args),
        "stream" => stream(&args),
        "ooc" => ooc(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
