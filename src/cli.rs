//! Argument parsing for the `crh` CLI binary (kept in the library so it is
//! unit-testable).

/// Parsed command-line arguments: positionals plus `--flag [value]` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// Flags in order of appearance; a flag immediately followed by another
    /// flag (or nothing) carries no value.
    pub flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parse raw arguments (without the program/subcommand names).
    pub fn parse(raw: Vec<String>) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => Some(it.next().expect("peeked")),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Self { positional, flags }
    }

    /// Look up a flag by name; `Some(None)` means present without a value.
    pub fn flag(&self, name: &str) -> Option<&Option<String>> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Parse a flag's value, falling back to `default` when absent.
    pub fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(Some(v)) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
            Some(None) => Err(format!("--{name} needs a value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn positionals_and_flags_separate() {
        let a = args(&["weather", "out", "--scale", "0.5", "--verbose"]);
        assert_eq!(a.positional, vec!["weather", "out"]);
        assert_eq!(a.flag("scale"), Some(&Some("0.5".to_string())));
        assert_eq!(a.flag("verbose"), Some(&None));
        assert_eq!(a.flag("missing"), None);
    }

    #[test]
    fn flag_parse_defaults_and_errors() {
        let a = args(&["--scale", "0.25"]);
        assert_eq!(a.flag_parse("scale", 1.0), Ok(0.25));
        assert_eq!(a.flag_parse("seed", 7u64), Ok(7));
        let bad = args(&["--scale", "abc"]);
        assert!(bad.flag_parse("scale", 1.0).is_err());
        let valueless = args(&["--scale", "--other"]);
        assert!(valueless.flag_parse("scale", 1.0).is_err());
    }

    #[test]
    fn flag_followed_by_flag_has_no_value() {
        let a = args(&["--mean", "--top-j", "2"]);
        assert_eq!(a.flag("mean"), Some(&None));
        assert_eq!(a.flag("top-j"), Some(&Some("2".to_string())));
    }

    #[test]
    fn positional_after_flag_value() {
        let a = args(&["--out", "dir", "dataset"]);
        assert_eq!(a.positional, vec!["dataset"]);
        assert_eq!(a.flag("out"), Some(&Some("dir".to_string())));
    }
}
