//! # crh — Conflict Resolution on Heterogeneous data
//!
//! A production-quality Rust reproduction of
//!
//! > Li, Li, Gao, Zhao, Fan, Han. *Resolving Conflicts in Heterogeneous
//! > Data by Truth Discovery and Source Reliability Estimation.*
//! > SIGMOD 2014 (extended in IEEE TKDE 28(8), 2016).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] ([`crh_core`]) — the CRH optimization framework: data model,
//!   loss functions, weight-assignment schemes, block-coordinate-descent
//!   solver, fine-grained weights;
//! * [`baselines`] ([`crh_baselines`]) — the paper's ten comparison
//!   methods behind one [`ConflictResolver`](crh_baselines::ConflictResolver)
//!   trait;
//! * [`stream`] ([`crh_stream`]) — incremental CRH for streaming chunks
//!   (Algorithm 2) with decay and time windows;
//! * [`mapreduce`] ([`crh_mapreduce`]) — an in-process MapReduce engine and
//!   the parallel CRH jobs (§2.7);
//! * [`serve`] ([`crh_serve`]) — a crash-only daemon that keeps an I-CRH
//!   session standing: WAL + snapshot durability, bounded-queue overload
//!   shedding, per-source circuit breakers, seeded chaos testing;
//! * [`data`] ([`crh_data`]) — CSV I/O, dataset generators, metrics
//!   (Error Rate / MNAD), and reliability scoring.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the `crh-bench`
//! crate's `reproduce` binary for regenerating every table and figure of
//! the paper.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cli;

pub use crh_baselines as baselines;
pub use crh_core as core;
pub use crh_data as data;
pub use crh_mapreduce as mapreduce;
pub use crh_serve as serve;
pub use crh_stream as stream;

pub use crh_core::prelude;
