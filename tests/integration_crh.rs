//! Cross-crate integration: generators → solver/baselines → metrics.

use crh::baselines::{all_methods, ConflictResolver, CrhResolver, Mean, Voting};
use crh::core::solver::CrhBuilder;
use crh::data::generators::uci::{generate as gen_uci, UciConfig, UciFlavor};
use crh::data::generators::weather::{generate as gen_weather, WeatherConfig};
use crh::data::metrics::evaluate;
use crh::data::reliability::true_source_reliability;

#[test]
fn crh_beats_naive_methods_on_weather() {
    let ds = gen_weather(&WeatherConfig::paper());
    let crh = CrhResolver.run(&ds.table);
    let crh_ev = evaluate(&ds.table, &crh.truths, &ds.truth);

    let voting_ev = {
        let out = Voting.run(&ds.table);
        evaluate(&ds.table, &out.truths, &ds.truth)
    };
    let mean_ev = {
        let out = Mean.run(&ds.table);
        evaluate(&ds.table, &out.truths, &ds.truth)
    };

    assert!(
        crh_ev.error_rate.unwrap() < voting_ev.error_rate.unwrap(),
        "CRH {:?} must beat Voting {:?}",
        crh_ev.error_rate,
        voting_ev.error_rate
    );
    assert!(
        crh_ev.mnad.unwrap() < mean_ev.mnad.unwrap(),
        "CRH {:?} must beat Mean {:?}",
        crh_ev.mnad,
        mean_ev.mnad
    );
}

#[test]
fn crh_weights_track_generator_reliability() {
    let ds = gen_weather(&WeatherConfig::paper());
    let crh = CrhBuilder::new().build().unwrap().run(&ds.table).unwrap();
    let truth = true_source_reliability(&ds);

    // rank agreement on the extremes: best-by-truth must out-weigh
    // worst-by-truth
    let best = (0..truth.len())
        .max_by(|&a, &b| truth[a].partial_cmp(&truth[b]).unwrap())
        .unwrap();
    let worst = (0..truth.len())
        .min_by(|&a, &b| truth[a].partial_cmp(&truth[b]).unwrap())
        .unwrap();
    assert!(
        crh.weights[best] > crh.weights[worst],
        "weights {:?} vs truth {:?}",
        crh.weights,
        truth
    );
}

#[test]
fn all_eleven_methods_run_on_heterogeneous_data() {
    let ds = gen_uci(&UciConfig::small(UciFlavor::Adult));
    for m in all_methods() {
        let out = m.run(&ds.table);
        assert_eq!(
            out.truths.len(),
            ds.table.num_entries(),
            "{} must emit one truth per entry",
            m.name()
        );
        let ev = evaluate(&ds.table, &out.truths, &ds.truth);
        if out.supported.categorical {
            let err = ev.error_rate.expect("categorical entries exist");
            assert!((0.0..=1.0).contains(&err), "{}: {err}", m.name());
        }
        if out.supported.continuous {
            let mnad = ev.mnad.expect("continuous entries exist");
            assert!(mnad.is_finite() && mnad >= 0.0, "{}: {mnad}", m.name());
        }
    }
}

#[test]
fn crh_recovers_truths_with_one_reliable_source() {
    // the Fig 2 headline: 1 reliable source out of 8 suffices
    let ds = gen_uci(&UciConfig::with_reliable_count(UciFlavor::Adult, 1, 400));
    let crh = CrhResolver.run(&ds.table);
    let ev = evaluate(&ds.table, &crh.truths, &ds.truth);
    let voting = Voting.run(&ds.table);
    let vev = evaluate(&ds.table, &voting.truths, &ds.truth);
    assert!(
        ev.error_rate.unwrap() < 0.05,
        "CRH should recover most truths: {:?}",
        ev.error_rate
    );
    assert!(ev.error_rate.unwrap() < vev.error_rate.unwrap());
}

#[test]
fn reliability_ladder_is_monotone_on_uci() {
    let ds = gen_uci(&UciConfig::paper_scaled(UciFlavor::Bank, 0.01));
    let r = true_source_reliability(&ds);
    // γ ladder 0.1..2.0 must produce decreasing measured reliability
    for w in r.windows(2) {
        assert!(
            w[0] >= w[1] - 0.05,
            "reliability should roughly decrease along the γ ladder: {r:?}"
        );
    }
    assert!(r[0] > r[7]);
}

#[test]
fn stock_and_flight_generators_feed_the_solver() {
    use crh::data::generators::{flight, stock};
    for ds in [
        stock::generate(&stock::StockConfig::small()),
        flight::generate(&flight::FlightConfig::small()),
    ] {
        let res = CrhBuilder::new().build().unwrap().run(&ds.table).unwrap();
        assert_eq!(res.truths.len(), ds.table.num_entries());
        let ev = evaluate(&ds.table, &res.truths, &ds.truth);
        assert!(ev.error_rate.is_some());
        assert!(ev.mnad.is_some());
    }
}
