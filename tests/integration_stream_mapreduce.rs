//! Cross-crate integration for the streaming and parallel variants.

use crh::core::solver::CrhBuilder;
use crh::core::table::TableBuilder;
use crh::data::generators::weather::{generate, WeatherConfig};
use crh::data::metrics::evaluate;
use crh::data::Dataset;
use crh::mapreduce::{JobConfig, ParallelCrh};
use crh::stream::ICrh;

fn day_chunks(ds: &Dataset) -> Vec<crh::core::ObservationTable> {
    ds.split_by_day()
        .expect("temporal")
        .into_iter()
        .map(|(_, claims)| {
            let mut b = TableBuilder::new(ds.table.schema().clone());
            for (o, p, s, v) in claims {
                b.add(o, p, s, v).unwrap();
            }
            b.build().unwrap()
        })
        .collect()
}

#[test]
fn icrh_quality_close_to_batch_crh() {
    let ds = generate(&WeatherConfig::paper());
    let batch = CrhBuilder::new().build().unwrap().run(&ds.table).unwrap();
    let batch_ev = evaluate(&ds.table, &batch.truths, &ds.truth);

    let chunks = day_chunks(&ds);
    let res = ICrh::new(0.5).unwrap().run_stream(chunks.iter()).unwrap();
    let (mut cat_n, mut wrong) = (0usize, 0usize);
    for (chunk, truths) in chunks.iter().zip(&res.truths_per_chunk) {
        let ev = evaluate(chunk, truths, &ds.truth);
        cat_n += ev.categorical_evaluated;
        wrong += ev.categorical_wrong;
    }
    let icrh_err = wrong as f64 / cat_n as f64;
    // Table 5's claim: slightly worse, not dramatically worse.
    assert!(
        icrh_err <= batch_ev.error_rate.unwrap() + 0.06,
        "I-CRH {icrh_err} vs CRH {:?}",
        batch_ev.error_rate
    );
}

#[test]
fn icrh_weights_converge_to_crh_ranking() {
    let ds = generate(&WeatherConfig::paper());
    let batch = CrhBuilder::new().build().unwrap().run(&ds.table).unwrap();
    let chunks = day_chunks(&ds);
    let res = ICrh::new(0.5).unwrap().run_stream(chunks.iter()).unwrap();

    // Spearman-ish check: the same best and worst sources.
    let argmax = |w: &[f64]| {
        (0..w.len())
            .max_by(|&a, &b| w[a].partial_cmp(&w[b]).unwrap())
            .unwrap()
    };
    let argmin = |w: &[f64]| {
        (0..w.len())
            .min_by(|&a, &b| w[a].partial_cmp(&w[b]).unwrap())
            .unwrap()
    };
    assert_eq!(argmax(&batch.weights), argmax(&res.final_weights));
    assert_eq!(argmin(&batch.weights), argmin(&res.final_weights));
}

#[test]
fn parallel_crh_matches_sequential_on_weather() {
    let mut cfg = WeatherConfig::small();
    cfg.cities = 6;
    cfg.days = 8;
    let ds = generate(&cfg);
    // run both solvers to the same fixed point: the parallel driver
    // stops when the hard decisions stabilize (give it headroom beyond
    // its default 10 rounds), and the sequential solver's default 1e-6
    // objective tolerance can stop a few weight updates short of that
    // point, so tighten it
    let seq = CrhBuilder::new()
        .tolerance(1e-12)
        .build()
        .unwrap()
        .run(&ds.table)
        .unwrap();
    let par = ParallelCrh::default()
        .max_iters(40)
        .job_config(JobConfig {
            num_mappers: 3,
            num_reducers: 5,
            ..JobConfig::default()
        })
        .run(&ds.table)
        .unwrap();
    let agree = seq
        .truths
        .iter()
        .filter(|(e, t)| t.point().matches(&par.truths.get(*e).point()))
        .count();
    assert!(
        agree as f64 >= 0.99 * seq.truths.len() as f64,
        "agreement {agree}/{}",
        seq.truths.len()
    );
}

#[test]
fn parallel_crh_evaluates_like_sequential() {
    let ds = generate(&WeatherConfig::small());
    let par = ParallelCrh::default().run(&ds.table).unwrap();
    let seq = CrhBuilder::new().build().unwrap().run(&ds.table).unwrap();
    let pev = evaluate(&ds.table, &par.truths, &ds.truth);
    let sev = evaluate(&ds.table, &seq.truths, &ds.truth);
    assert!((pev.error_rate.unwrap() - sev.error_rate.unwrap()).abs() < 0.02);
    assert!((pev.mnad.unwrap() - sev.mnad.unwrap()).abs() < 0.05);
}

#[test]
fn task_slot_waves_do_not_change_results() {
    let ds = generate(&WeatherConfig::small());
    let base = ParallelCrh::default().run(&ds.table).unwrap();
    let waved = ParallelCrh::default()
        .job_config(JobConfig {
            num_reducers: 16,
            task_slots: 3,
            ..JobConfig::default()
        })
        .run(&ds.table)
        .unwrap();
    for (e, t) in base.truths.iter() {
        assert!(t.point().matches(&waved.truths.get(e).point()));
    }
}
