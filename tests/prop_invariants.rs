//! Property-based tests on core invariants (proptest).

use proptest::prelude::*;

use crh::core::ids::{ObjectId, PropertyId, SourceId};
use crh::core::loss::{
    levenshtein, weighted_median, AbsoluteLoss, Loss, ProbVectorLoss, SquaredLoss, ZeroOneLoss,
};
use crh::core::solver::{CrhBuilder, PropertyNorm};
use crh::core::stats::EntryStats;
use crh::core::table::TableBuilder;
use crh::core::value::{Truth, Value};
use crh::core::weights::{LogMax, LogSum, WeightAssigner};
use crh::core::Schema;

fn value_weight_pairs() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(
        ((-1e6f64..1e6f64), (0.01f64..10.0f64)),
        1..40,
    )
}

proptest! {
    /// Eq 16: the weighted median satisfies the paper's two inequalities.
    #[test]
    fn weighted_median_satisfies_eq16(pairs in value_weight_pairs()) {
        let m = weighted_median(&pairs);
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        let below: f64 = pairs.iter().filter(|(v, _)| *v < m).map(|(_, w)| w).sum();
        let above: f64 = pairs.iter().filter(|(v, _)| *v > m).map(|(_, w)| w).sum();
        prop_assert!(below < total / 2.0 + 1e-9);
        prop_assert!(above <= total / 2.0 + 1e-9);
        // the median is one of the input values
        prop_assert!(pairs.iter().any(|(v, _)| *v == m));
    }

    /// The weighted median minimizes the weighted absolute deviation among
    /// all observed values (it is the argmin of Eq 3 under Eq 15).
    #[test]
    fn weighted_median_minimizes_weighted_l1(pairs in value_weight_pairs()) {
        let m = weighted_median(&pairs);
        let cost = |x: f64| -> f64 {
            pairs.iter().map(|(v, w)| w * (v - x).abs()).sum()
        };
        let med_cost = cost(m);
        for (v, _) in &pairs {
            prop_assert!(med_cost <= cost(*v) + 1e-6 * med_cost.abs().max(1.0));
        }
    }

    /// The weighted mean minimizes the weighted squared deviation (Eq 14 is
    /// the argmin of Eq 3 under Eq 13): any perturbation costs more.
    #[test]
    fn weighted_mean_minimizes_weighted_l2(
        pairs in value_weight_pairs(),
        delta in -100.0f64..100.0,
    ) {
        let obs: Vec<(SourceId, Value)> = pairs
            .iter()
            .enumerate()
            .map(|(k, (v, _))| (SourceId(k as u32), Value::Num(*v)))
            .collect();
        let weights: Vec<f64> = pairs.iter().map(|(_, w)| *w).collect();
        let stats = EntryStats::trivial();
        let mean = SquaredLoss.fit(&obs, &weights, &stats).as_num().unwrap();
        let cost = |x: f64| -> f64 {
            pairs.iter().map(|(v, w)| w * (v - x) * (v - x)).sum()
        };
        prop_assert!(cost(mean) <= cost(mean + delta) + 1e-6 * cost(mean).max(1.0));
    }

    /// 0-1 loss's weighted vote maximizes total agreeing weight.
    #[test]
    fn weighted_vote_maximizes_agreement(
        labels in prop::collection::vec(0u32..5, 1..30),
        seed_weights in prop::collection::vec(0.01f64..5.0, 30),
    ) {
        let obs: Vec<(SourceId, Value)> = labels
            .iter()
            .enumerate()
            .map(|(k, &l)| (SourceId(k as u32), Value::Cat(l)))
            .collect();
        let weights = &seed_weights[..labels.len()];
        let stats = EntryStats::trivial();
        let winner = ZeroOneLoss.fit(&obs, weights, &stats).point();
        let agreement = |v: &Value| -> f64 {
            obs.iter()
                .zip(weights)
                .filter(|((_, o), _)| o.matches(v))
                .map(|(_, w)| w)
                .sum()
        };
        let win_score = agreement(&winner);
        for l in 0u32..5 {
            prop_assert!(win_score >= agreement(&Value::Cat(l)) - 1e-12);
        }
    }

    /// Loss functions are non-negative and zero at the truth itself.
    #[test]
    fn losses_nonnegative_and_zero_at_truth(x in -1e4f64..1e4, std in 0.1f64..100.0) {
        let stats = EntryStats { std, ..EntryStats::trivial() };
        let t = Truth::Point(Value::Num(x));
        for loss in [&SquaredLoss as &dyn Loss, &AbsoluteLoss] {
            prop_assert!(loss.loss(&t, &Value::Num(x), &stats).abs() < 1e-9);
            prop_assert!(loss.loss(&t, &Value::Num(x + 1.0), &stats) >= 0.0);
        }
        let tc = Truth::Point(Value::Cat(3));
        prop_assert_eq!(ZeroOneLoss.loss(&tc, &Value::Cat(3), &stats), 0.0);
    }

    /// Prob-vector fit always returns a probability distribution.
    #[test]
    fn prob_vector_fit_is_distribution(
        labels in prop::collection::vec(0u32..6, 1..20),
        seed_weights in prop::collection::vec(0.01f64..5.0, 20),
    ) {
        let obs: Vec<(SourceId, Value)> = labels
            .iter()
            .enumerate()
            .map(|(k, &l)| (SourceId(k as u32), Value::Cat(l)))
            .collect();
        let stats = EntryStats { domain_size: 6, ..EntryStats::trivial() };
        let t = ProbVectorLoss.fit(&obs, &seed_weights[..labels.len()], &stats);
        let probs = t.distribution().unwrap();
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
    }

    /// Levenshtein distance is a metric: symmetric, identity, triangle.
    #[test]
    fn levenshtein_is_a_metric(
        a in "[a-c]{0,8}",
        b in "[a-c]{0,8}",
        c in "[a-c]{0,8}",
    ) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        if a != b {
            prop_assert!(levenshtein(&a, &b) > 0);
        }
    }

    /// Weight assigners: lower loss never gets a lower weight, and all
    /// weights are finite and non-negative.
    #[test]
    fn weight_assigners_are_monotone(
        losses in prop::collection::vec(0.0f64..100.0, 2..20),
    ) {
        for assigner in [&LogSum as &dyn WeightAssigner, &LogMax] {
            let w = assigner.assign(&losses);
            prop_assert_eq!(w.len(), losses.len());
            for (i, &li) in losses.iter().enumerate() {
                prop_assert!(w[i].is_finite() && w[i] >= 0.0);
                for (j, &lj) in losses.iter().enumerate() {
                    if li < lj {
                        prop_assert!(
                            w[i] >= w[j],
                            "loss {li} < {lj} but weight {} < {}", w[i], w[j]
                        );
                    }
                }
            }
        }
    }

    /// The CRH objective trace is non-increasing for the exact convex
    /// configuration (LogSum + squared loss, no extra normalization) on
    /// random single-property continuous tables.
    #[test]
    fn solver_objective_monotone_on_random_tables(
        raw in prop::collection::vec((0u32..8, 0u32..4, -100.0f64..100.0), 8..60),
    ) {
        let mut schema = Schema::new();
        let x = schema.add_continuous("x");
        let mut b = TableBuilder::new(schema);
        for (s, o, v) in &raw {
            b.add(ObjectId(*o), x, SourceId(*s), Value::Num(*v)).unwrap();
        }
        let table = b.build().unwrap();
        let res = CrhBuilder::new()
            .weight_assigner(LogSum)
            .property_norm(PropertyNorm::None)
            .count_normalize(false)
            .loss_for(x, SquaredLoss)
            .tolerance(0.0)
            .max_iters(20)
            .build()
            .unwrap()
            .run(&table)
            .unwrap();
        for w in res.objective_trace.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-6 * w[0].abs().max(1.0));
        }
    }

    /// Table building: CSR layout is consistent for arbitrary claim sets.
    #[test]
    fn table_builder_csr_invariants(
        raw in prop::collection::vec((0u32..5, 0u32..6, 0.0f64..10.0), 1..80),
    ) {
        let mut schema = Schema::new();
        let x = schema.add_continuous("x");
        let mut b = TableBuilder::new(schema);
        for (s, o, v) in &raw {
            b.add(ObjectId(*o), x, SourceId(*s), Value::Num(*v)).unwrap();
        }
        let t = b.build().unwrap();
        // every entry has at least one observation, sorted by source,
        // at most one observation per source
        let mut total = 0;
        for (_, _, obs) in t.iter_entries() {
            prop_assert!(!obs.is_empty());
            for w in obs.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            total += obs.len();
        }
        prop_assert_eq!(total, t.num_observations());
        let counts_sum: usize = t.source_counts().iter().sum();
        prop_assert_eq!(counts_sum, t.num_observations());
        let _ = PropertyId(0);
    }
}
