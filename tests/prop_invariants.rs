//! Randomized tests on core invariants.
//!
//! Originally `proptest` properties; now driven by the in-tree seeded
//! generator ([`crh::core::rng`]) so the workspace tests run with zero
//! external dependencies. Each case is reproducible from the seed named
//! in its failure message.

use crh::core::ids::{ObjectId, SourceId};
use crh::core::loss::{
    levenshtein, weighted_median, AbsoluteLoss, Loss, ProbVectorLoss, SquaredLoss, ZeroOneLoss,
};
use crh::core::rng::{Rng, StdRng};
use crh::core::solver::{CrhBuilder, PropertyNorm};
use crh::core::stats::EntryStats;
use crh::core::table::TableBuilder;
use crh::core::value::{Truth, Value};
use crh::core::weights::{LogMax, LogSum, WeightAssigner};
use crh::core::Schema;

const CASES: u64 = 128;

fn value_weight_pairs(rng: &mut StdRng) -> Vec<(f64, f64)> {
    let n = rng.random_range(1usize..40);
    (0..n)
        .map(|_| {
            (
                rng.random_range(-1e6f64..1e6),
                rng.random_range(0.01f64..10.0),
            )
        })
        .collect()
}

/// Eq 16: the weighted median satisfies the paper's two inequalities.
#[test]
fn weighted_median_satisfies_eq16() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE916);
        let pairs = value_weight_pairs(&mut rng);
        let m = weighted_median(&pairs);
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        let below: f64 = pairs.iter().filter(|(v, _)| *v < m).map(|(_, w)| w).sum();
        let above: f64 = pairs.iter().filter(|(v, _)| *v > m).map(|(_, w)| w).sum();
        assert!(below < total / 2.0 + 1e-9, "seed {seed}");
        assert!(above <= total / 2.0 + 1e-9, "seed {seed}");
        // the median is one of the input values
        assert!(pairs.iter().any(|(v, _)| *v == m), "seed {seed}");
    }
}

/// The weighted median minimizes the weighted absolute deviation among
/// all observed values (it is the argmin of Eq 3 under Eq 15).
#[test]
fn weighted_median_minimizes_weighted_l1() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11);
        let pairs = value_weight_pairs(&mut rng);
        let m = weighted_median(&pairs);
        let cost = |x: f64| -> f64 { pairs.iter().map(|(v, w)| w * (v - x).abs()).sum() };
        let med_cost = cost(m);
        for (v, _) in &pairs {
            assert!(
                med_cost <= cost(*v) + 1e-6 * med_cost.abs().max(1.0),
                "seed {seed}"
            );
        }
    }
}

/// The weighted mean minimizes the weighted squared deviation (Eq 14 is
/// the argmin of Eq 3 under Eq 13): any perturbation costs more.
#[test]
fn weighted_mean_minimizes_weighted_l2() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x12);
        let pairs = value_weight_pairs(&mut rng);
        let delta = rng.random_range(-100.0f64..100.0);
        let obs: Vec<(SourceId, Value)> = pairs
            .iter()
            .enumerate()
            .map(|(k, (v, _))| (SourceId(k as u32), Value::Num(*v)))
            .collect();
        let weights: Vec<f64> = pairs.iter().map(|(_, w)| *w).collect();
        let stats = EntryStats::trivial();
        let mean = SquaredLoss.fit(&obs, &weights, &stats).as_num().unwrap();
        let cost = |x: f64| -> f64 { pairs.iter().map(|(v, w)| w * (v - x) * (v - x)).sum() };
        assert!(
            cost(mean) <= cost(mean + delta) + 1e-6 * cost(mean).max(1.0),
            "seed {seed}"
        );
    }
}

/// 0-1 loss's weighted vote maximizes total agreeing weight.
#[test]
fn weighted_vote_maximizes_agreement() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x01);
        let n = rng.random_range(1usize..30);
        let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0u32..5)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.random_range(0.01f64..5.0)).collect();
        let obs: Vec<(SourceId, Value)> = labels
            .iter()
            .enumerate()
            .map(|(k, &l)| (SourceId(k as u32), Value::Cat(l)))
            .collect();
        let stats = EntryStats::trivial();
        let winner = ZeroOneLoss.fit(&obs, &weights, &stats).point();
        let agreement = |v: &Value| -> f64 {
            obs.iter()
                .zip(&weights)
                .filter(|((_, o), _)| o.matches(v))
                .map(|(_, w)| w)
                .sum()
        };
        let win_score = agreement(&winner);
        for l in 0u32..5 {
            assert!(
                win_score >= agreement(&Value::Cat(l)) - 1e-12,
                "seed {seed}"
            );
        }
    }
}

/// Loss functions are non-negative and zero at the truth itself.
#[test]
fn losses_nonnegative_and_zero_at_truth() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x10);
        let x = rng.random_range(-1e4f64..1e4);
        let std = rng.random_range(0.1f64..100.0);
        let stats = EntryStats {
            std,
            ..EntryStats::trivial()
        };
        let t = Truth::Point(Value::Num(x));
        for loss in [&SquaredLoss as &dyn Loss, &AbsoluteLoss] {
            assert!(
                loss.loss(&t, &Value::Num(x), &stats).abs() < 1e-9,
                "seed {seed}"
            );
            assert!(
                loss.loss(&t, &Value::Num(x + 1.0), &stats) >= 0.0,
                "seed {seed}"
            );
        }
        let tc = Truth::Point(Value::Cat(3));
        assert_eq!(
            ZeroOneLoss.loss(&tc, &Value::Cat(3), &stats),
            0.0,
            "seed {seed}"
        );
    }
}

/// Prob-vector fit always returns a probability distribution.
#[test]
fn prob_vector_fit_is_distribution() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD157);
        let n = rng.random_range(1usize..20);
        let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0u32..6)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.random_range(0.01f64..5.0)).collect();
        let obs: Vec<(SourceId, Value)> = labels
            .iter()
            .enumerate()
            .map(|(k, &l)| (SourceId(k as u32), Value::Cat(l)))
            .collect();
        let stats = EntryStats {
            domain_size: 6,
            ..EntryStats::trivial()
        };
        let t = ProbVectorLoss.fit(&obs, &weights, &stats);
        let probs = t.distribution().unwrap();
        assert!(
            (probs.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "seed {seed}"
        );
        assert!(
            probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)),
            "seed {seed}"
        );
    }
}

/// Levenshtein distance is a metric: symmetric, identity, triangle.
#[test]
fn levenshtein_is_a_metric() {
    let word = |rng: &mut StdRng| -> String {
        let n = rng.random_range(0usize..9);
        (0..n)
            .map(|_| ['a', 'b', 'c'][rng.random_range(0..3)])
            .collect()
    };
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1e5);
        let (a, b, c) = (word(&mut rng), word(&mut rng), word(&mut rng));
        assert_eq!(levenshtein(&a, &a), 0, "seed {seed}");
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a), "seed {seed}");
        assert!(
            levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c),
            "seed {seed}"
        );
        if a != b {
            assert!(levenshtein(&a, &b) > 0, "seed {seed}");
        }
    }
}

/// Weight assigners: lower loss never gets a lower weight, and all
/// weights are finite and non-negative.
#[test]
fn weight_assigners_are_monotone() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3a1);
        let n = rng.random_range(2usize..20);
        let losses: Vec<f64> = (0..n).map(|_| rng.random_range(0.0f64..100.0)).collect();
        for assigner in [&LogSum as &dyn WeightAssigner, &LogMax] {
            let w = assigner.assign(&losses);
            assert_eq!(w.len(), losses.len(), "seed {seed}");
            for (i, &li) in losses.iter().enumerate() {
                assert!(w[i].is_finite() && w[i] >= 0.0, "seed {seed}");
                for (j, &lj) in losses.iter().enumerate() {
                    if li < lj {
                        assert!(
                            w[i] >= w[j],
                            "seed {seed}: loss {li} < {lj} but weight {} < {}",
                            w[i],
                            w[j]
                        );
                    }
                }
            }
        }
    }
}

/// The CRH objective trace is non-increasing for the exact convex
/// configuration (LogSum + squared loss, no extra normalization) on
/// random single-property continuous tables.
#[test]
fn solver_objective_monotone_on_random_tables() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0b1);
        let mut schema = Schema::new();
        let x = schema.add_continuous("x");
        let mut b = TableBuilder::new(schema);
        for _ in 0..rng.random_range(8usize..60) {
            let s = rng.random_range(0u32..8);
            let o = rng.random_range(0u32..4);
            let v = rng.random_range(-100.0f64..100.0);
            b.add(ObjectId(o), x, SourceId(s), Value::Num(v)).unwrap();
        }
        let table = b.build().unwrap();
        let res = CrhBuilder::new()
            .weight_assigner(LogSum)
            .property_norm(PropertyNorm::None)
            .count_normalize(false)
            .loss_for(x, SquaredLoss)
            .tolerance(0.0)
            .max_iters(20)
            .build()
            .unwrap()
            .run(&table)
            .unwrap();
        for w in res.objective_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-6 * w[0].abs().max(1.0), "seed {seed}");
        }
    }
}

/// Table building: CSR layout is consistent for arbitrary claim sets.
#[test]
fn table_builder_csr_invariants() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC59);
        let mut schema = Schema::new();
        let x = schema.add_continuous("x");
        let mut b = TableBuilder::new(schema);
        for _ in 0..rng.random_range(1usize..80) {
            let s = rng.random_range(0u32..5);
            let o = rng.random_range(0u32..6);
            let v = rng.random_range(0.0f64..10.0);
            b.add(ObjectId(o), x, SourceId(s), Value::Num(v)).unwrap();
        }
        let t = b.build().unwrap();
        // every entry has at least one observation, sorted by source,
        // at most one observation per source
        let mut total = 0;
        for (_, _, obs) in t.iter_entries() {
            assert!(!obs.is_empty(), "seed {seed}");
            for w in obs.windows(2) {
                assert!(w[0].0 < w[1].0, "seed {seed}");
            }
            total += obs.len();
        }
        assert_eq!(total, t.num_observations(), "seed {seed}");
        let counts_sum: usize = t.source_counts().iter().sum();
        assert_eq!(counts_sum, t.num_observations(), "seed {seed}");
    }
}
